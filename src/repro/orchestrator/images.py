"""Container images, registries and per-node image caches.

Fig. 2's workflow starts with the user naming a container image that
"is initially pulled from a public or private container registry", and
Section V-F describes the paper's base image (``sebvaucher/sgx-base``)
bundling the Intel SDK/PSW so SGX applications run unmodified in
Docker.

This module models the pull path: a registry serves named images, each
node keeps a cache, and the first pull of an image on a node costs
transfer time proportional to the image size over the cluster's 1 Gbit/s
network (Section VI-A).  Cached pulls are free — exactly the behaviour
that makes repeated trace jobs cheap after their first placement on a
node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from ..errors import OrchestrationError
from ..units import mib

#: The testbed's network: 1 Gbit/s switched (Section VI-A), in bytes/s.
NETWORK_BYTES_PER_SECOND = 125_000_000

#: The paper's base image with SDK + PSW; a realistic compressed size.
SGX_BASE_IMAGE = "sebvaucher/sgx-base"
SGX_BASE_IMAGE_BYTES = mib(390)


class ImagePullError(OrchestrationError):
    """The registry does not serve the requested image."""


@dataclass(frozen=True)
class ContainerImage:
    """One image: name, size, and whether it bundles the SGX PSW."""

    name: str
    size_bytes: int
    has_sgx_psw: bool = False

    def __post_init__(self):
        if not self.name:
            raise OrchestrationError("image name must be non-empty")
        if self.size_bytes <= 0:
            raise OrchestrationError(
                f"image size must be positive: {self.size_bytes}"
            )


class ImageRegistry:
    """A public or private registry serving images by name."""

    def __init__(self, name: str = "docker.io"):
        self.name = name
        self._images: Dict[str, ContainerImage] = {}
        self.pull_count = 0

    def push(self, image: ContainerImage) -> None:
        """Publish (or overwrite) an image."""
        self._images[image.name] = image

    def resolve(self, name: str) -> ContainerImage:
        """Look an image up; raises :class:`ImagePullError` if absent."""
        image = self._images.get(name)
        if image is None:
            raise ImagePullError(
                f"image {name!r} not found in registry {self.name!r}"
            )
        return image

    def serve_pull(self, name: str) -> ContainerImage:
        """Serve one pull (counts traffic for reporting)."""
        image = self.resolve(name)
        self.pull_count += 1
        return image

    def __contains__(self, name: str) -> bool:
        return name in self._images

    @classmethod
    def with_paper_images(cls) -> "ImageRegistry":
        """A registry pre-loaded with the paper's base image plus the
        stock images its introduction name-drops."""
        registry = cls()
        registry.push(
            ContainerImage(
                SGX_BASE_IMAGE, SGX_BASE_IMAGE_BYTES, has_sgx_psw=True
            )
        )
        for name, size in (
            ("redis", mib(35)),
            ("apache", mib(55)),
            ("mysql", mib(150)),
            ("consul", mib(45)),
        ):
            registry.push(ContainerImage(name, size))
        return registry


@dataclass
class NodeImageCache:
    """The images already present on one node."""

    node_name: str
    bandwidth_bytes_per_second: float = NETWORK_BYTES_PER_SECOND
    _cached: Set[str] = field(default_factory=set)

    def has(self, name: str) -> bool:
        """Whether a pull would hit the cache."""
        return name in self._cached

    def pull(self, registry: ImageRegistry, name: str) -> float:
        """Ensure *name* is present; returns the pull latency in seconds.

        A cache hit is free; a miss transfers the image over the
        cluster network and caches it.
        """
        if name in self._cached:
            return 0.0
        image = registry.serve_pull(name)
        self._cached.add(name)
        return image.size_bytes / self.bandwidth_bytes_per_second

    def evict(self, name: str) -> bool:
        """Drop an image from the cache (image GC); returns whether hit."""
        if name in self._cached:
            self._cached.remove(name)
            return True
        return False

    @property
    def cached_images(self) -> Set[str]:
        """Names of cached images."""
        return set(self._cached)
