"""Kubernetes-like control plane.

Models the slice of Kubernetes the paper builds on: pod specifications
with resource requests/limits (:mod:`repro.orchestrator.api`), a
persistent FCFS pending queue (:mod:`repro.orchestrator.queue`), node
agents that admit pods, set up cgroups and relay EPC limits to the driver
(:mod:`repro.orchestrator.kubelet`), the SGX device plugin advertising
each EPC page as a resource item (:mod:`repro.orchestrator.device_plugin`)
over a gRPC-like channel (:mod:`repro.orchestrator.rpc`), DaemonSets that
keep one probe per SGX node (:mod:`repro.orchestrator.daemonset`), the
event hub that turns cluster transitions into scheduling-pass triggers
(:mod:`repro.orchestrator.triggers`) and the orchestrator facade tying
everything together (:mod:`repro.orchestrator.controller`).
"""

from .api import (
    SGX_EPC_RESOURCE,
    PodPhase,
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
)
from .controller import Orchestrator
from .daemonset import DaemonSet, DaemonSetController
from .device_plugin import DevicePluginRegistry, SgxDevicePlugin
from .kubelet import Kubelet
from .pod import Pod
from .queue import PendingQueue
from .rpc import RpcChannel, RpcServer
from .triggers import ClusterEvent, SchedulingTrigger, TriggerEvent

__all__ = [
    "ClusterEvent",
    "DaemonSet",
    "DaemonSetController",
    "DevicePluginRegistry",
    "Kubelet",
    "Orchestrator",
    "PendingQueue",
    "Pod",
    "PodPhase",
    "PodSpec",
    "ResourceRequirements",
    "RpcChannel",
    "RpcServer",
    "SGX_EPC_RESOURCE",
    "SchedulingTrigger",
    "SgxDevicePlugin",
    "TriggerEvent",
    "WorkloadProfile",
]
