"""Orchestrator facade: the control plane wired together.

Owns the cluster's Kubelets, the device plugins, the monitoring pipeline
(Heapster + SGX probes via a DaemonSet) and the persistent pending
queue, and exposes the operations the event loop drives:

* :meth:`Orchestrator.submit` — user submits a pod (Fig. 2, step 1-2);
* :meth:`Orchestrator.collect_metrics` — probes push usage samples;
* :meth:`Orchestrator.scheduling_pass` — fetch pending jobs + metrics,
  filter, place, bind (Fig. 2, steps 3-5);
* :meth:`Orchestrator.start_pod` / :meth:`complete_pod` / meth:`kill_pod`
  — lifecycle transitions driven by the simulation clock.

The orchestrator itself is clock-free: every method takes ``now``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.resources import ResourceVector
from ..cluster.topology import Cluster
from ..constants import METRICS_WINDOW_SECONDS
from ..errors import OrchestrationError, SchedulingError
from ..monitoring.aggregate import WindowedAggregateCache
from ..monitoring.heapster import Heapster
from ..monitoring.probe import SgxMetricsProbe
from ..monitoring.tsdb import TimeSeriesDatabase
from ..obs.observer import NULL_OBSERVER
from ..policy.classes import DEFAULT_PREEMPTION_THRESHOLD
from ..policy.preemption import EvictionCandidate, PreemptionPolicy
from ..policy.qos import is_evictable_by
from ..scheduler.base import ClusterStateService, NodeView, Scheduler
from ..scheduler.index import SelectionStats
from ..sgx.migration import MigrationManager
from ..sgx.perf import SgxPerfModel
from .api import PodSpec
from .daemonset import DaemonSetController, sgx_node_selector
from .device_plugin import SgxDevicePlugin
from .images import ImageRegistry
from .kubelet import Kubelet
from .pod import Pod
from .queue import PendingQueue
from .rpc import RpcChannel
from .triggers import ClusterEvent, SchedulingTrigger

#: Name of the DaemonSet that keeps one SGX probe per SGX node.
PROBE_DAEMONSET = "sgx-metrics-probe"


@dataclass
class PassResult:
    """What one scheduling pass did."""

    #: Pods successfully launched, with their startup latency.
    launched: List[Tuple[Pod, float]] = field(default_factory=list)
    #: Pods killed at launch (limit enforcement, EPC exhaustion...).
    killed: List[Pod] = field(default_factory=list)
    #: Pods rejected as permanently unschedulable.
    rejected: List[Pod] = field(default_factory=list)
    #: Pods whose launch failed transiently and were requeued.
    requeued: List[Pod] = field(default_factory=list)
    #: Pods left pending.
    deferred: List[Pod] = field(default_factory=list)
    #: ``(victim, replacement)`` pairs of pods evicted by the
    #: preemption step; the replacement keeps the victim's original
    #: ``submitted_at`` so it re-enters its tier's FCFS order.  Drivers
    #: holding per-pod runtime state (the replay runner's running-job
    #: table) must purge the victim's entries.
    evicted: List[Tuple[Pod, Pod]] = field(default_factory=list)
    #: Pods placed by evicting victims (their launches are also listed
    #: in :attr:`launched`/:attr:`requeued`/:attr:`killed`).
    preemptions: int = 0
    #: Why deferred pods waited, keyed by
    #: :data:`repro.scheduler.base.WAIT_REASONS`.  Pods later placed
    #: by preemption still count: they did fail regular placement.
    wait_reasons: Dict[str, int] = field(default_factory=dict)
    #: Counters of the indexed candidate selection, when the scheduler
    #: ran this pass in indexed mode (``None`` for the oracle path).
    selection: Optional[SelectionStats] = None


class Orchestrator:
    """The control plane of one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        db: Optional[TimeSeriesDatabase] = None,
        perf_model: Optional[SgxPerfModel] = None,
        metrics_window_seconds: float = METRICS_WINDOW_SECONDS,
        enforce_memory_limits: bool = False,
        registry: Optional[ImageRegistry] = None,
        use_state_cache: bool = True,
        requeue_backoff_seconds: float = 0.0,
        preemption_policy: Optional[PreemptionPolicy] = None,
        preemption_priority_threshold: int = DEFAULT_PREEMPTION_THRESHOLD,
        queue: Optional[PendingQueue] = None,
        observer=None,
    ):
        self.cluster = cluster
        #: The run's observer bundle (null when the replay is
        #: unobserved); the ledger and span recorder are threaded into
        #: the state service, trigger hub, schedulers and preemption
        #: policy from here.
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.ledger = self.observer.ledger
        self.spans = self.observer.spans
        #: The planner consulted for deferred pods at or above the
        #: threshold; ``None`` (or a policy that never preempts) keeps
        #: the paper's strictly non-preemptive scheduling.
        self.preemption_policy = preemption_policy
        self.preemption_priority_threshold = preemption_priority_threshold
        # Explicit None check: an empty TimeSeriesDatabase is falsy
        # (len == 0), and ``db or ...`` would silently discard it.
        self.db = (
            db if db is not None
            else TimeSeriesDatabase(retention_seconds=3600.0)
        )
        # Incremental cluster-state cache: keeps the sliding-window
        # maxima the scheduling pass needs up to date on every metrics
        # write, so build_views never re-scans the TSDB window.  A
        # caller-supplied db may already carry a cache (e.g. two
        # orchestrators sharing one database); reuse it rather than
        # stacking a second subscriber over the same window.
        self.aggregate_cache: Optional[WindowedAggregateCache] = None
        if use_state_cache:
            existing = getattr(self.db, "aggregate_cache", None)
            if (
                existing is not None
                and existing.window_seconds == metrics_window_seconds
            ):
                self.aggregate_cache = existing
            else:
                self.aggregate_cache = WindowedAggregateCache(
                    self.db, window_seconds=metrics_window_seconds
                )
        self.perf_model = perf_model or SgxPerfModel()
        self.registry = registry
        self.enforce_memory_limits = enforce_memory_limits
        # One set of Kubelet construction kwargs, used for the initial
        # inventory AND for nodes joined later via add_node — a kubelet
        # must behave identically whether its node was present at
        # bootstrap or joined mid-run.
        self._kubelet_kwargs = dict(
            perf_model=self.perf_model,
            enforce_memory_limits=enforce_memory_limits,
            registry=registry,
        )
        self.kubelets: Dict[str, Kubelet] = {}
        for node in cluster:
            kubelet = Kubelet(node, **self._kubelet_kwargs)
            self.kubelets[node.name] = kubelet
            # Device plugin discovers /dev/isgx and registers over RPC.
            SgxDevicePlugin(node).register(RpcChannel(kubelet.rpc_server))

        self.heapster = Heapster(self.db)
        self.heapster.register_all(self.kubelets.values())

        self.daemonsets = DaemonSetController()
        self.daemonsets.create(
            PROBE_DAEMONSET,
            selector=sgx_node_selector,
            factory=self._make_probe,
        )
        self.daemonsets.reconcile(self.kubelets.values())

        self.state_service = ClusterStateService(
            list(self.kubelets.values()),
            self.db,
            window_seconds=metrics_window_seconds,
            cache=self.aggregate_cache,
            allow_query_cache=use_state_cache,
            observer=self.observer,
        )
        if preemption_policy is not None:
            preemption_policy.ledger = self.ledger
        # An injected queue (the sharded runner's cell router) must
        # duck-type PendingQueue; the default is the flat FCFS queue.
        self.queue = (
            queue
            if queue is not None
            else PendingQueue(
                requeue_backoff_seconds=requeue_backoff_seconds
            )
        )
        self.all_pods: List[Pod] = []
        self.migrations = MigrationManager()
        #: Event hub: every cluster transition that could make a
        #: scheduling pass useful is published here, so event-driven
        #: drivers react to state changes instead of polling on a
        #: timer (the periodic mode simply never consults it).
        self.trigger = SchedulingTrigger()
        self.trigger.ledger = self.ledger

    def _make_probe(self, kubelet: Kubelet) -> SgxMetricsProbe:
        driver = kubelet.node.driver
        if driver is None:
            raise OrchestrationError(
                f"probe requested for non-SGX node {kubelet.node.name}"
            )
        return SgxMetricsProbe(
            node_name=kubelet.node.name,
            driver=driver,
            db=self.db,
            pod_name_resolver=kubelet.resolve_pod_name,
        )

    # -- node lifecycle (Sec. V-C: probes follow nodes automatically) ----

    def add_node(self, node, now: float) -> Kubelet:
        """Join a new physical node to the cluster.

        Registers its Kubelet and device plugin, hooks it into Heapster
        and lets the DaemonSet controller deploy a probe if the node
        advertises SGX — the paper's "automatically handle the
        deployment of new probes when adding physical nodes".  The
        Kubelet is built with the same kwargs as the bootstrap
        inventory, so policies like memory-limit enforcement apply to
        late-joined nodes too.
        """
        self.cluster.add_node(node)
        kubelet = Kubelet(node, **self._kubelet_kwargs)
        self.kubelets[node.name] = kubelet
        SgxDevicePlugin(node).register(RpcChannel(kubelet.rpc_server))
        self.heapster.register(kubelet)
        self.daemonsets.reconcile(self.kubelets.values())
        self.state_service.kubelets.append(kubelet)
        self.trigger.publish(
            ClusterEvent.NODE_ADDED, now, node_name=node.name
        )
        return kubelet

    def remove_node(self, node_name: str, now: float) -> List[Pod]:
        """Handle a node crash or drain.

        Pods running there are re-submitted to the queue (their specs
        survive; their progress does not — a crash analogue of the
        Kubernetes controller recreating lost pods), the node's probe is
        reaped by the DaemonSet reconciliation and its metrics stop.
        Returns the requeued pods.
        """
        kubelet = self.kubelets.pop(node_name, None)
        if kubelet is None:
            raise OrchestrationError(f"no such node {node_name!r}")
        orphans = list(kubelet.admitted_pods())
        requeued: List[Pod] = []
        for pod in orphans:
            kubelet.terminate(pod)
            pod.mark_failed(now, f"node {node_name} lost")
            replacement = self.submit(pod.spec, now)
            requeued.append(replacement)
        self.cluster.remove_node(node_name)
        self.heapster.unregister(kubelet)
        self.state_service.kubelets = [
            k for k in self.state_service.kubelets if k is not kubelet
        ]
        self.daemonsets.reconcile(self.kubelets.values())
        self.trigger.publish(
            ClusterEvent.NODE_REMOVED, now, node_name=node_name
        )
        return requeued

    # -- submission --------------------------------------------------------

    def submit(
        self,
        spec: PodSpec,
        now: float,
        submitted_at: Optional[float] = None,
    ) -> Pod:
        """Accept a pod into the pending queue (Fig. 2, steps 1-2).

        ``submitted_at`` backdates the pod's FCFS key without touching
        the event time: the eviction path resubmits a victim's spec
        with its original submission instant, so the replacement
        re-enters exactly where its priority tier's FCFS order had the
        victim instead of being demoted to the tier's tail.
        """
        pod = Pod(
            spec, submitted_at=now if submitted_at is None else submitted_at
        )
        self.queue.push(pod)
        self.all_pods.append(pod)
        self.trigger.publish(
            ClusterEvent.POD_SUBMITTED, now, pod_name=pod.name
        )
        return pod

    # -- monitoring --------------------------------------------------------

    def collect_metrics(self, now: float) -> int:
        """One metrics push from Heapster and every SGX probe."""
        written = self.heapster.collect(now)
        for probe in self.daemonsets.payloads(PROBE_DAEMONSET):
            written += probe.collect(now)
        return written

    # -- scheduling ----------------------------------------------------------

    def scheduling_pass(
        self,
        scheduler: Scheduler,
        now: float,
        only_matching: bool = False,
        *,
        pending: Optional[List[Pod]] = None,
        views: Optional[Sequence[NodeView]] = None,
        on_unschedulable: Optional[Callable[[Pod], bool]] = None,
    ) -> PassResult:
        """Run one pass of *scheduler* over the pending queue.

        With ``only_matching=True``, the pass considers only pods whose
        spec names this scheduler — the paper's Sec. V-B deployment
        where "multiple schedulers concurrently operate over the same
        cluster" and "each pod deployed to the cluster can specify
        which scheduler it requires" (how the authors ran comparative
        benchmarks).  The default considers the whole queue, as in a
        single-scheduler production deployment.

        The keyword-only hooks exist for the sharded (cells) driver:
        *pending* and *views* replace the queue snapshot and the
        state-service build with a cell's slice of each (the defaults
        recompute both, byte-identically to the historical behaviour),
        and *on_unschedulable* intercepts pods the scheduler declared
        permanently unplaceable — returning ``True`` keeps the pod
        queued (the dispatcher re-routed it to a cell that can host
        it), ``False`` falls through to the normal rejection.
        """
        result = PassResult()
        # Consume the cluster events this pass serves (coalescing
        # accounting; periodic callers run regardless of events).
        self.trigger.begin_pass(now)
        if pending is None:
            pending = self.queue.snapshot(now)
        if only_matching:
            pending = [
                pod
                for pod in pending
                if pod.spec.scheduler_name == scheduler.name
            ]
        if not pending:
            return result
        ledger = self.ledger
        if views is None:
            views = self.state_service.build_views(now)
        # pass_begin lands *after* the view build so the record order
        # (cache_rebuild, then pass_begin) matches the sharded runner,
        # which builds views up front and passes them in — the
        # cells=1-vs-flat ledger-identity gate depends on it.
        if ledger.enabled:
            ledger.emit(now, "pass_begin", pending=len(pending))
        # Rebind every pass: cell schedulers all share this ledger.
        scheduler.ledger = ledger
        outcome = scheduler.schedule(pending, views, now)
        result.selection = scheduler.last_selection_stats

        for pod in outcome.unschedulable:
            if on_unschedulable is not None and on_unschedulable(pod):
                # Re-routed to another cell: still pending, not failed.
                result.deferred.append(pod)
                continue
            self.queue.remove(pod)
            pod.mark_failed(now, "Unschedulable: fits no node's capacity")
            result.rejected.append(pod)
            if ledger.enabled:
                ledger.emit(
                    now, "rejection",
                    pod=pod.name, reason="unschedulable",
                )

        for assignment in outcome.assignments:
            pod = assignment.pod
            self.queue.remove(pod)
            pod.mark_bound(assignment.node_name, now)
            kubelet = self.kubelets[assignment.node_name]
            admission = kubelet.admit(pod)
            if admission.success:
                result.launched.append((pod, admission.startup_seconds))
            elif admission.retryable:
                # Transient failure (e.g. the EPC filled between the
                # metrics snapshot and launch): back to the queue, like
                # a Kubernetes crash-looping pod.  The requeue keeps
                # the pod's original submission order — FCFS priority
                # survives the retry instead of demoting the pod to
                # the tail, where the oldest pod could starve forever.
                pod.mark_unbound()
                ready_at = self.queue.requeue(pod, now)
                result.requeued.append(pod)
                if ledger.enabled:
                    ledger.emit(
                        now, "requeue",
                        pod=pod.name, ready_at=ready_at,
                    )
                self.trigger.publish(
                    ClusterEvent.POD_REQUEUED,
                    now,
                    pod_name=pod.name,
                    ready_at=ready_at,
                )
            else:
                pod.mark_failed(now, admission.failure_reason or "killed")
                result.killed.append(pod)
                if ledger.enabled:
                    ledger.emit(
                        now, "launch_killed",
                        pod=pod.name,
                        node=assignment.node_name,
                        reason=admission.failure_reason or "killed",
                    )

        result.wait_reasons = dict(outcome.wait_reasons)
        deferred = list(outcome.deferred)
        if (
            deferred
            and self.preemption_policy is not None
            and not self.preemption_policy.never_preempts
        ):
            deferred = self._preempt_and_place(
                scheduler, views, deferred, result, now
            )
        result.deferred.extend(deferred)
        if ledger.enabled:
            stats = result.selection
            ledger.emit(
                now, "pass_end",
                placed=len(result.launched),
                deferred=len(result.deferred),
                rejected=len(result.rejected),
                requeued=len(result.requeued),
                killed=len(result.killed),
                evicted=len(result.evicted),
                preemptions=result.preemptions,
                feasibility_checks=(
                    stats.feasibility_checks if stats is not None else -1
                ),
                bound_skips=stats.bound_skips if stats is not None else -1,
                score_cutoffs=(
                    stats.score_cutoffs if stats is not None else -1
                ),
                statics_reused=(
                    stats.statics_reused if stats is not None else -1
                ),
            )
        return result

    # -- preemption (the policy layer's in-pass hook) ----------------------

    def _collect_eviction_facts(
        self, now: float
    ) -> Dict[str, List[EvictionCandidate]]:
        """Per node, the priced eviction candidates of this pass.

        The expensive facts — the admitted-pod walk and the
        driver-measured occupancy ioctl behind each candidate's
        ``freed``/``cost`` inputs — are preemptor-independent, so they
        are collected once per pass and filtered per preemptor (the
        priority/QoS gate) by :meth:`_preempt_and_place`, which also
        removes executed victims from these lists.  Pods bound at
        *now* — placed by this very pass — are excluded outright so a
        pass never thrashes its own placements.
        """
        facts: Dict[str, List[EvictionCandidate]] = {}
        for node_name, kubelet in self.kubelets.items():
            candidates: List[EvictionCandidate] = []
            for victim in kubelet.admitted_pods():
                if victim.phase.value not in ("Bound", "Running"):
                    continue
                if victim.bound_at == now:
                    continue
                pages = kubelet.measured_epc_pages(victim)
                victim_requests = victim.spec.resources.requests
                freed = ResourceVector(
                    cpu_millicores=victim_requests.cpu_millicores,
                    memory_bytes=victim_requests.memory_bytes,
                    epc_pages=(
                        pages if pages > 0 else victim_requests.epc_pages
                    ),
                )
                lost = (
                    now - victim.started_at
                    if victim.started_at is not None
                    else 0.0
                )
                candidates.append(
                    EvictionCandidate(
                        pod=victim,
                        node_name=node_name,
                        freed=freed,
                        measured_epc_pages=pages,
                        lost_work_seconds=lost,
                    )
                )
            facts[node_name] = candidates
        return facts

    def _eviction_candidates(
        self,
        preemptor: Pod,
        views: Sequence[NodeView],
        facts: Dict[str, List[EvictionCandidate]],
    ) -> Dict[str, List[EvictionCandidate]]:
        """Per eligible node, the pods *preemptor* may evict.

        Eligibility mirrors ``can_ever_fit``: hardware-compatible
        nodes whose total capacity could host the pod.  A node with no
        evictable pods still appears (with an empty list) because a
        zero-victim plan is valid once earlier evictions freed room.
        Evictability is the QoS layer's call
        (:func:`repro.policy.qos.is_evictable_by`), applied per
        preemptor over the pass's shared *facts*.
        """
        requests = preemptor.spec.resources.requests
        by_node: Dict[str, List[EvictionCandidate]] = {}
        for view in views:
            if preemptor.requires_sgx and not view.sgx_capable:
                continue
            if not requests.fits_within(view.capacity):
                continue
            node_facts = facts.get(view.name)
            if node_facts is None:
                continue
            by_node[view.name] = [
                candidate
                for candidate in node_facts
                if is_evictable_by(candidate.pod, preemptor)
            ]
        return by_node

    def _preempt_and_place(
        self,
        scheduler: Scheduler,
        views: Sequence[NodeView],
        deferred: List[Pod],
        result: PassResult,
        now: float,
    ) -> List[Pod]:
        """Serve deferred pods above the threshold by evicting victims.

        For each deferred pod at or above the priority threshold (in
        queue order — highest tier first, FCFS within), the configured
        planner picks the cheapest feasible eviction set; victims are
        killed through the normal kill path, their specs resubmitted
        with the original ``submitted_at``, and the pod is bound and
        launched *in this same pass*.  The pass's views (and, when the
        pass ran indexed, the candidate index — O(log n) per update)
        track every release and reservation, so later preemptors plan
        against the pass's true in-flight state.  Returns the pods
        still deferred.
        """
        policy = self.preemption_policy
        assert policy is not None
        ledger = self.ledger
        spans = self.spans
        span_start = spans.begin()
        views_by_name = {view.name: view for view in views}
        index = scheduler.last_index
        facts = self._collect_eviction_facts(now)
        still_deferred: List[Pod] = []
        for position, pod in enumerate(deferred):
            if scheduler.strict_fcfs and position > 0:
                # Strict FCFS: an unplaceable queue head blocks every
                # younger pod — including from preempting its way past
                # it.  The tail (deferred as ``head_of_line``, never
                # examined) stays deferred; the next pass re-attempts
                # in order.
                still_deferred.append(pod)
                continue
            if pod.spec.priority < self.preemption_priority_threshold:
                still_deferred.append(pod)
                continue
            plan = policy.plan(
                pod,
                views_by_name,
                self._eviction_candidates(pod, views, facts),
                now,
            )
            if plan is None:
                still_deferred.append(pod)
                continue
            view = views_by_name[plan.node_name]
            if ledger.enabled:
                ledger.emit(
                    now, "preemption",
                    pod=pod.name, node=plan.node_name,
                    victims=len(plan.victims), cost=plan.cost,
                )
            for candidate in plan.victims:
                victim = candidate.pod
                if ledger.enabled:
                    ledger.emit(
                        now, "eviction",
                        victim=victim.name, node=plan.node_name,
                        preemptor=pod.name,
                        lost_work_s=candidate.lost_work_seconds,
                    )
                self.kill_pod(
                    victim, now, f"Evicted: preempted by {pod.name}"
                )
                replacement = self.submit(
                    victim.spec, now, submitted_at=victim.submitted_at
                )
                view.release(
                    candidate.freed, victim.spec.resources.requests
                )
                if index is not None:
                    index.note_released(view)
                facts[plan.node_name].remove(candidate)
                result.evicted.append((victim, replacement))
            if not pod.spec.resources.requests.fits_within(view.available):
                raise SchedulingError(
                    f"{policy.name} planned an infeasible eviction set "
                    f"on {plan.node_name} for pod {pod.name}"
                )
            self.queue.remove(pod)
            pod.mark_bound(plan.node_name, now)
            view.reserve(pod.spec.resources.requests)
            if index is not None:
                index.note_reserved(view)
            result.preemptions += 1
            admission = self.kubelets[plan.node_name].admit(pod)
            if admission.success:
                result.launched.append((pod, admission.startup_seconds))
            elif admission.retryable:
                # The freed EPC can still race a concurrent allocation
                # in principle; the requeue machinery covers it exactly
                # like a regular transient launch failure.
                pod.mark_unbound()
                ready_at = self.queue.requeue(pod, now)
                result.requeued.append(pod)
                if ledger.enabled:
                    ledger.emit(
                        now, "requeue",
                        pod=pod.name, ready_at=ready_at,
                    )
                self.trigger.publish(
                    ClusterEvent.POD_REQUEUED,
                    now,
                    pod_name=pod.name,
                    ready_at=ready_at,
                )
            else:
                pod.mark_failed(now, admission.failure_reason or "killed")
                result.killed.append(pod)
        spans.end(span_start, "preempt", now)
        return still_deferred

    # -- lifecycle driven by the event loop ----------------------------------

    def start_pod(self, pod: Pod, now: float) -> None:
        """Startup latency elapsed; the workload begins useful work."""
        pod.mark_running(now)

    def complete_pod(self, pod: Pod, now: float) -> None:
        """Workload finished; free the node's resources."""
        kubelet = self._kubelet_of(pod)
        kubelet.terminate(pod)
        pod.mark_succeeded(now)
        self.trigger.publish(
            ClusterEvent.POD_COMPLETED,
            now,
            pod_name=pod.name,
            node_name=pod.node_name,
        )

    def migrate_pod(
        self, pod: Pod, target_node_name: str, now: float
    ) -> float:
        """Live-migrate a running SGX pod to another node.

        The paper's future-work extension, wired through the secure
        migration protocol (:mod:`repro.sgx.migration`): quiescent
        checkpoint on the source, self-destroy, attested one-time
        restore on the target.  Returns the migration downtime in
        seconds (checkpoint transfer over the 1 Gbit/s network plus the
        target-side restore allocation), which the caller's event loop
        should account before the pod resumes useful work.
        """
        if pod.node_name is None or pod.node_name == target_node_name:
            raise OrchestrationError(
                f"pod {pod.name} cannot migrate to {target_node_name!r}"
            )
        source = self.kubelets[pod.node_name]
        target = self.kubelets.get(target_node_name)
        if target is None:
            raise OrchestrationError(f"no such node {target_node_name!r}")
        if target.node.driver is None:
            raise OrchestrationError(
                f"target {target_node_name!r} has no SGX support"
            )
        pid, enclave, source_aesm = source.begin_migration(pod)
        # Target-side PSW does not exist yet; attest against a probe
        # AESM for the target platform (same platform identity).
        from ..sgx.aesm import AesmService

        target_probe = AesmService(platform_id=f"platform-{pod.uid}")
        target_probe.start()
        checkpoint, key = self.migrations.checkpoint(
            source.node.driver, pid, enclave, source_aesm, target_probe
        )
        source_node_name = pod.node_name
        source.finish_migration_out(pod)
        # The source's EPC pages are free from here on, whatever the
        # restore outcome: deferred pods may now fit there.
        self.trigger.publish(
            ClusterEvent.CAPACITY_FREED,
            now,
            pod_name=pod.name,
            node_name=source_node_name,
        )

        def restore(new_pid, target_aesm):
            # The key binds to the probe's platform id; rebind the
            # restore-side AESM to it (one platform, one container).
            assert target.node.driver is not None
            return self.migrations.restore(
                target.node.driver, new_pid, checkpoint, key, target_probe
            )

        admission = target.admit_migrated(pod, restore)
        if not admission.success:
            pod.mark_failed(
                now, admission.failure_reason or "migration failed"
            )
            raise OrchestrationError(
                f"migration of {pod.name} to {target_node_name} failed: "
                f"{admission.failure_reason}"
            )
        pod.mark_migrated(target_node_name)
        # Downtime: state transfer (enclave bytes over 1 Gbit/s) plus
        # the target-side rebuild the admission already measured.
        transfer_seconds = checkpoint.size_bytes / 125_000_000
        return transfer_seconds + admission.startup_seconds

    def kill_pod(self, pod: Pod, now: float, reason: str) -> None:
        """Forcibly terminate a pod (any non-terminal phase)."""
        if pod in self.queue:
            self.queue.remove(pod)
        if pod.node_name is not None:
            self._kubelet_of(pod).terminate(pod)
        pod.mark_failed(now, reason)
        self.trigger.publish(
            ClusterEvent.POD_KILLED,
            now,
            pod_name=pod.name,
            node_name=pod.node_name,
        )

    def _kubelet_of(self, pod: Pod) -> Kubelet:
        if pod.node_name is None:
            raise OrchestrationError(f"pod {pod.name} is not bound")
        return self.kubelets[pod.node_name]

    # -- reporting ------------------------------------------------------------

    def pending_epc_pages(self) -> int:
        """EPC pages requested by queued pods (Fig. 7's y-axis)."""
        return self.queue.total_requested_epc_pages()

    def pods_by_phase(self) -> Dict[str, List[Pod]]:
        """All pods grouped by phase value (reporting convenience)."""
        grouped: Dict[str, List[Pod]] = {}
        for pod in self.all_pods:
            grouped.setdefault(pod.phase.value, []).append(pod)
        return grouped
