"""Orchestrator facade: the control plane wired together.

Owns the cluster's Kubelets, the device plugins, the monitoring pipeline
(Heapster + SGX probes via a DaemonSet) and the persistent pending
queue, and exposes the operations the event loop drives:

* :meth:`Orchestrator.submit` — user submits a pod (Fig. 2, step 1-2);
* :meth:`Orchestrator.collect_metrics` — probes push usage samples;
* :meth:`Orchestrator.scheduling_pass` — fetch pending jobs + metrics,
  filter, place, bind (Fig. 2, steps 3-5);
* :meth:`Orchestrator.start_pod` / :meth:`complete_pod` / meth:`kill_pod`
  — lifecycle transitions driven by the simulation clock.

The orchestrator itself is clock-free: every method takes ``now``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..cluster.topology import Cluster
from ..constants import METRICS_WINDOW_SECONDS
from ..errors import OrchestrationError
from ..monitoring.aggregate import WindowedAggregateCache
from ..monitoring.heapster import Heapster
from ..monitoring.probe import SgxMetricsProbe
from ..monitoring.tsdb import TimeSeriesDatabase
from ..scheduler.base import ClusterStateService, Scheduler
from ..scheduler.index import SelectionStats
from ..sgx.migration import MigrationManager
from ..sgx.perf import SgxPerfModel
from .api import PodSpec
from .daemonset import DaemonSetController, sgx_node_selector
from .device_plugin import SgxDevicePlugin
from .images import ImageRegistry
from .kubelet import Kubelet
from .pod import Pod
from .queue import PendingQueue
from .rpc import RpcChannel
from .triggers import ClusterEvent, SchedulingTrigger

#: Name of the DaemonSet that keeps one SGX probe per SGX node.
PROBE_DAEMONSET = "sgx-metrics-probe"


@dataclass
class PassResult:
    """What one scheduling pass did."""

    #: Pods successfully launched, with their startup latency.
    launched: List[Tuple[Pod, float]] = field(default_factory=list)
    #: Pods killed at launch (limit enforcement, EPC exhaustion...).
    killed: List[Pod] = field(default_factory=list)
    #: Pods rejected as permanently unschedulable.
    rejected: List[Pod] = field(default_factory=list)
    #: Pods whose launch failed transiently and were requeued.
    requeued: List[Pod] = field(default_factory=list)
    #: Pods left pending.
    deferred: List[Pod] = field(default_factory=list)
    #: Counters of the indexed candidate selection, when the scheduler
    #: ran this pass in indexed mode (``None`` for the oracle path).
    selection: Optional[SelectionStats] = None


class Orchestrator:
    """The control plane of one cluster."""

    def __init__(
        self,
        cluster: Cluster,
        db: Optional[TimeSeriesDatabase] = None,
        perf_model: Optional[SgxPerfModel] = None,
        metrics_window_seconds: float = METRICS_WINDOW_SECONDS,
        enforce_memory_limits: bool = False,
        registry: Optional[ImageRegistry] = None,
        use_state_cache: bool = True,
        requeue_backoff_seconds: float = 0.0,
    ):
        self.cluster = cluster
        # Explicit None check: an empty TimeSeriesDatabase is falsy
        # (len == 0), and ``db or ...`` would silently discard it.
        self.db = (
            db if db is not None
            else TimeSeriesDatabase(retention_seconds=3600.0)
        )
        # Incremental cluster-state cache: keeps the sliding-window
        # maxima the scheduling pass needs up to date on every metrics
        # write, so build_views never re-scans the TSDB window.  A
        # caller-supplied db may already carry a cache (e.g. two
        # orchestrators sharing one database); reuse it rather than
        # stacking a second subscriber over the same window.
        self.aggregate_cache: Optional[WindowedAggregateCache] = None
        if use_state_cache:
            existing = getattr(self.db, "aggregate_cache", None)
            if (
                existing is not None
                and existing.window_seconds == metrics_window_seconds
            ):
                self.aggregate_cache = existing
            else:
                self.aggregate_cache = WindowedAggregateCache(
                    self.db, window_seconds=metrics_window_seconds
                )
        self.perf_model = perf_model or SgxPerfModel()
        self.registry = registry
        self.enforce_memory_limits = enforce_memory_limits
        # One set of Kubelet construction kwargs, used for the initial
        # inventory AND for nodes joined later via add_node — a kubelet
        # must behave identically whether its node was present at
        # bootstrap or joined mid-run.
        self._kubelet_kwargs = dict(
            perf_model=self.perf_model,
            enforce_memory_limits=enforce_memory_limits,
            registry=registry,
        )
        self.kubelets: Dict[str, Kubelet] = {}
        for node in cluster:
            kubelet = Kubelet(node, **self._kubelet_kwargs)
            self.kubelets[node.name] = kubelet
            # Device plugin discovers /dev/isgx and registers over RPC.
            SgxDevicePlugin(node).register(RpcChannel(kubelet.rpc_server))

        self.heapster = Heapster(self.db)
        self.heapster.register_all(self.kubelets.values())

        self.daemonsets = DaemonSetController()
        self.daemonsets.create(
            PROBE_DAEMONSET,
            selector=sgx_node_selector,
            factory=self._make_probe,
        )
        self.daemonsets.reconcile(self.kubelets.values())

        self.state_service = ClusterStateService(
            list(self.kubelets.values()),
            self.db,
            window_seconds=metrics_window_seconds,
            cache=self.aggregate_cache,
            allow_query_cache=use_state_cache,
        )
        self.queue = PendingQueue(
            requeue_backoff_seconds=requeue_backoff_seconds
        )
        self.all_pods: List[Pod] = []
        self.migrations = MigrationManager()
        #: Event hub: every cluster transition that could make a
        #: scheduling pass useful is published here, so event-driven
        #: drivers react to state changes instead of polling on a
        #: timer (the periodic mode simply never consults it).
        self.trigger = SchedulingTrigger()

    def _make_probe(self, kubelet: Kubelet) -> SgxMetricsProbe:
        driver = kubelet.node.driver
        if driver is None:
            raise OrchestrationError(
                f"probe requested for non-SGX node {kubelet.node.name}"
            )
        return SgxMetricsProbe(
            node_name=kubelet.node.name,
            driver=driver,
            db=self.db,
            pod_name_resolver=kubelet.resolve_pod_name,
        )

    # -- node lifecycle (Sec. V-C: probes follow nodes automatically) ----

    def add_node(self, node, now: float) -> Kubelet:
        """Join a new physical node to the cluster.

        Registers its Kubelet and device plugin, hooks it into Heapster
        and lets the DaemonSet controller deploy a probe if the node
        advertises SGX — the paper's "automatically handle the
        deployment of new probes when adding physical nodes".  The
        Kubelet is built with the same kwargs as the bootstrap
        inventory, so policies like memory-limit enforcement apply to
        late-joined nodes too.
        """
        self.cluster.add_node(node)
        kubelet = Kubelet(node, **self._kubelet_kwargs)
        self.kubelets[node.name] = kubelet
        SgxDevicePlugin(node).register(RpcChannel(kubelet.rpc_server))
        self.heapster.register(kubelet)
        self.daemonsets.reconcile(self.kubelets.values())
        self.state_service.kubelets.append(kubelet)
        self.trigger.publish(
            ClusterEvent.NODE_ADDED, now, node_name=node.name
        )
        return kubelet

    def remove_node(self, node_name: str, now: float) -> List[Pod]:
        """Handle a node crash or drain.

        Pods running there are re-submitted to the queue (their specs
        survive; their progress does not — a crash analogue of the
        Kubernetes controller recreating lost pods), the node's probe is
        reaped by the DaemonSet reconciliation and its metrics stop.
        Returns the requeued pods.
        """
        kubelet = self.kubelets.pop(node_name, None)
        if kubelet is None:
            raise OrchestrationError(f"no such node {node_name!r}")
        orphans = list(kubelet.admitted_pods())
        requeued: List[Pod] = []
        for pod in orphans:
            kubelet.terminate(pod)
            pod.mark_failed(now, f"node {node_name} lost")
            replacement = self.submit(pod.spec, now)
            requeued.append(replacement)
        self.cluster.remove_node(node_name)
        self.heapster.unregister(kubelet)
        self.state_service.kubelets = [
            k for k in self.state_service.kubelets if k is not kubelet
        ]
        self.daemonsets.reconcile(self.kubelets.values())
        self.trigger.publish(
            ClusterEvent.NODE_REMOVED, now, node_name=node_name
        )
        return requeued

    # -- submission --------------------------------------------------------

    def submit(self, spec: PodSpec, now: float) -> Pod:
        """Accept a pod into the pending queue (Fig. 2, steps 1-2)."""
        pod = Pod(spec, submitted_at=now)
        self.queue.push(pod)
        self.all_pods.append(pod)
        self.trigger.publish(
            ClusterEvent.POD_SUBMITTED, now, pod_name=pod.name
        )
        return pod

    # -- monitoring --------------------------------------------------------

    def collect_metrics(self, now: float) -> int:
        """One metrics push from Heapster and every SGX probe."""
        written = self.heapster.collect(now)
        for probe in self.daemonsets.payloads(PROBE_DAEMONSET):
            written += probe.collect(now)
        return written

    # -- scheduling ----------------------------------------------------------

    def scheduling_pass(
        self,
        scheduler: Scheduler,
        now: float,
        only_matching: bool = False,
    ) -> PassResult:
        """Run one pass of *scheduler* over the pending queue.

        With ``only_matching=True``, the pass considers only pods whose
        spec names this scheduler — the paper's Sec. V-B deployment
        where "multiple schedulers concurrently operate over the same
        cluster" and "each pod deployed to the cluster can specify
        which scheduler it requires" (how the authors ran comparative
        benchmarks).  The default considers the whole queue, as in a
        single-scheduler production deployment.
        """
        result = PassResult()
        # Consume the cluster events this pass serves (coalescing
        # accounting; periodic callers run regardless of events).
        self.trigger.begin_pass(now)
        pending = self.queue.snapshot(now)
        if only_matching:
            pending = [
                pod
                for pod in pending
                if pod.spec.scheduler_name == scheduler.name
            ]
        if not pending:
            return result
        views = self.state_service.build_views(now)
        outcome = scheduler.schedule(pending, views, now)
        result.selection = scheduler.last_selection_stats

        for pod in outcome.unschedulable:
            self.queue.remove(pod)
            pod.mark_failed(now, "Unschedulable: fits no node's capacity")
            result.rejected.append(pod)

        for assignment in outcome.assignments:
            pod = assignment.pod
            self.queue.remove(pod)
            pod.mark_bound(assignment.node_name, now)
            kubelet = self.kubelets[assignment.node_name]
            admission = kubelet.admit(pod)
            if admission.success:
                result.launched.append((pod, admission.startup_seconds))
            elif admission.retryable:
                # Transient failure (e.g. the EPC filled between the
                # metrics snapshot and launch): back to the queue, like
                # a Kubernetes crash-looping pod.  The requeue keeps
                # the pod's original submission order — FCFS priority
                # survives the retry instead of demoting the pod to
                # the tail, where the oldest pod could starve forever.
                pod.mark_unbound()
                ready_at = self.queue.requeue(pod, now)
                result.requeued.append(pod)
                self.trigger.publish(
                    ClusterEvent.POD_REQUEUED,
                    now,
                    pod_name=pod.name,
                    ready_at=ready_at,
                )
            else:
                pod.mark_failed(now, admission.failure_reason or "killed")
                result.killed.append(pod)

        result.deferred.extend(outcome.deferred)
        return result

    # -- lifecycle driven by the event loop ----------------------------------

    def start_pod(self, pod: Pod, now: float) -> None:
        """Startup latency elapsed; the workload begins useful work."""
        pod.mark_running(now)

    def complete_pod(self, pod: Pod, now: float) -> None:
        """Workload finished; free the node's resources."""
        kubelet = self._kubelet_of(pod)
        kubelet.terminate(pod)
        pod.mark_succeeded(now)
        self.trigger.publish(
            ClusterEvent.POD_COMPLETED,
            now,
            pod_name=pod.name,
            node_name=pod.node_name,
        )

    def migrate_pod(
        self, pod: Pod, target_node_name: str, now: float
    ) -> float:
        """Live-migrate a running SGX pod to another node.

        The paper's future-work extension, wired through the secure
        migration protocol (:mod:`repro.sgx.migration`): quiescent
        checkpoint on the source, self-destroy, attested one-time
        restore on the target.  Returns the migration downtime in
        seconds (checkpoint transfer over the 1 Gbit/s network plus the
        target-side restore allocation), which the caller's event loop
        should account before the pod resumes useful work.
        """
        if pod.node_name is None or pod.node_name == target_node_name:
            raise OrchestrationError(
                f"pod {pod.name} cannot migrate to {target_node_name!r}"
            )
        source = self.kubelets[pod.node_name]
        target = self.kubelets.get(target_node_name)
        if target is None:
            raise OrchestrationError(f"no such node {target_node_name!r}")
        if target.node.driver is None:
            raise OrchestrationError(
                f"target {target_node_name!r} has no SGX support"
            )
        pid, enclave, source_aesm = source.begin_migration(pod)
        # Target-side PSW does not exist yet; attest against a probe
        # AESM for the target platform (same platform identity).
        from ..sgx.aesm import AesmService

        target_probe = AesmService(platform_id=f"platform-{pod.uid}")
        target_probe.start()
        checkpoint, key = self.migrations.checkpoint(
            source.node.driver, pid, enclave, source_aesm, target_probe
        )
        source_node_name = pod.node_name
        source.finish_migration_out(pod)
        # The source's EPC pages are free from here on, whatever the
        # restore outcome: deferred pods may now fit there.
        self.trigger.publish(
            ClusterEvent.CAPACITY_FREED,
            now,
            pod_name=pod.name,
            node_name=source_node_name,
        )

        def restore(new_pid, target_aesm):
            # The key binds to the probe's platform id; rebind the
            # restore-side AESM to it (one platform, one container).
            assert target.node.driver is not None
            return self.migrations.restore(
                target.node.driver, new_pid, checkpoint, key, target_probe
            )

        admission = target.admit_migrated(pod, restore)
        if not admission.success:
            pod.mark_failed(
                now, admission.failure_reason or "migration failed"
            )
            raise OrchestrationError(
                f"migration of {pod.name} to {target_node_name} failed: "
                f"{admission.failure_reason}"
            )
        pod.mark_migrated(target_node_name)
        # Downtime: state transfer (enclave bytes over 1 Gbit/s) plus
        # the target-side rebuild the admission already measured.
        transfer_seconds = checkpoint.size_bytes / 125_000_000
        return transfer_seconds + admission.startup_seconds

    def kill_pod(self, pod: Pod, now: float, reason: str) -> None:
        """Forcibly terminate a pod (any non-terminal phase)."""
        if pod in self.queue:
            self.queue.remove(pod)
        if pod.node_name is not None:
            self._kubelet_of(pod).terminate(pod)
        pod.mark_failed(now, reason)
        self.trigger.publish(
            ClusterEvent.POD_KILLED,
            now,
            pod_name=pod.name,
            node_name=pod.node_name,
        )

    def _kubelet_of(self, pod: Pod) -> Kubelet:
        if pod.node_name is None:
            raise OrchestrationError(f"pod {pod.name} is not bound")
        return self.kubelets[pod.node_name]

    # -- reporting ------------------------------------------------------------

    def pending_epc_pages(self) -> int:
        """EPC pages requested by queued pods (Fig. 7's y-axis)."""
        return self.queue.total_requested_epc_pages()

    def pods_by_phase(self) -> Dict[str, List[Pod]]:
        """All pods grouped by phase value (reporting convenience)."""
        grouped: Dict[str, List[Pod]] = {}
        for pod in self.all_pods:
            grouped.setdefault(pod.phase.value, []).append(pod)
        return grouped
