"""Event-driven scheduling triggers: react instead of polling.

Section IV of the paper runs the scheduler on a fixed period: "the
scheduler periodically checks for the possibility to schedule" pending
jobs.  That is faithful to the testbed (5 nodes, one queue) but wasteful
at scale — most periodic passes find a cluster in exactly the state the
previous pass left it and recompute the same all-deferred outcome.

This module turns the initiation of scheduling passes inside out.  The
:class:`~repro.orchestrator.controller.Orchestrator` *publishes* cluster
events — pod submitted, pod completed, pod killed, node added/removed,
capacity freed by a migration, a requeue backoff expiring — into a
:class:`SchedulingTrigger`.  Whatever drives the control plane (the
simulation's replay runner, a benchmark harness, a test) then asks the
trigger whether a pass is *due* instead of blindly running one:

* **coalescing** — any number of events between two passes are served by
  one pass; :meth:`SchedulingTrigger.begin_pass` consumes everything
  that became ready and counts the surplus as coalesced;
* **min-interval guard** — :meth:`next_pass_due` never answers a time
  closer than ``min_interval_seconds`` after the previous pass, bounding
  the pass rate under event storms (mass submissions, cascading
  requeues);
* **backoff awareness** — a requeued pod publishes a ``ready_at`` in the
  future; the event stays *deferred* and only makes a pass due once its
  backoff expires, so crash-looping admissions cannot spin the
  scheduler.

**The periodic mode stays as the oracle.**  The trigger deliberately
does not own a clock or an event loop: callers pass ``now`` and decide
when to look.  The replay runner's event-driven mode keeps waking on the
paper's periodic grid but consults the trigger (plus the cluster-state
fingerprint, see :meth:`repro.scheduler.base.ClusterStateService.
state_unchanged`) to *skip* passes that provably cannot differ from the
previous one.  Because a skipped pass is exactly a pass the periodic
oracle would have executed to an all-deferred no-op, event-driven replay
reproduces the periodic replay bit-for-bit — same bindings, same
timestamps — while executing far fewer passes.  ``ReplayConfig
(event_driven=False)`` remains the default, so Sec. IV's "periodically
checks" behaviour is reproducible unchanged.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..obs.ledger import NULL_LEDGER


class ClusterEvent(enum.Enum):
    """Cluster state transitions that can make a scheduling pass useful."""

    #: A new pod entered the pending queue.
    POD_SUBMITTED = "pod-submitted"
    #: A transiently failed launch went back to the queue; carries the
    #: ``ready_at`` at which its backoff expires.
    POD_REQUEUED = "pod-requeued"
    #: A requeued pod's backoff expired (derived from POD_REQUEUED when
    #: the pass that serves it begins).
    REQUEUE_READY = "requeue-ready"
    #: A pod finished and returned its resources.
    POD_COMPLETED = "pod-completed"
    #: A pod was forcibly terminated (possibly freeing resources).
    POD_KILLED = "pod-killed"
    #: A node joined the cluster (new capacity).
    NODE_ADDED = "node-added"
    #: A node left the cluster (capacity lost, pods resubmitted).
    NODE_REMOVED = "node-removed"
    #: Resources freed outside the completion path (e.g. a migration
    #: vacated its source node).
    CAPACITY_FREED = "capacity-freed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TriggerEvent:
    """One published cluster event."""

    kind: ClusterEvent
    time: float
    #: Earliest time a pass serving this event is useful; equals
    #: ``time`` for everything except backoff requeues.
    ready_at: float
    pod_name: Optional[str] = None
    node_name: Optional[str] = None


#: Listener signature: receives every published event, immediately.
Listener = Callable[[TriggerEvent], None]


class SchedulingTrigger:
    """Publish/subscribe hub that gates scheduling passes.

    Parameters
    ----------
    min_interval_seconds:
        Lower bound on the spacing between two granted passes.  ``0``
        disables the guard (the replay runner uses its periodic grid as
        the guard instead and leaves this at 0).
    """

    def __init__(self, min_interval_seconds: float = 0.0):
        self.min_interval_seconds = min_interval_seconds
        self._listeners: List[Listener] = []
        #: Events ready to be served by the next pass.
        self._ready: List[TriggerEvent] = []
        #: Backoff events not yet ready: heap of (ready_at, seq, event).
        self._deferred: List[Tuple[float, int, TriggerEvent]] = []
        self._seq = 0
        self._last_pass_at: Optional[float] = None
        # Stats the benchmark harness reports.
        self.events_published = 0
        self.passes_started = 0
        self.events_coalesced = 0
        #: The run's decision ledger (the orchestrator rebinds this to
        #: the live one on observed runs); every published event is
        #: recorded as a ``trigger`` ledger record.
        self.ledger = NULL_LEDGER

    # -- pub/sub -----------------------------------------------------------

    def subscribe(self, listener: Listener) -> None:
        """Register *listener* for every future publish."""
        self._listeners.append(listener)

    def publish(
        self,
        kind: ClusterEvent,
        now: float,
        pod_name: Optional[str] = None,
        node_name: Optional[str] = None,
        ready_at: Optional[float] = None,
    ) -> TriggerEvent:
        """Record one cluster event and notify listeners."""
        event = TriggerEvent(
            kind=kind,
            time=now,
            ready_at=now if ready_at is None else max(now, ready_at),
            pod_name=pod_name,
            node_name=node_name,
        )
        self.events_published += 1
        ledger = self.ledger
        if ledger.enabled:
            ledger.emit(
                now, "trigger",
                event=kind.value, pod=pod_name, node=node_name,
            )
        if event.ready_at > now:
            self._seq += 1
            heapq.heappush(
                self._deferred, (event.ready_at, self._seq, event)
            )
        else:
            self._ready.append(event)
        for listener in self._listeners:
            listener(event)
        return event

    # -- pass gating -------------------------------------------------------

    def _promote(self, now: float) -> None:
        """Move deferred events whose backoff expired to the ready set."""
        while self._deferred and self._deferred[0][0] <= now:
            _, _, event = heapq.heappop(self._deferred)
            ready = TriggerEvent(
                kind=ClusterEvent.REQUEUE_READY,
                time=event.ready_at,
                ready_at=event.ready_at,
                pod_name=event.pod_name,
                node_name=event.node_name,
            )
            self._ready.append(ready)
            for listener in self._listeners:
                listener(ready)

    def has_work(self, now: float) -> bool:
        """Whether any event is ready to be served at *now*."""
        self._promote(now)
        return bool(self._ready)

    def next_wake(self, now: float) -> Optional[float]:
        """Earliest future ``ready_at`` among deferred events, if any."""
        self._promote(now)
        return self._deferred[0][0] if self._deferred else None

    def next_pass_due(self, now: float) -> Optional[float]:
        """When a pass serving the ready events may run, or ``None``.

        ``None`` means no event is ready at *now*; otherwise the answer
        is *now* pushed out by the min-interval guard.
        """
        if not self.has_work(now):
            return None
        if self._last_pass_at is None:
            return now
        return max(now, self._last_pass_at + self.min_interval_seconds)

    def begin_pass(self, now: float) -> List[TriggerEvent]:
        """Consume the ready events a pass starting at *now* serves.

        Returns the consumed events (possibly empty — a periodic
        fallback pass runs regardless of events).  All but the first are
        counted as coalesced: one pass served them all.
        """
        self._promote(now)
        consumed = self._ready
        self._ready = []
        self._last_pass_at = now
        self.passes_started += 1
        if len(consumed) > 1:
            self.events_coalesced += len(consumed) - 1
        return consumed

    def discard_ready(self, now: float) -> int:
        """Drop the events ready at *now* without granting a pass.

        For drivers that know a pass would be pointless regardless of
        events — e.g. the pending queue is empty, so completions have
        nothing to unblock.  Backoff events whose ``ready_at`` is still
        in the future are kept: their pods are still queued and will
        need a pass once ready.
        """
        self._promote(now)
        dropped = len(self._ready)
        self._ready = []
        return dropped

    @property
    def pending_events(self) -> int:
        """Ready plus deferred events not yet consumed by a pass."""
        return len(self._ready) + len(self._deferred)
