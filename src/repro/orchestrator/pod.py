"""Pod runtime object: spec plus mutable status and timestamps.

The timestamps record the exact quantities the evaluation reports:

* **waiting time** (Figs. 8, 9, 11) — submission to actual start;
* **turnaround time** (Fig. 10) — submission to completion.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..errors import OrchestrationError
from .api import PodPhase, PodSpec

_UIDS = itertools.count(1)


class Pod:
    """One submitted pod and its lifecycle bookkeeping.

    Slotted: replays hold thousands of these alive at once, and the
    default identity equality/hash is exactly what the orchestrator's
    bookkeeping relies on (slots change neither).
    """

    __slots__ = (
        "spec",
        "uid",
        "phase",
        "submitted_at",
        "bound_at",
        "started_at",
        "finished_at",
        "node_name",
        "cgroup_path",
        "failure_reason",
    )

    def __init__(self, spec: PodSpec, submitted_at: float):
        self.spec = spec
        self.uid = f"{next(_UIDS):08d}"
        self.phase = PodPhase.PENDING
        self.submitted_at = submitted_at
        self.bound_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.node_name: Optional[str] = None
        self.cgroup_path: Optional[str] = None
        self.failure_reason: Optional[str] = None

    # -- identity ----------------------------------------------------------

    @property
    def name(self) -> str:
        """The pod's name (unique per experiment by construction)."""
        return self.spec.name

    @property
    def requires_sgx(self) -> bool:
        """Whether this pod can only run on SGX nodes."""
        return self.spec.requires_sgx

    @property
    def qos_class(self):
        """The pod's QoS tier (requests vs limits; governs eviction)."""
        # Imported lazily: the policy package sits above the
        # orchestrator in the layering and must stay importable alone.
        from ..policy.qos import qos_of

        return qos_of(self.spec.resources)

    # -- transitions ----------------------------------------------------------

    def mark_bound(self, node_name: str, now: float) -> None:
        """Scheduler decision applied: pod assigned to *node_name*."""
        self._require_phase(PodPhase.PENDING, "bind")
        self.phase = PodPhase.BOUND
        self.node_name = node_name
        self.bound_at = now

    def mark_unbound(self) -> None:
        """Undo a binding after a retryable launch failure.

        The pod returns to the pending phase (and, at the orchestrator,
        to the queue) — the Kubernetes crash-loop analogue for races
        such as an enclave creation finding the EPC momentarily full.
        """
        self._require_phase(PodPhase.BOUND, "unbind")
        self.phase = PodPhase.PENDING
        self.node_name = None
        self.bound_at = None
        self.cgroup_path = None

    def mark_running(self, now: float) -> None:
        """Container processes started (startup latency elapsed)."""
        self._require_phase(PodPhase.BOUND, "start")
        self.phase = PodPhase.RUNNING
        self.started_at = now

    def mark_migrated(self, node_name: str) -> None:
        """Live migration completed: the pod now runs on *node_name*.

        Only running pods migrate (the paper's future-work extension);
        waiting/turnaround accounting is unaffected — migration moves
        the pod mid-flight without restarting its clock.
        """
        self._require_phase(PodPhase.RUNNING, "migrate")
        self.node_name = node_name

    def mark_succeeded(self, now: float) -> None:
        """Workload ran to completion."""
        self._require_phase(PodPhase.RUNNING, "complete")
        self.phase = PodPhase.SUCCEEDED
        self.finished_at = now

    def mark_failed(self, now: float, reason: str) -> None:
        """Pod killed or rejected; allowed from any non-terminal phase."""
        if self.phase.is_terminal:
            raise OrchestrationError(
                f"pod {self.name} already terminal ({self.phase})"
            )
        self.phase = PodPhase.FAILED
        self.finished_at = now
        self.failure_reason = reason

    def _require_phase(self, expected: PodPhase, action: str) -> None:
        if self.phase is not expected:
            raise OrchestrationError(
                f"cannot {action} pod {self.name} in phase {self.phase}"
            )

    # -- reported metrics ---------------------------------------------------

    @property
    def waiting_seconds(self) -> Optional[float]:
        """Submission to actual start (the paper's waiting time)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def turnaround_seconds(self) -> Optional[float]:
        """Submission to termination (the paper's turnaround time)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def __repr__(self) -> str:
        return (
            f"Pod({self.name!r}, uid={self.uid}, phase={self.phase}, "
            f"node={self.node_name!r})"
        )
