"""In-process gRPC-like channel.

Kubelet and device plugins talk gRPC in the real system (Section V-A).
We model the transport as named-method dispatch with explicit
registration, connection state and error mapping, so the architectural
seam is preserved (plugins cannot poke Kubelet internals; they can only
call registered methods) while staying in-process.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..errors import RpcError

Handler = Callable[..., Any]


class RpcServer:
    """A service endpoint exposing named methods."""

    def __init__(self, service_name: str):
        self.service_name = service_name
        self._handlers: Dict[str, Handler] = {}
        self._serving = True

    def register_method(self, name: str, handler: Handler) -> None:
        """Expose *handler* as RPC method *name*."""
        if name in self._handlers:
            raise RpcError(
                f"{self.service_name}: method {name!r} already registered"
            )
        self._handlers[name] = handler

    def stop(self) -> None:
        """Stop serving; subsequent calls fail as UNAVAILABLE."""
        self._serving = False

    def _dispatch(self, method: str, kwargs: Dict[str, Any]) -> Any:
        if not self._serving:
            raise RpcError(f"{self.service_name}: UNAVAILABLE")
        handler = self._handlers.get(method)
        if handler is None:
            raise RpcError(
                f"{self.service_name}: UNIMPLEMENTED method {method!r}"
            )
        return handler(**kwargs)


class RpcChannel:
    """A client connection to one :class:`RpcServer`."""

    def __init__(self, server: RpcServer):
        self._server = server

    def call(self, method: str, **kwargs: Any) -> Any:
        """Invoke *method* on the remote end."""
        return self._server._dispatch(method, kwargs)
