"""Persistent FCFS pending queue.

Section IV: "The orchestrator keeps a persistent queue of pending jobs;
the scheduler periodically checks for the possibility to schedule some of
them, applying a first-come first-served (FCFS) priority."

Jobs are iterated oldest-first.  Like the Kubernetes scheduler the paper
extends non-preemptively, a job that cannot currently be placed does not
block younger jobs from being attempted (no head-of-line blocking), but
priority remains FCFS: every pass considers older jobs first.  A strict
variant is available for the ablation benchmark.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from ..errors import OrchestrationError
from .pod import Pod


class PendingQueue:
    """FIFO of pending pods, keyed by uid for O(1) removal."""

    def __init__(self):
        self._pods: "OrderedDict[str, Pod]" = OrderedDict()

    def push(self, pod: Pod) -> None:
        """Enqueue a newly submitted pod at the tail."""
        if pod.uid in self._pods:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) already queued"
            )
        self._pods[pod.uid] = pod

    def remove(self, pod: Pod) -> None:
        """Remove a pod (scheduled or rejected)."""
        if pod.uid not in self._pods:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) is not queued"
            )
        del self._pods[pod.uid]

    def __contains__(self, pod: Pod) -> bool:
        return pod.uid in self._pods

    def __len__(self) -> int:
        return len(self._pods)

    def __iter__(self) -> Iterator[Pod]:
        """Oldest-first iteration over a snapshot of the queue."""
        return iter(list(self._pods.values()))

    def peek(self) -> Optional[Pod]:
        """The oldest pending pod, or ``None``."""
        for pod in self._pods.values():
            return pod
        return None

    def snapshot(self) -> List[Pod]:
        """Oldest-first list copy."""
        return list(self._pods.values())

    def total_requested_epc_pages(self) -> int:
        """Sum of EPC pages requested by queued pods (Fig. 7's y-axis)."""
        return sum(
            pod.spec.resources.requests.epc_pages for pod in self._pods.values()
        )

    def total_requested_memory_bytes(self) -> int:
        """Sum of standard memory requested by queued pods."""
        return sum(
            pod.spec.resources.requests.memory_bytes
            for pod in self._pods.values()
        )
