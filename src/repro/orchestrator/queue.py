"""Priority-tiered FCFS pending queue with a backoff-aware requeue
sub-queue.

Section IV: "The orchestrator keeps a persistent queue of pending jobs;
the scheduler periodically checks for the possibility to schedule some of
them, applying a first-come first-served (FCFS) priority."

Jobs are iterated highest-priority-tier first, and oldest-first by
*original submission time* within a tier.  The paper's evaluation runs
entirely at the default priority 0, where the tier key is constant and
the order collapses to the original pure FCFS — priority-disabled
replays are bit-for-bit identical to the pre-policy queue.  Like the
Kubernetes scheduler the paper extends non-preemptively, a job that
cannot currently be placed does not block younger jobs from being
attempted (no head-of-line blocking), but priority within a tier
remains FCFS: every pass considers older jobs first.  A strict variant
is available for the ablation benchmark.

Two queues live here:

* the **main queue** of submitted pods, ordered by
  ``(-priority, submitted_at, uid)`` — uids are monotonically
  increasing, so ties at the same submission instant break by arrival
  order;
* the **requeue sub-queue** for pods whose launch failed transiently.
  A requeued pod keeps its original ``submitted_at`` key, so it regains
  its FCFS position instead of being demoted to the tail (where the
  oldest pod could starve behind younger ones forever).  Each requeue
  carries a ``ready_at = now + backoff``; until then the pod is hidden
  from :meth:`snapshot`, which keeps crash-looping admissions from
  hammering every pass while preserving the pod's priority the moment
  its backoff expires.  The default backoff of 0 makes requeued pods
  eligible immediately, matching the paper's retry-next-pass behaviour.

The scheduling order is materialised once and maintained
incrementally — pushes bisect into place, removals splice out — so the
per-pass snapshot costs a copy, not a fresh ``O(n log n)`` sort.  The
requested-resource aggregates the queue samples report every tick are
kept as running integer totals the same way.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterator, List, Optional

from ..errors import OrchestrationError
from .pod import Pod


def _order_key(pod: Pod):
    """Scheduling order: priority tiers first, FCFS within a tier."""
    return (-pod.spec.priority, pod.submitted_at, pod.uid)


class PendingQueue:
    """FCFS pending pods, keyed by uid for O(1) membership."""

    __slots__ = (
        "requeue_backoff_seconds", "_pods", "_sorted", "_ready_at",
        "_total_epc_pages", "_total_memory_bytes",
    )

    def __init__(self, requeue_backoff_seconds: float = 0.0):
        if requeue_backoff_seconds < 0:
            raise OrchestrationError(
                f"requeue backoff must be >= 0, got {requeue_backoff_seconds}"
            )
        self.requeue_backoff_seconds = requeue_backoff_seconds
        self._pods: Dict[str, Pod] = {}
        #: Scheduling-ordered materialisation of ``_pods``; every key
        #: is unique (uids are), so bisection insert keeps it exact.
        self._sorted: List[Pod] = []
        #: uid -> ready_at for pods sitting out a requeue backoff.
        self._ready_at: Dict[str, float] = {}
        self._total_epc_pages = 0
        self._total_memory_bytes = 0

    # -- mutation ----------------------------------------------------------

    def push(self, pod: Pod) -> None:
        """Enqueue a newly submitted pod (FCFS position: its uid)."""
        if pod.uid in self._pods:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) already queued"
            )
        self._pods[pod.uid] = pod
        insort(self._sorted, pod, key=_order_key)
        requests = pod.spec.resources.requests
        self._total_epc_pages += requests.epc_pages
        self._total_memory_bytes += requests.memory_bytes

    def requeue(self, pod: Pod, now: float) -> float:
        """Reinsert a transiently failed pod at its original FCFS slot.

        Returns the ``ready_at`` time at which the pod becomes eligible
        again (``now`` when no backoff is configured).
        """
        self.push(pod)
        ready_at = now + self.requeue_backoff_seconds
        if ready_at > now:
            self._ready_at[pod.uid] = ready_at
        return ready_at

    def remove(self, pod: Pod) -> None:
        """Remove a pod (scheduled or rejected)."""
        if pod.uid not in self._pods:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) is not queued"
            )
        del self._pods[pod.uid]
        self._sorted.remove(pod)
        self._ready_at.pop(pod.uid, None)
        requests = pod.spec.resources.requests
        self._total_epc_pages -= requests.epc_pages
        self._total_memory_bytes -= requests.memory_bytes

    # -- membership --------------------------------------------------------

    def __contains__(self, pod: Pod) -> bool:
        return pod.uid in self._pods

    def __len__(self) -> int:
        return len(self._pods)

    def _ordered(self) -> List[Pod]:
        """All queued pods: priority tiers first, FCFS within a tier.

        An evicted pod is resubmitted with its *original*
        ``submitted_at``, so it re-enters exactly where its tier's
        FCFS order had it.  Returns a copy: callers mutate the queue
        while walking it.
        """
        return list(self._sorted)

    def __iter__(self) -> Iterator[Pod]:
        """Highest-tier-oldest-first iteration over a queue snapshot."""
        return iter(self._ordered())

    def peek(self) -> Optional[Pod]:
        """The frontmost pending pod (backed off or not), or ``None``."""
        return self._sorted[0] if self._sorted else None

    def snapshot(self, now: Optional[float] = None) -> List[Pod]:
        """Scheduling-ordered list of pods eligible for scheduling.

        With *now* supplied, pods still inside a requeue backoff are
        excluded (a pod whose ``ready_at`` equals *now* exactly is
        eligible); without it the whole queue is returned (reporting).
        """
        if now is None or not self._ready_at:
            return list(self._sorted)
        ready_at = self._ready_at
        return [
            pod
            for pod in self._sorted
            if ready_at.get(pod.uid, now) <= now
        ]

    def ready_count(self, now: float) -> int:
        """Pods eligible for scheduling at *now*."""
        if not self._ready_at:
            return len(self._pods)
        return sum(
            1
            for uid in self._pods
            if self._ready_at.get(uid, now) <= now
        )

    def next_ready_at(self, now: float) -> Optional[float]:
        """Earliest backoff expiry still in the future, if any."""
        future = [t for t in self._ready_at.values() if t > now]
        return min(future) if future else None

    # -- aggregates --------------------------------------------------------

    def total_requested_epc_pages(self) -> int:
        """Sum of EPC pages requested by queued pods (Fig. 7's y-axis)."""
        return self._total_epc_pages

    def total_requested_memory_bytes(self) -> int:
        """Sum of standard memory requested by queued pods."""
        return self._total_memory_bytes
