"""SGX device plugin: advertising EPC pages as schedulable resources.

Kubernetes device plugins register one resource item per physical device;
that would allow a single SGX pod per node.  The paper's key trick
(Section V-A) is to expose **each 4 KiB EPC page as a separate resource
item**, so multiple enclave pods can share a node while the scheduler
still cannot over-commit the EPC — the pool of page-items is finite.

The plugin checks for the SGX kernel module on its node, then registers
with the local Kubelet over the gRPC-like channel, reporting the page
count under :data:`~repro.orchestrator.api.SGX_EPC_RESOURCE`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cluster.node import Node
from ..errors import RpcError
from .api import SGX_EPC_RESOURCE
from .rpc import RpcChannel


@dataclass(frozen=True)
class DeviceAdvertisement:
    """What a plugin reports to Kubelet: a resource name and item count."""

    resource_name: str
    item_count: int
    device_path: str


class SgxDevicePlugin:
    """Per-node plugin translating driver presence into resource items."""

    def __init__(self, node: Node):
        self.node = node

    def detect(self) -> Optional[DeviceAdvertisement]:
        """Probe the node for a usable SGX module.

        Returns the advertisement to register, or ``None`` on nodes
        without the kernel module (the plugin then reports nothing and
        the node stays SGX-free in the control plane's eyes).
        """
        if not self.node.sgx_capable or self.node.epc is None:
            return None
        return DeviceAdvertisement(
            resource_name=SGX_EPC_RESOURCE,
            item_count=self.node.epc.total_pages,
            device_path="/dev/isgx",
        )

    def register(self, kubelet_channel: RpcChannel) -> bool:
        """Register with the node's Kubelet; returns ``True`` if advertised."""
        advertisement = self.detect()
        if advertisement is None:
            return False
        kubelet_channel.call(
            "RegisterDevicePlugin",
            resource_name=advertisement.resource_name,
            item_count=advertisement.item_count,
            device_path=advertisement.device_path,
        )
        return True


class DevicePluginRegistry:
    """Kubelet-side registry of device-plugin resources."""

    def __init__(self):
        self._resources: Dict[str, DeviceAdvertisement] = {}

    def register(
        self, resource_name: str, item_count: int, device_path: str
    ) -> None:
        """Handle a plugin registration (the Kubelet RPC handler)."""
        if item_count < 0:
            raise RpcError(f"negative item count for {resource_name!r}")
        self._resources[resource_name] = DeviceAdvertisement(
            resource_name=resource_name,
            item_count=item_count,
            device_path=device_path,
        )

    def capacity(self, resource_name: str) -> int:
        """Advertised item count for a resource (0 when absent)."""
        advertisement = self._resources.get(resource_name)
        return advertisement.item_count if advertisement else 0

    def device_path(self, resource_name: str) -> Optional[str]:
        """Device pseudo-file to mount into pods using this resource."""
        advertisement = self._resources.get(resource_name)
        return advertisement.device_path if advertisement else None

    @property
    def resource_names(self) -> list:
        """All advertised resource names."""
        return sorted(self._resources)
