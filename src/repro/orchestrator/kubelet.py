"""Kubelet: the per-node agent.

On pod admission the Kubelet reproduces the paper's node-side pipeline
(Sections V-A, V-D):

1. create the pod's cgroup *before* any container starts — the cgroup
   path doubles as the pod identifier for the driver;
2. communicate the pod's advertised EPC page limit to the SGX driver via
   the new ioctl (the 16 lines of Go + 22 of C in the paper's Kubelet
   patch);
3. mount ``/dev/isgx`` into pods that requested EPC items and start the
   container: boot the per-container PSW, create the enclave — committing
   the workload's *actual* EPC pages, which is where under-declared
   malicious pods get caught — and EINIT it through the driver, which
   applies the limit check;
4. report per-pod measured usage to the monitoring layer (it is both a
   Heapster source and the probe's cgroup-to-pod resolver).

The Kubelet deals only in *actual* usage; declared requests matter to the
scheduler, not to the node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cluster.node import Node
from ..errors import (
    EnclaveLimitExceededError,
    EpcExhaustedError,
    NodeError,
)
from ..monitoring.heapster import PodUsage
from ..sgx.aesm import PlatformSoftware
from ..sgx.enclave import Enclave
from ..sgx.perf import SgxPerfModel
from ..units import pages_to_bytes
from .api import SGX_EPC_RESOURCE
from .device_plugin import DevicePluginRegistry
from .images import ImageRegistry, NodeImageCache
from .pod import Pod
from .rpc import RpcServer


@dataclass(slots=True)
class AdmissionResult:
    """Outcome of launching a pod on a node."""

    success: bool
    startup_seconds: float = 0.0
    failure_reason: Optional[str] = None
    #: Whether the failure is transient (requeue) rather than a policy
    #: kill (limit enforcement) or a permanent misfit.
    retryable: bool = False


@dataclass(slots=True)
class _PodRecord:
    """Node-local state of one admitted pod.

    ``pod_name`` and the ``req_*`` components denormalise immutable pod
    fields at admission: the scheduler's view builder touches every
    record every pass, and the flat ints spare it three attribute hops
    per pod (``pod.spec.resources.requests``) on that path.
    """

    pod: Pod
    cgroup_path: str
    pid: Optional[int] = None
    enclave: Optional[Enclave] = None
    psw: Optional[PlatformSoftware] = None
    pod_name: str = ""
    req_cpu: int = 0
    req_mem: int = 0
    req_epc: int = 0


class Kubelet:
    """Node agent: admission, container launch, usage reporting."""

    __slots__ = (
        "node", "perf_model", "enforce_memory_limits", "registry",
        "image_cache", "devices", "rpc_server", "_records",
        "commitment_version", "_committed", "_pod_name_by_cgroup",
    )

    def __init__(
        self,
        node: Node,
        perf_model: Optional[SgxPerfModel] = None,
        enforce_memory_limits: bool = False,
        registry: Optional[ImageRegistry] = None,
    ):
        self.node = node
        self.perf_model = perf_model or SgxPerfModel()
        self.enforce_memory_limits = enforce_memory_limits
        self.registry = registry
        self.image_cache = NodeImageCache(node_name=node.name)
        self.devices = DevicePluginRegistry()
        self.rpc_server = RpcServer(f"kubelet@{node.name}")
        self.rpc_server.register_method(
            "RegisterDevicePlugin", self.devices.register
        )
        self._records: Dict[str, _PodRecord] = {}
        #: Bumped whenever the admitted-pod set (and hence this node's
        #: committed requests) changes; the scheduler's skip-clean check
        #: compares it across passes to reuse node views.
        self.commitment_version = 0
        # Running total of admitted requests, maintained at the two
        # points records enter/leave ``_records``.  Requests are
        # integer vectors, so the increments are exact — this is the
        # same number committed_requests() used to re-sum per call.
        from ..cluster.resources import ResourceVector

        self._committed = ResourceVector.zero()
        self._pod_name_by_cgroup: Dict[str, str] = {}

    # -- control-plane queries --------------------------------------------

    @property
    def pod_count(self) -> int:
        """Pods currently admitted on this node."""
        return len(self._records)

    def admitted_pods(self) -> List[Pod]:
        """Pods currently admitted on this node, oldest first."""
        return [record.pod for record in self._records.values()]

    def admitted_records(self):
        """Live admission records, oldest first — no copy.

        The per-pass view builder iterates this instead of
        :meth:`admitted_pods` to skip one list per node per pass; the
        view must not be held across admissions or terminations.
        """
        return self._records.values()

    def committed_requests(self):
        """Sum of declared requests of admitted pods (scheduler's ledger)."""
        return self._committed

    def _insert_record(self, record: _PodRecord) -> None:
        """Register an admitted pod in the ledger and indexes."""
        pod = record.pod
        requests = pod.spec.resources.requests
        record.pod_name = pod.name
        record.req_cpu = requests.cpu_millicores
        record.req_mem = requests.memory_bytes
        record.req_epc = requests.epc_pages
        self._records[pod.uid] = record
        self.commitment_version += 1
        self._committed = self._committed + requests
        self._pod_name_by_cgroup[record.cgroup_path] = pod.name

    def _remove_record(self, uid: str) -> Optional[_PodRecord]:
        """Unregister a pod; no-op (None) if already gone."""
        record = self._records.pop(uid, None)
        if record is not None:
            self._committed = (
                self._committed - record.pod.spec.resources.requests
            )
            self._pod_name_by_cgroup.pop(record.cgroup_path, None)
        return record

    def advertised_epc_pages(self) -> int:
        """EPC page items advertised by the device plugin (0 if none)."""
        return self.devices.capacity(SGX_EPC_RESOURCE)

    def measured_epc_pages(self, pod: Pod) -> int:
        """Driver-measured EPC occupancy of one admitted pod (0 if none).

        The per-process ioctl of Section V-E — the paper's stated
        mechanism for identifying preemption and migration victims.
        Both the EPC rebalancer and the preemption planners price
        candidates by this number: an SGX2-grown enclave occupies its
        *measured* pages, not its declared request.
        """
        record = self._records.get(pod.uid)
        if (
            record is None
            or record.pid is None
            or self.node.driver is None
        ):
            return 0
        return self.node.driver.process_epc_pages(record.pid)

    # -- pod lifecycle ----------------------------------------------------

    def admit(self, pod: Pod) -> AdmissionResult:
        """Launch *pod* on this node; returns the startup outcome.

        The caller (orchestrator) has already bound the pod; admission
        failures here surface as immediate pod kills, exactly like the
        paper's "immediately killed after launch" over-allocators.
        """
        if pod.uid in self._records:
            raise NodeError(
                f"pod {pod.name} already admitted on {self.node.name}"
            )
        workload = pod.spec.workload
        if workload is None:
            raise NodeError(f"pod {pod.name} has no workload profile")

        cgroup_path = self.node.cgroups.create_pod_cgroup(pod.uid)
        pod.cgroup_path = cgroup_path
        record = _PodRecord(pod=pod, cgroup_path=cgroup_path)
        self._insert_record(record)

        # Relay the EPC limit to the driver before containers start.
        limits = pod.spec.resources.effective_limits
        if self.node.driver is not None and limits.epc_pages > 0:
            self.node.driver.ioctl(
                0xA1,  # IOCTL_SET_POD_LIMIT; numeric like real user space
                cgroup_path=cgroup_path,
                limit_pages=limits.epc_pages,
            )

        # cgroup memory limit (stock Kubernetes behaviour, optional here
        # because the paper's trace runs declare requests only).
        if (
            self.enforce_memory_limits
            and limits.memory_bytes > 0
            and workload.memory_bytes > limits.memory_bytes
        ):
            self._teardown(record)
            return AdmissionResult(
                success=False,
                failure_reason="OOMKilled: memory limit exceeded",
            )

        # Pull the image first (Fig. 2: fetched from a registry); a
        # cache hit — every placement after a node's first — is free.
        pull_seconds = 0.0
        if self.registry is not None:
            pull_seconds = self.image_cache.pull(
                self.registry, pod.spec.image
            )

        record.pid = self.node.spawn_process(
            cgroup_path, memory_bytes=workload.memory_bytes
        )

        if not workload.uses_sgx:
            startup = self.perf_model.standard_startup()
            return AdmissionResult(
                success=True,
                startup_seconds=pull_seconds + startup.total_seconds,
            )
        result = self._launch_sgx(record)
        if result.success:
            result.startup_seconds += pull_seconds
        return result

    def _launch_sgx(self, record: _PodRecord) -> AdmissionResult:
        """SGX container launch: PSW boot, ECREATE, limit-checked EINIT."""
        pod = record.pod
        workload = pod.spec.workload
        assert workload is not None and record.pid is not None
        if self.node.driver is None:
            self._teardown(record)
            return AdmissionResult(
                success=False,
                failure_reason="SGX workload on a node without /dev/isgx",
            )
        psw = PlatformSoftware(container_id=pod.uid)
        psw_seconds = psw.boot()
        record.psw = psw
        epc_bytes = pages_to_bytes(workload.epc_pages)
        dynamic = self.node.driver.sgx_version >= 2
        try:
            enclave = self.node.driver.create_enclave(
                record.pid, size_bytes=epc_bytes, dynamic=dynamic
            )
        except EpcExhaustedError as exc:
            self._teardown(record)
            return AdmissionResult(
                success=False,
                failure_reason=f"enclave creation failed: {exc}",
                retryable=True,
            )
        try:
            self.node.driver.initialize_enclave(
                record.pid, enclave, psw.aesm
            )
        except EnclaveLimitExceededError as exc:
            self._teardown(record)
            return AdmissionResult(
                success=False,
                failure_reason=f"EPC limit enforcement: {exc}",
            )
        record.enclave = enclave
        alloc_seconds = self.perf_model.allocation_seconds(epc_bytes)
        return AdmissionResult(
            success=True, startup_seconds=psw_seconds + alloc_seconds
        )

    def grow_pod_epc(self, pod: Pod, extra_pages: int) -> int:
        """Grow a running SGX 2 pod's enclave by *extra_pages* (EAUG).

        Routes through the driver so the ported per-pod limit check of
        Section VI-G applies.  Returns pages added; raises
        :class:`~repro.errors.DriverError` on SGX 1 nodes and
        :class:`~repro.errors.EnclaveLimitExceededError` past the limit.
        """
        record = self._require_record(pod)
        if self.node.driver is None or record.enclave is None:
            raise NodeError(f"pod {pod.name} has no enclave to grow")
        return self.node.driver.grow_enclave(
            record.pid, record.enclave, pages_to_bytes(extra_pages)
        )

    def shrink_pod_epc(self, pod: Pod, fewer_pages: int) -> int:
        """Shrink a running SGX 2 pod's enclave (EREMOVE); returns pages."""
        record = self._require_record(pod)
        if self.node.driver is None or record.enclave is None:
            raise NodeError(f"pod {pod.name} has no enclave to shrink")
        return self.node.driver.shrink_enclave(
            record.pid, record.enclave, pages_to_bytes(fewer_pages)
        )

    def _require_record(self, pod: Pod) -> "_PodRecord":
        record = self._records.get(pod.uid)
        if record is None:
            raise NodeError(
                f"pod {pod.name} is not admitted on {self.node.name}"
            )
        return record

    # -- live migration (the paper's future-work extension) ------------

    def begin_migration(self, pod: Pod):
        """Expose the node-local handles the migration manager needs.

        Returns ``(pid, enclave, aesm)`` for the pod's container; the
        caller checkpoints through the driver (which self-destroys the
        enclave) and must then call :meth:`finish_migration_out`.
        """
        record = self._require_record(pod)
        if record.enclave is None or record.psw is None:
            raise NodeError(f"pod {pod.name} has no enclave to migrate")
        if record.pid is None:
            raise NodeError(f"pod {pod.name} has no process")
        return record.pid, record.enclave, record.psw.aesm

    def finish_migration_out(self, pod: Pod) -> None:
        """Tear down the source-side container after a checkpoint."""
        self.terminate(pod)

    def admit_migrated(self, pod: Pod, restore) -> AdmissionResult:
        """Admit a migrated pod, restoring its enclave via *restore*.

        *restore* is a callable ``(pid, aesm) -> enclave`` supplied by
        the orchestrator, closing over the migration manager, the
        checkpoint and the key; it runs inside this node's context so
        the restored enclave lands in this node's EPC.
        """
        if pod.uid in self._records:
            raise NodeError(
                f"pod {pod.name} already admitted on {self.node.name}"
            )
        workload = pod.spec.workload
        if workload is None:
            raise NodeError(f"pod {pod.name} has no workload profile")
        cgroup_path = self.node.cgroups.create_pod_cgroup(pod.uid)
        pod.cgroup_path = cgroup_path
        record = _PodRecord(pod=pod, cgroup_path=cgroup_path)
        self._insert_record(record)
        limits = pod.spec.resources.effective_limits
        if self.node.driver is not None and limits.epc_pages > 0:
            self.node.driver.ioctl(
                0xA1,
                cgroup_path=cgroup_path,
                limit_pages=limits.epc_pages,
            )
        record.pid = self.node.spawn_process(
            cgroup_path, memory_bytes=workload.memory_bytes
        )
        psw = PlatformSoftware(container_id=pod.uid)
        psw_seconds = psw.boot()
        record.psw = psw
        try:
            record.enclave = restore(record.pid, psw.aesm)
        except EpcExhaustedError as exc:
            self._teardown(record)
            return AdmissionResult(
                success=False,
                failure_reason=f"migration restore failed: {exc}",
                retryable=True,
            )
        alloc_seconds = self.perf_model.allocation_seconds(
            pages_to_bytes(record.enclave.pages)
        )
        return AdmissionResult(
            success=True, startup_seconds=psw_seconds + alloc_seconds
        )

    def terminate(self, pod: Pod) -> None:
        """Tear a pod down (normal completion or kill). Idempotent."""
        record = self._remove_record(pod.uid)
        if record is None:
            return
        self._teardown(record)

    def _teardown(self, record: _PodRecord) -> None:
        self.commitment_version += 1
        if record.pid is not None:
            self.node.kill_process(record.pid)  # destroys enclaves too
            record.pid = None
        if record.psw is not None:
            record.psw.shutdown()
            record.psw = None
        if self.node.driver is not None:
            self.node.driver.clear_pod(record.cgroup_path)
        if self.node.cgroups.exists(record.cgroup_path):
            self.node.cgroups.remove(record.cgroup_path)
        self._remove_record(record.pod.uid)

    # -- monitoring interfaces --------------------------------------------

    def pod_memory_usage(self) -> List[PodUsage]:
        """Per-pod standard memory, for the Heapster collector."""
        usage = []
        node = self.node
        node_name = node.name
        cgroup_memory_bytes = node.cgroup_memory_bytes
        for record in self._records.values():
            if record.pid is None:
                continue
            usage.append(
                PodUsage(
                    pod_name=record.pod_name,
                    node_name=node_name,
                    value=float(
                        cgroup_memory_bytes(record.cgroup_path)
                    ),
                )
            )
        return usage

    def resolve_pod_name(self, cgroup_path: str) -> Optional[str]:
        """Map a cgroup path back to a pod name, for the SGX probe."""
        return self._pod_name_by_cgroup.get(cgroup_path)

    def epc_overcommit_ratio(self) -> float:
        """The node's current EPC over-commit ratio (1.0 when healthy)."""
        if self.node.epc is None:
            return 1.0
        return self.node.epc.overcommit_ratio()
