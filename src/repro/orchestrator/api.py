"""API objects: pod specifications, resource requirements, phases.

Follows the Kubernetes resource model the paper plugs into (Section V-A):
users declare **requests** (what the scheduler reserves) and **limits**
(what enforcement caps) per resource.  EPC is exposed as a device-plugin
resource counted in pages; we name it :data:`SGX_EPC_RESOURCE` after the
convention for vendored device resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..cluster.resources import ResourceVector
from ..errors import PodSpecError
from ..units import pages as bytes_to_pages

#: Resource name under which the device plugin advertises EPC pages.
SGX_EPC_RESOURCE = "intel.com/sgx-epc-page"

#: The default scheduler name; pods may select a specific scheduler
#: variant, which is how the paper runs comparative benchmarks (Sec. V-B).
DEFAULT_SCHEDULER = "sgx-aware-binpack"


class PodPhase(enum.Enum):
    """Lifecycle phases of a pod, Kubernetes-flavoured."""

    PENDING = "Pending"        # submitted, waiting in the queue
    BOUND = "Bound"            # assigned to a node, starting up
    RUNNING = "Running"        # processes started
    SUCCEEDED = "Succeeded"    # finished normally
    FAILED = "Failed"          # killed (limit violation, unschedulable...)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_terminal(self) -> bool:
        """Whether the pod will never transition again."""
        return self in (PodPhase.SUCCEEDED, PodPhase.FAILED)


@dataclass(frozen=True, slots=True)
class ResourceRequirements:
    """Declared requests and limits, as in a pod manifest.

    ``requests`` drive scheduling; ``limits`` drive enforcement.  When a
    limit is omitted (zero vector), it defaults to the request, matching
    the common Kubernetes idiom.
    """

    requests: ResourceVector = field(default_factory=ResourceVector.zero)
    limits: Optional[ResourceVector] = None

    def __post_init__(self):
        if not self.requests.is_nonnegative:
            raise PodSpecError(f"negative requests: {self.requests}")
        if self.limits is not None and not self.limits.is_nonnegative:
            raise PodSpecError(f"negative limits: {self.limits}")

    @property
    def effective_limits(self) -> ResourceVector:
        """Limits, defaulted to requests when unset."""
        return self.limits if self.limits is not None else self.requests

    @property
    def requires_sgx(self) -> bool:
        """Whether any EPC is requested (pod must land on an SGX node)."""
        return self.requests.epc_pages > 0


@dataclass(frozen=True, slots=True)
class WorkloadProfile:
    """Ground truth of what the container actually does when it runs.

    The trace supplies *assigned memory* (what the job declares) and
    *maximal memory usage* (what it really consumes); this profile carries
    the latter plus the job's useful runtime.  The gap between declaration
    and usage is precisely what the paper's measured-usage scheduler and
    limit enforcement are about.
    """

    duration_seconds: float
    memory_bytes: int = 0
    epc_pages: int = 0

    def __post_init__(self):
        if self.duration_seconds < 0:
            raise PodSpecError(
                f"negative duration: {self.duration_seconds}"
            )
        if self.memory_bytes < 0 or self.epc_pages < 0:
            raise PodSpecError("negative actual usage")

    @property
    def uses_sgx(self) -> bool:
        """Whether the workload allocates enclave memory at all."""
        return self.epc_pages > 0


@dataclass(frozen=True, slots=True)
class PodSpec:
    """A pod manifest: image, resources, scheduler selection, workload.

    ``priority`` is the resolved integer of a
    :class:`repro.policy.classes.PriorityClass`: the pending queue
    orders tiers by it (higher first, FCFS within a tier) and the
    preemption planners only evict strictly lower tiers.  The default
    of 0 (``best-effort``) reproduces the paper's priority-free
    orchestrator exactly.
    """

    name: str
    image: str = "sebvaucher/sgx-base"
    resources: ResourceRequirements = field(
        default_factory=ResourceRequirements
    )
    scheduler_name: str = DEFAULT_SCHEDULER
    labels: Dict[str, str] = field(default_factory=dict)
    workload: Optional[WorkloadProfile] = None
    priority: int = 0

    def __post_init__(self):
        if not self.name:
            raise PodSpecError("pod name must be non-empty")
        if not isinstance(self.priority, int) or isinstance(
            self.priority, bool
        ):
            raise PodSpecError(
                f"pod priority must be an int, got {self.priority!r}"
            )

    @property
    def requires_sgx(self) -> bool:
        """Whether this pod must be placed on an SGX-capable node."""
        return self.resources.requires_sgx

    def with_scheduler(self, scheduler_name: str) -> "PodSpec":
        """Copy of this spec targeting a different scheduler."""
        return replace(self, scheduler_name=scheduler_name)


def make_pod_spec(
    name: str,
    duration_seconds: float,
    declared_memory_bytes: int = 0,
    declared_epc_bytes: int = 0,
    actual_memory_bytes: Optional[int] = None,
    actual_epc_bytes: Optional[int] = None,
    scheduler_name: str = DEFAULT_SCHEDULER,
    image: str = "sebvaucher/sgx-base",
    priority: int = 0,
) -> PodSpec:
    """Convenience constructor used by the trace materialiser.

    Declared values populate requests *and* limits (the paper's users
    specify one number per resource); actual values populate the workload
    profile and default to the declared ones.
    """
    requests = ResourceVector(
        cpu_millicores=0,
        memory_bytes=declared_memory_bytes,
        epc_pages=bytes_to_pages(declared_epc_bytes),
    )
    if actual_memory_bytes is None:
        actual_memory_bytes = declared_memory_bytes
    if actual_epc_bytes is None:
        actual_epc_bytes = declared_epc_bytes
    workload = WorkloadProfile(
        duration_seconds=duration_seconds,
        memory_bytes=actual_memory_bytes,
        epc_pages=bytes_to_pages(actual_epc_bytes),
    )
    return PodSpec(
        name=name,
        image=image,
        resources=ResourceRequirements(requests=requests),
        scheduler_name=scheduler_name,
        workload=workload,
        priority=priority,
    )
