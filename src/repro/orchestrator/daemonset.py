"""DaemonSet controller: one payload per (matching) node.

The paper deploys its SGX metrics probe as a DaemonSet restricted to
SGX-enabled nodes, distinguishing them "by checking for the EPC size
advertised to Kubernetes by the device plugin" (Section V-C).  This
controller reproduces that reconciliation loop: given a node selector and
a payload factory, it keeps exactly one payload per matching node,
creating payloads for new nodes and reaping them for departed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, TypeVar

from .kubelet import Kubelet

Payload = TypeVar("Payload")

#: Selects nodes by their Kubelet (which knows the advertised resources).
NodeSelector = Callable[[Kubelet], bool]
PayloadFactory = Callable[[Kubelet], Payload]


def sgx_node_selector(kubelet: Kubelet) -> bool:
    """The paper's selector: nodes advertising a non-zero EPC size."""
    return kubelet.advertised_epc_pages() > 0


def all_nodes_selector(kubelet: Kubelet) -> bool:
    """Match every node (Heapster-style collection)."""
    return True


@dataclass
class DaemonSet:
    """Desired state: one payload per node matching *selector*."""

    name: str
    selector: NodeSelector
    factory: PayloadFactory
    payloads: Dict[str, object] = field(default_factory=dict)

    def payload_for(self, node_name: str) -> Optional[object]:
        """The live payload on *node_name*, if any."""
        return self.payloads.get(node_name)


class DaemonSetController:
    """Reconciles DaemonSets against the current Kubelet population."""

    def __init__(self):
        self._daemonsets: Dict[str, DaemonSet] = {}

    def create(
        self, name: str, selector: NodeSelector, factory: PayloadFactory
    ) -> DaemonSet:
        """Register a DaemonSet; payloads appear on the next reconcile."""
        if name in self._daemonsets:
            raise ValueError(f"daemonset {name!r} already exists")
        daemonset = DaemonSet(name=name, selector=selector, factory=factory)
        self._daemonsets[name] = daemonset
        return daemonset

    def get(self, name: str) -> DaemonSet:
        """Look a DaemonSet up by name."""
        return self._daemonsets[name]

    def reconcile(self, kubelets: Iterable[Kubelet]) -> int:
        """Converge payloads to the node population; returns changes made."""
        kubelet_list = list(kubelets)
        changes = 0
        for daemonset in self._daemonsets.values():
            wanted = {
                k.node.name: k for k in kubelet_list if daemonset.selector(k)
            }
            # Create payloads for newly matching nodes.
            for node_name, kubelet in wanted.items():
                if node_name not in daemonset.payloads:
                    daemonset.payloads[node_name] = daemonset.factory(kubelet)
                    changes += 1
            # Reap payloads whose node vanished or stopped matching.
            for node_name in list(daemonset.payloads):
                if node_name not in wanted:
                    del daemonset.payloads[node_name]
                    changes += 1
        return changes

    def payloads(self, name: str) -> List[object]:
        """All live payloads of DaemonSet *name*."""
        return list(self._daemonsets[name].payloads.values())
