"""``CheckReport``: the result object behind both output formats.

One report = one checker run.  ``to_table()`` renders the CLI's
human-readable view through the same fixed-width formatter the bench
harness uses; ``to_json()`` emits the machine document (schema
``repro.check/v1``) the CI job uploads as an artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from ..api.format import format_table
from .findings import Finding

#: Schema tag stamped into the JSON report (and the baseline file).
CHECK_SCHEMA = "repro.check/v1"


@dataclass(slots=True)
class CheckReport:
    """Everything one ``repro check`` run determined.

    ``findings`` are the gate: new, unsuppressed, non-baselined
    violations (including ``NOQA001`` unused suppressions and
    ``BASE001`` stale baseline entries — bookkeeping rot is a finding
    too).  The counters exist so a clean run is distinguishable from a
    run that scanned nothing.
    """

    root: str
    findings: List[Finding] = field(default_factory=list)
    modules_checked: int = 0
    rules_run: List[str] = field(default_factory=list)
    suppressed_count: int = 0
    baselined_count: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def exit_code(self) -> int:
        """CLI convention: 0 clean, 1 findings (2 is usage errors,
        raised before a report exists)."""
        return 0 if self.clean else 1

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self, indent: int = 2) -> str:
        payload = {
            "schema": CHECK_SCHEMA,
            "root": self.root,
            "modules_checked": self.modules_checked,
            "rules_run": list(self.rules_run),
            "suppressed": self.suppressed_count,
            "baselined": self.baselined_count,
            "count": len(self.findings),
            "counts_by_rule": self.counts_by_rule(),
            "findings": [
                finding.to_dict()
                for finding in sorted(
                    self.findings, key=Finding.sort_key
                )
            ],
        }
        return json.dumps(payload, indent=indent)

    def to_table(self) -> str:
        ordered = sorted(self.findings, key=Finding.sort_key)
        summary = (
            f"{len(ordered)} finding(s) in {self.modules_checked} "
            f"module(s) [{len(self.rules_run)} rule(s); "
            f"{self.suppressed_count} suppressed, "
            f"{self.baselined_count} baselined]"
        )
        if not ordered:
            return f"OK: 0 findings — {summary}"
        table = format_table(
            ("location", "rule", "message", "hint"),
            [
                (f.location(), f.rule, f.message, f.hint)
                for f in ordered
            ],
        )
        return f"{table}\n\n{summary}"
