"""The check runner: parse once, run every rule, filter, report.

Pipeline: load the tree, run each registered check, drop findings the
code suppresses with ``repro: noqa[RULE]`` comments, grandfather what the
baseline covers, then add the two bookkeeping rules — ``NOQA001`` for
suppressions that suppressed nothing and ``BASE001`` for baseline
entries that matched nothing — so neither escape hatch accumulates
silently.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import SimulationError
from .baseline import BaselineKey, apply_baseline
from .config import DEFAULT_CONFIG, CheckConfig
from .findings import Finding
from .registry import CHECKS, check_names
from .report import CheckReport
from .source import Project, load_project


def _selected_checks(rules: Optional[Sequence[str]]) -> List[str]:
    if rules is None:
        return list(check_names())
    known = set(check_names())
    unknown = sorted(set(rules) - known)
    if unknown:
        raise SimulationError(
            f"unknown rule(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )
    return sorted(set(rules))


def analyze_project(
    project: Project,
    config: CheckConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Raw findings from every selected rule — before suppression and
    baseline filtering (those are :func:`run_checks` policy)."""
    findings: List[Finding] = []
    for name in _selected_checks(rules):
        check = CHECKS.get(name)()
        findings.extend(check.run(project, config))
    findings.sort(key=Finding.sort_key)
    return findings


def _filter_suppressed(
    project: Project, findings: Iterable[Finding]
) -> Tuple[List[Finding], int, Set[Tuple[str, int, str]]]:
    """(kept, suppressed_count, used (path, line, rule) suppressions)."""
    kept: List[Finding] = []
    used: Set[Tuple[str, int, str]] = set()
    suppressed = 0
    for finding in findings:
        module = project.get(finding.path)
        if module is not None and module.suppressed(
            finding.line, finding.rule
        ):
            suppressed += 1
            used.add((finding.path, finding.line, finding.rule))
        else:
            kept.append(finding)
    return kept, suppressed, used


def _unused_suppressions(
    project: Project, used: Set[Tuple[str, int, str]]
) -> List[Finding]:
    """NOQA001 findings for suppressions that suppressed nothing."""
    return [
        Finding(
            rule="NOQA001",
            path=module.relpath,
            line=line,
            message=f"unused suppression: noqa[{rule}] on this line "
            "suppresses nothing",
            hint="delete the stale # repro: noqa comment",
        )
        for module, line, rule in project.all_suppressions()
        if (module.relpath, line, rule) not in used
    ]


def run_checks(
    root: Path,
    config: CheckConfig = DEFAULT_CONFIG,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional["Counter[BaselineKey]"] = None,
) -> CheckReport:
    """Run the full pipeline over the tree at *root*.

    The report's ``findings`` are what the gate sees: new violations,
    plus ``NOQA001``/``BASE001`` bookkeeping rot.  Baseline matching
    applies only to rule findings — the bookkeeping rules exist to
    shrink the escape hatches, so they cannot be baselined away.
    """
    project = load_project(Path(root))
    selected = _selected_checks(rules)
    raw = analyze_project(project, config, selected)
    kept, suppressed_count, used = _filter_suppressed(project, raw)
    new, baselined_count, stale = apply_baseline(
        kept, baseline if baseline is not None else Counter()
    )
    findings = new + stale + _unused_suppressions(project, used)
    findings.sort(key=Finding.sort_key)
    return CheckReport(
        root=str(root),
        findings=findings,
        modules_checked=len(project),
        rules_run=selected,
        suppressed_count=suppressed_count,
        baselined_count=baselined_count,
    )
