"""Scoping configuration: which rules look where.

Every rule is sound only in the packages where its invariant holds —
wall-clock reads are fine in the profiling harness, unsorted set
iteration is fine in a figure formatter — so the config carries the
scope, and the checks ask it instead of hard-coding paths.  The
defaults describe this repository; tests build narrower configs over
fixture trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple


def _frozen(*items: str) -> FrozenSet[str]:
    return frozenset(items)


@dataclass(frozen=True)
class CheckConfig:
    """Scope and policy knobs consumed by the registered checks."""

    #: DET002: packages where the simulated clock is the only clock.
    #: Wall-clock reads (``time.time``, ``datetime.now``, ...) anywhere
    #: here would desynchronise replays from the oracle.
    simulated_time_packages: FrozenSet[str] = _frozen(
        "simulation", "orchestrator", "scheduler", "sgx", "monitoring",
        "cells",
    )
    #: DET002: modules exempt by design (the profiling harness measures
    #: real wall time on purpose).
    wall_clock_exempt: FrozenSet[str] = _frozen("profiling.py")

    #: DET003/DET004: packages whose control flow decides placements,
    #: evictions or event order — iteration order is behaviour there.
    decision_path_packages: FrozenSet[str] = _frozen(
        "simulation", "orchestrator", "scheduler", "sgx", "policy",
        "monitoring", "cluster", "cells",
    )

    #: LAYOUT001/LAYOUT002: the PR 6 lean-layout modules.  Every class
    #: here must stay ``__slots__``-declared (directly or via
    #: ``@dataclass(slots=True)``); a stray attribute or a non-slotted
    #: base silently resurrects ``__dict__`` and the per-pod memory it
    #: was rebuilt to shed.
    hot_layout_modules: FrozenSet[str] = _frozen(
        "simulation/engine.py",
        "simulation/runner.py",
        "orchestrator/kubelet.py",
        "orchestrator/queue.py",
        "orchestrator/pod.py",
        "scheduler/base.py",
        "scheduler/binpack.py",
        "scheduler/index.py",
        "monitoring/tsdb.py",
        "monitoring/probe.py",
        "monitoring/heapster.py",
        "cells/engine.py",
        "cells/queue.py",
        "cells/dispatch.py",
        "cells/runner.py",
        "obs/ledger.py",
        "obs/spans.py",
        "obs/metrics.py",
        "obs/observer.py",
    )
    #: LAYOUT: base classes known to be slot-free-safe (empty slots).
    slotted_external_bases: FrozenSet[str] = _frozen(
        "object", "abc.ABC", "ABC", "Protocol", "typing.Protocol",
        "Generic", "typing.Generic",
    )

    #: API001: the CLI module, the function whose ``add_argument``
    #: calls define the shared run/sweep scenario flags, and the module
    #: holding the ``Scenario`` dataclass those flags must map onto.
    cli_module: str = "cli.py"
    cli_flag_functions: FrozenSet[str] = _frozen("_scenario_flags")
    scenario_module: str = "api/scenario.py"
    scenario_class: str = "Scenario"
    #: Flag dest -> scenario field, where the names differ.
    cli_field_aliases: Dict[str, str] = field(
        default_factory=lambda: {
            "jobs": "trace_jobs",
            "epc_mib": "epc_total_bytes",
            "indexed": "indexed_scheduling",
            "no_state_cache": "use_state_cache",
            "priority_threshold": "preemption_priority_threshold",
            "cluster_workers": "standard_workers",
        }
    )
    #: Flags that deliberately have no scenario field (output shape,
    #: pool sizing); extending the CLI with a new non-scenario flag
    #: means reviewing it onto this list.
    cli_only_flags: FrozenSet[str] = _frozen("json",)

    #: REG001: registration decorators and the keywords each factory
    #: must accept (directly or via ``**options``).  Positional minima
    #: ride with the keyword tuple: workload factories take
    #: ``(cluster, trace, ...)``.
    registry_decorators: Dict[str, Tuple[Tuple[str, ...], int]] = field(
        default_factory=lambda: {
            "register_scheduler": (
                ("use_measured", "strict_fcfs",
                 "preserve_sgx_nodes", "indexed"),
                0,
            ),
            "register_workload": (
                ("sgx_fraction", "seed", "scheduler_name"),
                2,
            ),
            "register_preemption_policy": ((), 0),
        }
    )

    #: TRACE001: the trace-adapter registration decorator and the
    #: keywords :func:`repro.trace.adapters.resolve_trace` calls every
    #: factory with (``factory(spec=..., seed=...)``).
    trace_decorator: str = "register_trace"
    trace_factory_keywords: Tuple[str, ...] = ("spec", "seed")

    #: CELL001: the cell-policy registration decorator and the keywords
    #: :func:`repro.cells.policies.partition_nodes` calls every factory
    #: with (``factory(nodes=..., cells=..., seed=...)``).
    cell_decorator: str = "register_cell_policy"
    cell_factory_keywords: Tuple[str, ...] = ("nodes", "cells", "seed")

    #: OBS001: the module holding the frozen ``repro.ledger/v1`` schema
    #: table and the table's name.  Every ``<ledger>.emit(now, kind,
    #: **payload)`` call anywhere in the tree must use a string-literal
    #: kind declared there with only declared payload fields.
    ledger_module: str = "obs/ledger.py"
    ledger_schema_table: str = "LEDGER_EVENT_KINDS"
    #: OBS001: bare names that denote live engine objects at emit
    #: sites.  Passing one as a payload value would capture a mutable
    #: ``Pod``/``NodeView``/plan reference in the record; emit sites
    #: must pass primitives (``pod.name``, ``len(victims)``, ...).
    ledger_live_object_names: FrozenSet[str] = _frozen(
        "pod", "pods", "view", "views", "node", "victim", "victims",
        "replacement", "preemptor", "job", "plan", "candidate",
        "candidates", "kubelet", "outcome", "result", "spec", "self",
    )

    def wall_clock_scoped(self, relpath: str, package: str) -> bool:
        """Whether DET002 applies to the module at *relpath*."""
        if relpath in self.wall_clock_exempt:
            return False
        return package in self.simulated_time_packages

    def decision_path(self, package: str) -> bool:
        """Whether DET003/DET004 apply to *package*."""
        return package in self.decision_path_packages

    def hot_layout(self, relpath: str) -> bool:
        """Whether LAYOUT001/LAYOUT002 apply to *relpath*."""
        return relpath in self.hot_layout_modules


#: The configuration describing this repository's own source tree.
DEFAULT_CONFIG = CheckConfig()
