"""Source model: parsed modules, the project tree, noqa suppressions.

Checks never touch the filesystem; they see :class:`ModuleSource`
objects (path + text + AST + per-line suppressions) grouped into a
:class:`Project`.  Parsing happens once per file regardless of how
many rules run.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..errors import SimulationError

#: A ``repro: noqa[DET001]`` (or ``noqa[DET001,LAYOUT002]``) comment
#: suppresses the listed rules on its physical line.
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\[([A-Za-z0-9_,\s]+)\]"
)


def parse_suppressions(text: str) -> Dict[int, Set[str]]:
    """Per-line suppressed rule codes (1-based line numbers)."""
    suppressions: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if "noqa" not in line:
            continue
        match = _NOQA_PATTERN.search(line)
        if match is None:
            continue
        rules = {
            rule.strip()
            for rule in match.group(1).split(",")
            if rule.strip()
        }
        if rules:
            suppressions[lineno] = rules
    return suppressions


class ModuleSource:
    """One parsed source file.

    ``relpath`` uses forward slashes relative to the package root, so
    findings and baselines are portable across platforms and installs.
    """

    __slots__ = ("relpath", "text", "tree", "suppressions")

    def __init__(self, relpath: str, text: str):
        self.relpath = relpath
        self.text = text
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:  # pragma: no cover - broken tree
            raise SimulationError(
                f"cannot parse {relpath}: {exc}"
            ) from exc
        self.suppressions = parse_suppressions(text)

    @property
    def package(self) -> str:
        """First path component (``scheduler`` for
        ``scheduler/binpack.py``); ``""`` for top-level modules."""
        head, _, tail = self.relpath.partition("/")
        return head if tail else ""

    def suppressed(self, line: int, rule: str) -> bool:
        """Whether *rule* is noqa'd on *line*."""
        rules = self.suppressions.get(line)
        return rules is not None and rule in rules


class Project:
    """All modules of one analysed tree, in sorted path order."""

    __slots__ = ("root", "modules", "_by_path")

    def __init__(self, root: Path, modules: List[ModuleSource]):
        self.root = root
        self.modules = sorted(modules, key=lambda m: m.relpath)
        self._by_path: Dict[str, ModuleSource] = {
            module.relpath: module for module in self.modules
        }

    def get(self, relpath: str) -> Optional[ModuleSource]:
        """The module at *relpath*, or ``None``."""
        return self._by_path.get(relpath)

    def __iter__(self) -> Iterator[ModuleSource]:
        return iter(self.modules)

    def __len__(self) -> int:
        return len(self.modules)

    def all_suppressions(self) -> Iterator[Tuple[ModuleSource, int, str]]:
        """Every ``(module, line, rule)`` suppression in the tree."""
        for module in self.modules:
            for line in sorted(module.suppressions):
                for rule in sorted(module.suppressions[line]):
                    yield module, line, rule


def load_project(root: Path) -> Project:
    """Parse every ``*.py`` under *root* (recursively) into a Project."""
    root = Path(root)
    if root.is_file():
        return Project(
            root.parent,
            [ModuleSource(root.name, root.read_text())],
        )
    if not root.is_dir():
        raise SimulationError(f"no such source tree: {root}")
    modules = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        relpath = path.relative_to(root).as_posix()
        modules.append(ModuleSource(relpath, path.read_text()))
    return Project(root, modules)
