"""Reviewed-findings baseline: load, write, diff.

A baseline grandfathers known findings so ``repro check`` can gate on
*new* violations while an incremental cleanup is underway.  Entries
match on ``(path, rule, message)`` — line numbers churn with every
edit above a finding — and every entry must still match something: a
fixed finding whose baseline entry lingers is reported as ``BASE001``
so the file only ever shrinks.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from ..errors import SimulationError
from .findings import Finding

#: Schema tag of the baseline document (shared with the report).
BASELINE_SCHEMA = "repro.check/v1"

BaselineKey = Tuple[str, str, str]


def load_baseline(path: Path) -> "Counter[BaselineKey]":
    """The baseline at *path* as a multiset of finding keys.

    A multiset, not a set: two identical findings in one file (same
    rule, same message, different lines) need two baseline entries,
    and fixing one of them must surface the other.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except FileNotFoundError:
        raise SimulationError(f"no baseline file at {path}") from None
    except json.JSONDecodeError as exc:
        raise SimulationError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(document, dict) or "findings" not in document:
        raise SimulationError(
            f"baseline {path} lacks a 'findings' list"
        )
    keys: "Counter[BaselineKey]" = Counter()
    for entry in document["findings"]:
        try:
            keys[(entry["path"], entry["rule"], entry["message"])] += 1
        except (TypeError, KeyError) as exc:
            raise SimulationError(
                f"baseline {path} entry missing path/rule/message: "
                f"{entry!r}"
            ) from exc
    return keys


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write *findings* as the new reviewed baseline at *path*."""
    ordered = sorted(findings, key=Finding.sort_key)
    document = {
        "schema": BASELINE_SCHEMA,
        "count": len(ordered),
        "findings": [
            {
                "path": finding.path,
                "rule": finding.rule,
                "message": finding.message,
            }
            for finding in ordered
        ],
    }
    Path(path).write_text(json.dumps(document, indent=2) + "\n")


def apply_baseline(
    findings: Iterable[Finding],
    baseline: "Counter[BaselineKey]",
) -> Tuple[List[Finding], int, List[Finding]]:
    """Split findings into (new, baselined_count, stale_entries).

    ``stale_entries`` are BASE001 findings for baseline entries that no
    longer match anything — the violation was fixed, the entry must go.
    """
    remaining = Counter(baseline)
    new: List[Finding] = []
    baselined = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined += 1
        else:
            new.append(finding)
    stale = [
        Finding(
            rule="BASE001",
            path=path,
            line=0,
            message=(
                f"stale baseline entry for {rule}: {message!r} no "
                "longer matches any finding"
            ),
            hint="remove the fixed entry from the baseline file",
        )
        for (path, rule, message), count in sorted(remaining.items())
        for _ in range(count)
    ]
    return new, baselined, stale
