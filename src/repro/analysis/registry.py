"""The check registry: rules plug in exactly like schedulers do.

A separate module (rather than a line in :mod:`repro.registry`) only
so the analysis package stays self-contained; the registry class — and
its fail-fast duplicate/unknown-name semantics — is the PR 4 one.
"""

from __future__ import annotations

from typing import Tuple

from ..registry import Registry

#: Static-analysis rules addressable by ``repro check``.  Factories
#: are called with no arguments and must return a
#: :class:`repro.analysis.base.Check`.
CHECKS = Registry("check")


def check_names() -> Tuple[str, ...]:
    """Sorted rule codes of all registered checks."""
    return CHECKS.names()
