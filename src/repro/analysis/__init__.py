"""Static analysis: determinism & invariant checks over the source tree.

The reproduction's load-bearing guarantee is bit-for-bit determinism:
every optimisation since PR 1 is accepted only because replays are
byte-identical to the full-scan oracle.  The hypothesis equivalence
suites enforce that *at runtime*; this package enforces the hazards
they catch — unseeded RNG, wall-clock reads, iteration over unordered
sets, identity-based tie-breakers, ``__dict__`` resurrection on the
PR 6 slotted hot classes, registry drift — *at lint time*, before a
flaky equivalence failure ships.

The framework mirrors the PR 4 registries: a check plugs in with
``@register_check`` and is immediately part of ``repro check``::

    from repro.analysis import Check, Finding, register_check

    @register_check("DET999")
    class MyCheck(Check):
        rule = "DET999"
        description = "..."
        hint = "..."

        def check_module(self, module, config):
            yield from ()

Run the suite with :func:`run_checks` (the ``repro check`` CLI
subcommand is a thin wrapper), scope rules per package via
:class:`CheckConfig`, suppress individual lines with
``repro: noqa[RULE]`` comments and grandfather reviewed findings in a JSON
baseline (schema ``repro.check/v1``).
"""

from .baseline import load_baseline, write_baseline
from .base import Check, ModuleCheck, ProjectCheck, register_check
from .config import CheckConfig, DEFAULT_CONFIG
from .findings import Finding
from .registry import CHECKS, check_names
from .report import CHECK_SCHEMA, CheckReport
from .runner import analyze_project, run_checks
from .source import ModuleSource, Project, load_project

# Importing the rule modules registers every built-in check.
from . import checks as _builtin_checks  # noqa: F401  isort: skip

__all__ = [
    "CHECKS",
    "CHECK_SCHEMA",
    "Check",
    "CheckConfig",
    "CheckReport",
    "DEFAULT_CONFIG",
    "Finding",
    "ModuleCheck",
    "ModuleSource",
    "Project",
    "ProjectCheck",
    "analyze_project",
    "check_names",
    "load_baseline",
    "load_project",
    "register_check",
    "run_checks",
    "write_baseline",
]
