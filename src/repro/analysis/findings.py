"""``Finding``: one rule violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True, slots=True)
class Finding:
    """One violation: rule + location + message + how to fix it.

    ``path`` is relative to the analysed package root (e.g.
    ``scheduler/binpack.py``), so findings — and the baseline entries
    made from them — are stable across checkouts and installs.
    """

    rule: str
    path: str
    line: int
    message: str
    hint: str = ""

    def sort_key(self) -> Tuple[str, int, str]:
        """Stable report order: by file, then line, then rule."""
        return (self.path, self.line, self.rule)

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity for baseline matching.

        Line numbers churn with every edit above a finding, so the
        baseline matches on ``(path, rule, message)`` instead — a
        grandfathered finding stays grandfathered until the offending
        code itself changes.
        """
        return (self.path, self.rule, self.message)

    def location(self) -> str:
        """``path:line`` as editors and CI annotations expect."""
        return f"{self.path}:{self.line}"

    def to_dict(self) -> Dict[str, object]:
        """The JSON document entry (schema ``repro.check/v1``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }
