"""Check base classes and the registration decorator."""

from __future__ import annotations

import abc
from typing import Callable, Iterable, Iterator

from .config import CheckConfig
from .findings import Finding
from .registry import CHECKS
from .source import ModuleSource, Project


class Check(abc.ABC):
    """One rule: scans a project, yields findings.

    Subclasses set the class attributes and implement :meth:`run`.
    ``hint`` is the one-line fix guidance attached to every finding
    the convenience :meth:`finding` builder produces.
    """

    rule: str = "ABSTRACT"
    description: str = ""
    hint: str = ""

    @abc.abstractmethod
    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        """Yield every violation of this rule in *project*."""

    def finding(
        self,
        module: ModuleSource,
        line: int,
        message: str,
        hint: str = "",
    ) -> Finding:
        """A :class:`Finding` for this rule at ``module:line``."""
        return Finding(
            rule=self.rule,
            path=module.relpath,
            line=line,
            message=message,
            hint=hint or self.hint,
        )


class ModuleCheck(Check):
    """A check that inspects each module independently."""

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        for module in project:
            yield from self.check_module(module, config)

    @abc.abstractmethod
    def check_module(
        self, module: ModuleSource, config: CheckConfig
    ) -> Iterable[Finding]:
        """Yield this rule's violations inside *module*."""


class ProjectCheck(Check):
    """A check that needs the whole project at once (cross-module
    class resolution, duplicate detection).  Purely a marker base —
    the contract is :meth:`Check.run` unchanged."""


def register_check(rule: str) -> Callable[[type], type]:
    """Class decorator adding a rule to :data:`CHECKS` by its code."""
    return CHECKS.register(rule)
