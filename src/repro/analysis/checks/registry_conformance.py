"""Registry rule REG001: factory conformance and duplicate names.

The PR 4 registries (`SCHEDULERS`, `WORKLOADS`, `PREEMPTION_POLICIES`)
fail fast on duplicate registration — but only when both modules are
imported in the same process, and a factory whose signature silently
drops ``seed=`` or ``sgx_fraction=`` fails much later, mid-sweep.
This rule checks both at lint time, across modules that never import
each other.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..base import ProjectCheck, register_check
from ..config import CheckConfig
from ..findings import Finding
from ..source import ModuleSource, Project


def _registration(
    node: ast.AST, kinds: Dict[str, Tuple[Tuple[str, ...], int]]
) -> Optional[Tuple[str, Optional[str]]]:
    """``(decorator_kind, registered_name)`` if *node* is a decorated
    factory; the name is ``None`` when not a string literal."""
    if not isinstance(node, (ast.FunctionDef, ast.ClassDef)):
        return None
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        func = decorator.func
        kind = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if kind not in kinds:
            continue
        name: Optional[str] = None
        if decorator.args and isinstance(
            decorator.args[0], ast.Constant
        ) and isinstance(decorator.args[0].value, str):
            name = decorator.args[0].value
        return kind, name
    return None


class _Signature:
    """The keyword/positional surface of a factory callable."""

    __slots__ = ("keywords", "positional", "has_kwargs", "has_varargs")

    def __init__(self, args: ast.arguments, drop_self: bool):
        plain = list(args.posonlyargs) + list(args.args)
        if drop_self and plain:
            plain = plain[1:]
        self.positional = len(plain)
        self.keywords = {a.arg for a in plain} | {
            a.arg for a in args.kwonlyargs
        }
        self.has_kwargs = args.kwarg is not None
        self.has_varargs = args.vararg is not None

    def accepts(self, keyword: str) -> bool:
        return self.has_kwargs or keyword in self.keywords


def _class_index(project: Project) -> Dict[str, ast.ClassDef]:
    """Bare class name -> definition (first in path order wins)."""
    index: Dict[str, ast.ClassDef] = {}
    for module in project:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                index.setdefault(node.name, node)
    return index


def _resolve_init(
    node: ast.ClassDef,
    index: Dict[str, ast.ClassDef],
    depth: int = 0,
) -> Optional[ast.FunctionDef]:
    """The ``__init__`` a class-based factory is constructed through,
    following project-local bases; ``None`` when it bottoms out in
    ``object``/external code (meaning: no explicit signature to
    check)."""
    if depth > 10:  # defensive: base cycles in broken trees
        return None
    for statement in node.body:
        if (
            isinstance(statement, ast.FunctionDef)
            and statement.name == "__init__"
        ):
            return statement
    for base in node.bases:
        base_node = base
        if isinstance(base_node, ast.Subscript):
            base_node = base_node.value
        name = (
            base_node.id
            if isinstance(base_node, ast.Name)
            else base_node.attr
            if isinstance(base_node, ast.Attribute)
            else ""
        )
        parent = index.get(name)
        if parent is not None:
            init = _resolve_init(parent, index, depth + 1)
            if init is not None:
                return init
    return None


@register_check("REG001")
class RegistryConformanceCheck(ProjectCheck):
    """Registered factories: unique names, conformant signatures."""

    rule = "REG001"
    description = (
        "registry drift: duplicate registered name, or a factory "
        "whose signature cannot accept the uniform options"
    )
    hint = (
        "registered factories must accept the registry's keyword set "
        "(directly or via **options) and use a unique name"
    )

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        kinds = config.registry_decorators
        index = _class_index(project)
        seen: Dict[Tuple[str, str], Tuple[ModuleSource, int]] = {}
        for module in project:
            for node in ast.walk(module.tree):
                registration = _registration(node, kinds)
                if registration is None:
                    continue
                kind, name = registration
                assert isinstance(
                    node, (ast.FunctionDef, ast.ClassDef)
                )
                if name is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{kind}(...) name is not a string literal; "
                        "duplicate detection cannot see it",
                    )
                else:
                    key = (kind, name)
                    if key in seen:
                        first_module, first_line = seen[key]
                        yield self.finding(
                            module,
                            node.lineno,
                            f"duplicate {kind} name {name!r} (first "
                            "registered at "
                            f"{first_module.relpath}:{first_line})",
                        )
                    else:
                        seen[key] = (module, node.lineno)
                yield from self._check_signature(
                    module, node, kind, kinds[kind], index
                )

    def _check_signature(
        self,
        module: ModuleSource,
        node: "ast.FunctionDef | ast.ClassDef",
        kind: str,
        contract: Tuple[Tuple[str, ...], int],
        index: Dict[str, ast.ClassDef],
    ) -> Iterator[Finding]:
        required_keywords, min_positional = contract
        if isinstance(node, ast.FunctionDef):
            signature = _Signature(node.args, drop_self=False)
        else:
            init = _resolve_init(node, index)
            if init is None:
                return  # default/external __init__: nothing to check
            signature = _Signature(init.args, drop_self=True)
        missing = sorted(
            keyword
            for keyword in required_keywords
            if not signature.accepts(keyword)
        )
        if missing:
            yield self.finding(
                module,
                node.lineno,
                f"{kind} factory {node.name} does not accept "
                f"keyword(s) {', '.join(missing)}",
            )
        if (
            signature.positional < min_positional
            and not signature.has_varargs
        ):
            yield self.finding(
                module,
                node.lineno,
                f"{kind} factory {node.name} takes "
                f"{signature.positional} positional argument(s); the "
                f"registry calls it with {min_positional}",
            )
