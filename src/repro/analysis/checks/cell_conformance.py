"""Cell rule CELL001: partition-policy conformance, duplicate names.

Cell policies register with ``@register_cell_policy("name")`` and are
always called ``factory(nodes=..., cells=..., seed=...)`` by
:func:`repro.cells.policies.partition_nodes`.  As with trace adapters,
the registry catches a duplicate name only when both modules land in
one process, and a factory missing the required keywords fails only
when a sharded replay first partitions a cluster with it — so both are
checked at lint time, mirroring REG001/TRACE001 (whose call contracts
differ, hence the separate rule).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from ..base import ProjectCheck, register_check
from ..config import CheckConfig
from ..findings import Finding
from ..source import ModuleSource, Project
from .registry_conformance import (
    _class_index,
    _registration,
    _resolve_init,
    _Signature,
)


@register_check("CELL001")
class CellConformanceCheck(ProjectCheck):
    """Registered cell policies: unique names, partitioner-callable."""

    rule = "CELL001"
    description = (
        "cell-policy drift: duplicate registered name, or a factory "
        "that cannot accept the partitioner's nodes/cells/seed "
        "keywords"
    )
    hint = (
        "cell policies are called factory(nodes=..., cells=..., "
        "seed=...); accept all three keywords (directly or via "
        "**kwargs) and register a unique string-literal name"
    )

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        kinds = {
            config.cell_decorator: (config.cell_factory_keywords, 0)
        }
        index = _class_index(project)
        seen: Dict[str, Tuple[ModuleSource, int]] = {}
        for module in project:
            for node in ast.walk(module.tree):
                registration = _registration(node, kinds)
                if registration is None:
                    continue
                kind, name = registration
                assert isinstance(
                    node, (ast.FunctionDef, ast.ClassDef)
                )
                if name is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{kind}(...) name is not a string literal; "
                        "duplicate detection cannot see it",
                    )
                elif name in seen:
                    first_module, first_line = seen[name]
                    yield self.finding(
                        module,
                        node.lineno,
                        f"duplicate cell policy name {name!r} "
                        "(first registered at "
                        f"{first_module.relpath}:{first_line})",
                    )
                else:
                    seen[name] = (module, node.lineno)
                yield from self._check_signature(
                    module, node, config, index
                )

    def _check_signature(
        self,
        module: ModuleSource,
        node: "ast.FunctionDef | ast.ClassDef",
        config: CheckConfig,
        index: Dict[str, ast.ClassDef],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.FunctionDef):
            signature = _Signature(node.args, drop_self=False)
        else:
            init = _resolve_init(node, index)
            if init is None:
                return  # default/external __init__: nothing to check
            signature = _Signature(init.args, drop_self=True)
        missing = sorted(
            keyword
            for keyword in config.cell_factory_keywords
            if not signature.accepts(keyword)
        )
        if missing:
            yield self.finding(
                module,
                node.lineno,
                f"cell policy {node.name} does not accept "
                f"keyword(s) {', '.join(missing)}; the partitioner "
                "calls factory(nodes=..., cells=..., seed=...)",
            )
