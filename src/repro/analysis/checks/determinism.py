"""Determinism rules DET001-DET004.

Each rule statically catches one way a change can break the bit-for-bit
replay guarantee: drawing from global RNG state (DET001), reading the
wall clock where only simulated time may flow (DET002), letting set
iteration order leak into decisions (DET003) and ordering by object
identity (DET004).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..base import ModuleCheck, register_check
from ..config import CheckConfig
from ..findings import Finding
from ..source import ModuleSource


class ImportMap:
    """Which local names are the ``random``/``numpy``/clock modules."""

    __slots__ = (
        "random_modules", "numpy_modules", "numpy_random_modules",
        "time_modules", "datetime_modules", "datetime_classes",
        "clock_names",
    )

    def __init__(self, tree: ast.AST):
        self.random_modules: Set[str] = set()
        self.numpy_modules: Set[str] = set()
        self.numpy_random_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        self.datetime_classes: Set[str] = set()
        #: Local names that *are* wall-clock callables, via
        #: ``from time import monotonic`` style imports.
        self.clock_names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "random":
                        self.random_modules.add(bound)
                    elif alias.name == "numpy":
                        self.numpy_modules.add(bound)
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random_modules.add(alias.asname)
                        else:
                            self.numpy_modules.add(bound)
                    elif alias.name == "time":
                        self.time_modules.add(bound)
                    elif alias.name == "datetime":
                        self.datetime_modules.add(bound)
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_modules.add(
                                alias.asname or alias.name
                            )
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_TIME_ATTRS:
                            self.clock_names.add(
                                alias.asname or alias.name
                            )
                elif node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self.datetime_classes.add(
                                alias.asname or alias.name
                            )

    def is_numpy_random(self, node: ast.expr) -> bool:
        """Whether *node* denotes the ``numpy.random`` module."""
        if isinstance(node, ast.Name):
            return node.id in self.numpy_random_modules
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "random"
            and isinstance(node.value, ast.Name)
            and node.value.id in self.numpy_modules
        )


#: ``time`` module attributes that read (or depend on) the wall clock.
_WALL_CLOCK_TIME_ATTRS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "sleep",
})

#: ``datetime``/``date`` classmethods that read the wall clock.
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: ``numpy.random`` constructors that are deterministic *when seeded*.
_SEEDED_NUMPY_FACTORIES = frozenset({"default_rng", "SeedSequence"})


@register_check("DET001")
class UnseededRandomCheck(ModuleCheck):
    """Module-global or unseeded RNG anywhere in the tree."""

    rule = "DET001"
    description = (
        "unseeded or module-global RNG: only random.Random(seed) and "
        "np.random.default_rng(seed) draw reproducibly"
    )
    hint = (
        "thread an explicit seeded generator through instead: "
        "rng = np.random.default_rng(seed) / random.Random(seed)"
    )

    def check_module(
        self, module: ModuleSource, config: CheckConfig
    ) -> Iterable[Finding]:
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                # ``from random import shuffle`` smuggles the global
                # generator in under a local name; the import itself is
                # the hazard (``Random`` — the seedable class — is the
                # one defensible member).
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name != "Random"
                )
                if bad:
                    yield self.finding(
                        module,
                        node.lineno,
                        "from random import "
                        f"{', '.join(bad)} binds the module-global "
                        "generator",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id in imports.random_modules
            ):
                if func.attr == "Random" and (node.args or node.keywords):
                    continue  # random.Random(seed): seeded instance
                yield self.finding(
                    module,
                    node.lineno,
                    f"random.{func.attr}(...) uses the module-global "
                    "generator" if func.attr != "Random"
                    else "random.Random() without a seed",
                )
            elif imports.is_numpy_random(value):
                if func.attr in _SEEDED_NUMPY_FACTORIES and (
                    node.args or node.keywords
                ):
                    continue  # np.random.default_rng(seed)
                message = (
                    f"np.random.{func.attr}() without a seed"
                    if func.attr in _SEEDED_NUMPY_FACTORIES
                    else f"np.random.{func.attr}(...) draws from numpy's "
                    "global state"
                )
                yield self.finding(module, node.lineno, message)


@register_check("DET002")
class WallClockCheck(ModuleCheck):
    """Wall-clock reads inside simulated-time packages."""

    rule = "DET002"
    description = (
        "wall-clock read in a simulated-time package: the engine's "
        "clock is the only clock"
    )
    hint = (
        "take `now` from the simulation engine (engine.now) or thread "
        "it in as a parameter"
    )

    def check_module(
        self, module: ModuleSource, config: CheckConfig
    ) -> Iterable[Finding]:
        if not config.wall_clock_scoped(module.relpath, module.package):
            return
        imports = ImportMap(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name in _WALL_CLOCK_TIME_ATTRS
                )
                if bad:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"from time import {', '.join(bad)} in a "
                        "simulated-time package",
                    )
                continue
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                if node.id in imports.clock_names:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"wall-clock function {node.id}() referenced",
                    )
                continue
            if not isinstance(node, ast.Attribute):
                continue
            value = node.value
            # time.time / time.monotonic / ... — flagged as references,
            # not just calls: passing ``time.time`` as a clock callback
            # is exactly the hazard.
            if (
                isinstance(value, ast.Name)
                and value.id in imports.time_modules
                and node.attr in _WALL_CLOCK_TIME_ATTRS
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"time.{node.attr} read in a simulated-time package",
                )
            elif node.attr in _WALL_CLOCK_DATETIME_ATTRS and (
                (
                    isinstance(value, ast.Name)
                    and value.id in imports.datetime_classes
                )
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr in ("datetime", "date")
                    and isinstance(value.value, ast.Name)
                    and value.value.id in imports.datetime_modules
                )
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    f"datetime.{node.attr} read in a simulated-time "
                    "package",
                )


# -- DET003: set-iteration hazards ---------------------------------------

#: Set methods returning another set (preserve set-ness through them).
_SET_PRODUCING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference",
    "copy",
})

#: Calls whose result (or decision) depends on the argument's
#: iteration order.  ``sorted``/``any``/``all``/``len`` are absent by
#: design: sorting is the sanctioned fix, the others are
#: order-insensitive.  ``min``/``max`` ride along because ``key=``
#: functions make ties iteration-order dependent, and ``sum`` because
#: float addition is not associative.
_ORDER_SENSITIVE_CALLS = frozenset({
    "list", "tuple", "min", "max", "sum", "iter", "next", "enumerate",
    "reversed",
})

#: Annotation names marking an attribute as a set.
_SET_ANNOTATIONS = frozenset({"set", "Set", "frozenset", "FrozenSet"})


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """Whether a type annotation denotes a set type."""
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):  # typing.Set[...]
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


def _set_typed_attributes(tree: ast.AST) -> Set[str]:
    """Attribute names annotated as sets anywhere in the module.

    Covers class-body dataclass fields (``pids: Set[int] = ...``) and
    ``self.x: Set[str] = ...`` method-body annotations.  Names are
    collected module-wide: an attribute name reused across classes in
    one module with conflicting set-ness would over-approximate, which
    errs on the side of flagging.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.AnnAssign):
            continue
        if not _annotation_is_set(node.annotation):
            continue
        target = node.target
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


class _SetTracker:
    """Set-ness inference for expressions within one function scope."""

    __slots__ = ("locals", "attrs")

    def __init__(self, attrs: Set[str]):
        self.locals: Set[str] = set()
        self.attrs = attrs

    def is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.locals
        if isinstance(node, ast.Attribute):
            return node.attr in self.attrs
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in (
                "set", "frozenset"
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCING_METHODS
                and self.is_set(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body) or self.is_set(node.orelse)
        return False

    def note_assign(self, node: ast.stmt) -> None:
        """Track ``name = <set expr>`` (and un-track reassignments)."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if self.is_set(node.value):
                    self.locals.add(target.id)
                else:
                    self.locals.discard(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            if _annotation_is_set(node.annotation) or (
                node.value is not None and self.is_set(node.value)
            ):
                self.locals.add(node.target.id)
            else:
                self.locals.discard(node.target.id)


@register_check("DET003")
class SetIterationCheck(ModuleCheck):
    """Iteration-order hazards over sets in decision-path packages."""

    rule = "DET003"
    description = (
        "iteration over an unordered set in a decision-path package "
        "without an enclosing sorted()"
    )
    hint = "wrap the set in sorted(...) to pin the iteration order"

    def check_module(
        self, module: ModuleSource, config: CheckConfig
    ) -> Iterable[Finding]:
        if not config.decision_path(module.package):
            return
        attrs = _set_typed_attributes(module.tree)
        # Module body counts as one scope; each function gets its own.
        scopes: List[Tuple[Iterable[ast.stmt], _SetTracker]] = [
            (module.tree.body, _SetTracker(attrs))
        ]
        for node in ast.walk(module.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                scopes.append((node.body, _SetTracker(attrs)))
        for body, tracker in scopes:
            yield from self._scan_scope(module, body, tracker)

    def _scan_scope(
        self,
        module: ModuleSource,
        body: Iterable[ast.stmt],
        tracker: _SetTracker,
    ) -> Iterator[Finding]:
        """Walk one scope in statement order, tracking assignments.

        Nested statements (loop bodies, conditionals) are visited in
        source order via ``ast.walk`` per top-level statement, which
        keeps assignment tracking approximately flow-ordered; nested
        function bodies are scanned as their own scopes, so they are
        skipped here.
        """
        for statement in body:
            for node in ast.walk(statement):
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and node is not statement:
                    break
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    tracker.note_assign(node)
                yield from self._check_node(module, node, tracker)

    def _check_node(
        self, module: ModuleSource, node: ast.AST, tracker: _SetTracker
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if tracker.is_set(node.iter):
                yield self.finding(
                    module,
                    node.lineno,
                    "for-loop iterates a set in arbitrary order",
                )
        elif isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                   ast.DictComp)
        ):
            for generator in node.generators:
                if tracker.is_set(generator.iter):
                    yield self.finding(
                        module,
                        node.lineno,
                        "comprehension iterates a set in arbitrary "
                        "order",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE_CALLS
            ):
                for arg in node.args:
                    if tracker.is_set(arg):
                        yield self.finding(
                            module,
                            node.lineno,
                            f"{func.id}() consumes a set in arbitrary "
                            "order",
                        )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "join"
                and node.args
                and tracker.is_set(node.args[0])
            ):
                yield self.finding(
                    module,
                    node.lineno,
                    "str.join() consumes a set in arbitrary order",
                )


# -- DET004: identity-based ordering -------------------------------------

_HEAP_PUSH_FUNCS = frozenset({"heappush", "heappushpop", "heapreplace"})


def _contains_id_call(node: ast.AST) -> Optional[int]:
    """Line of the first ``id(...)`` call inside *node*, if any."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == "id"
        ):
            return child.lineno
    return None


@register_check("DET004")
class IdentityOrderCheck(ModuleCheck):
    """``id(...)`` in sort keys, heap tuples or comparisons."""

    rule = "DET004"
    description = (
        "object identity used as an ordering key: id() values vary "
        "across runs"
    )
    hint = (
        "order by a stable field (name, uid, sequence number) instead "
        "of id()"
    )

    def check_module(
        self, module: ModuleSource, config: CheckConfig
    ) -> Iterable[Finding]:
        if not config.decision_path(module.package):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                line = _contains_id_call(node)
                if line is not None:
                    yield self.finding(
                        module,
                        line,
                        "id() inside a comparison acts as an "
                        "identity tie-breaker",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else ""
                )
                if name in ("sorted", "sort", "min", "max"):
                    for keyword in node.keywords:
                        if keyword.arg != "key":
                            continue
                        line = _contains_id_call(keyword.value)
                        if line is not None:
                            yield self.finding(
                                module,
                                line,
                                f"id() inside a {name}() key",
                            )
                elif name in _HEAP_PUSH_FUNCS:
                    for arg in node.args[1:]:
                        line = _contains_id_call(arg)
                        if line is not None:
                            yield self.finding(
                                module,
                                line,
                                "id() inside a heap entry orders by "
                                "object identity",
                            )
