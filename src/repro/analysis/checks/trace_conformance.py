"""Trace rule TRACE001: adapter conformance and duplicate names.

Trace adapters register with ``@register_trace("name")`` and are
always called ``factory(spec=..., seed=...)`` by
:func:`repro.trace.adapters.resolve_trace`.  The registry catches a
duplicate name only when both modules are imported in one process,
and a factory missing the ``spec``/``seed`` keywords fails only when
its spec is first resolved — possibly deep inside a sweep.  This rule
checks both at lint time, mirroring what REG001 does for the
scheduler/workload/policy registries (whose call contracts differ,
hence the separate rule).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Tuple

from ..base import ProjectCheck, register_check
from ..config import CheckConfig
from ..findings import Finding
from ..source import ModuleSource, Project
from .registry_conformance import (
    _class_index,
    _registration,
    _resolve_init,
    _Signature,
)


@register_check("TRACE001")
class TraceConformanceCheck(ProjectCheck):
    """Registered trace adapters: unique names, resolver-callable."""

    rule = "TRACE001"
    description = (
        "trace-adapter drift: duplicate registered name, or a "
        "factory that cannot accept the resolver's spec/seed keywords"
    )
    hint = (
        "trace adapters are called factory(spec=..., seed=...); "
        "accept both keywords (directly or via **kwargs) and register "
        "a unique string-literal name"
    )

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        kinds = {
            config.trace_decorator: (config.trace_factory_keywords, 0)
        }
        index = _class_index(project)
        seen: Dict[str, Tuple[ModuleSource, int]] = {}
        for module in project:
            for node in ast.walk(module.tree):
                registration = _registration(node, kinds)
                if registration is None:
                    continue
                kind, name = registration
                assert isinstance(
                    node, (ast.FunctionDef, ast.ClassDef)
                )
                if name is None:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{kind}(...) name is not a string literal; "
                        "duplicate detection cannot see it",
                    )
                elif name in seen:
                    first_module, first_line = seen[name]
                    yield self.finding(
                        module,
                        node.lineno,
                        f"duplicate trace adapter name {name!r} "
                        "(first registered at "
                        f"{first_module.relpath}:{first_line})",
                    )
                else:
                    seen[name] = (module, node.lineno)
                yield from self._check_signature(
                    module, node, config, index
                )

    def _check_signature(
        self,
        module: ModuleSource,
        node: "ast.FunctionDef | ast.ClassDef",
        config: CheckConfig,
        index: Dict[str, ast.ClassDef],
    ) -> Iterator[Finding]:
        if isinstance(node, ast.FunctionDef):
            signature = _Signature(node.args, drop_self=False)
        else:
            init = _resolve_init(node, index)
            if init is None:
                return  # default/external __init__: nothing to check
            signature = _Signature(init.args, drop_self=True)
        missing = sorted(
            keyword
            for keyword in config.trace_factory_keywords
            if not signature.accepts(keyword)
        )
        if missing:
            yield self.finding(
                module,
                node.lineno,
                f"trace adapter {node.name} does not accept "
                f"keyword(s) {', '.join(missing)}; the resolver "
                "calls factory(spec=..., seed=...)",
            )
