"""Ledger rule OBS001: emit sites conform to the frozen schema table.

The decision ledger's value rests on two invariants the runtime only
enforces on *observed* runs (the null ledger validates nothing):

* **declared kinds and fields** — every ``<ledger>.emit(now, kind,
  field=...)`` call anywhere in the tree uses a string-literal kind
  declared in :data:`repro.obs.ledger.LEDGER_EVENT_KINDS` (the
  ``repro.ledger/v1`` schema table) and passes exactly declared
  payload fields, so ``repro diff`` compares records whose shape is
  known in advance and consumers can parse any ledger against one
  table;
* **primitive payloads** — emit sites pass scalars (``pod.name``,
  ``len(victims)``, ``plan.cost``), never a live ``Pod``/``NodeView``/
  plan object whose mutable state would be serialised mid-flight (or
  fail to serialise at all).  A bare name like ``pod=pod`` at an emit
  site is almost always this mistake; attribute reads off the same
  objects are the supported idiom.

Both bugs bite only when somebody records a run — typically while
debugging a divergence, the worst moment to discover the ledger is
malformed — so they are linted here instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

from ..base import ProjectCheck, register_check
from ..config import CheckConfig
from ..findings import Finding
from ..source import ModuleSource, Project


def _receiver_is_ledger(func: ast.Attribute) -> bool:
    """Whether ``<receiver>.emit`` reads like a ledger emit call."""
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return "ledger" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "ledger" in receiver.attr.lower()
    return False


def _schema_table(
    module: ModuleSource, table_name: str
) -> Optional[Dict[str, Tuple[str, ...]]]:
    """Parse the ``kind -> declared fields`` dict literal, if sound."""
    for node in module.tree.body:
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        else:
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == table_name
            for target in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return None
        table: Dict[str, Tuple[str, ...]] = {}
        for key, fields in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            ):
                return None
            if not isinstance(fields, (ast.Tuple, ast.List)):
                return None
            names = []
            for element in fields.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    return None
                names.append(element.value)
            table[key.value] = tuple(names)
        return table
    return None


@register_check("OBS001")
class LedgerConformanceCheck(ProjectCheck):
    """Ledger emit sites: declared kinds/fields, primitive payloads."""

    rule = "OBS001"
    description = (
        "ledger schema drift: an emit site using an undeclared event "
        "kind or payload field, a non-literal kind, a **splat "
        "payload, or a live engine object as a payload value"
    )
    hint = (
        "declare every event kind and its fields in the "
        "repro.ledger/v1 table (LEDGER_EVENT_KINDS) and emit only "
        "primitives: ledger.emit(now, \"kind\", field=pod.name, ...)"
    )

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        table: Optional[Dict[str, Tuple[str, ...]]] = None
        for module in project:
            if module.relpath == config.ledger_module:
                table = _schema_table(module, config.ledger_schema_table)
                if table is None:
                    yield self.finding(
                        module,
                        1,
                        f"schema table {config.ledger_schema_table} is "
                        "not a dict literal of string kinds to tuples "
                        "of string field names; emit sites cannot be "
                        "checked against it",
                        hint=(
                            "keep LEDGER_EVENT_KINDS a pure literal — "
                            "the static checker (and every ledger "
                            "consumer) reads it without importing"
                        ),
                    )
                break
        for module in project:
            for node in ast.walk(module.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                    and _receiver_is_ledger(node.func)
                ):
                    continue
                yield from self._check_emit(module, node, table, config)

    def _check_emit(
        self,
        module: ModuleSource,
        call: ast.Call,
        table: Optional[Dict[str, Tuple[str, ...]]],
        config: CheckConfig,
    ) -> Iterator[Finding]:
        declared: Optional[Tuple[str, ...]] = None
        if len(call.args) < 2:
            yield self.finding(
                module,
                call.lineno,
                "ledger emit without a positional (now, kind) prefix; "
                "the kind cannot be checked against the schema table",
            )
        else:
            kind_node = call.args[1]
            if not (
                isinstance(kind_node, ast.Constant)
                and isinstance(kind_node.value, str)
            ):
                yield self.finding(
                    module,
                    call.lineno,
                    "ledger event kind is not a string literal; "
                    "schema conformance cannot see it",
                )
            elif table is not None:
                kind = kind_node.value
                if kind not in table:
                    yield self.finding(
                        module,
                        call.lineno,
                        f"ledger event kind {kind!r} is not declared "
                        f"in {config.ledger_schema_table}",
                    )
                else:
                    declared = table[kind]
        for keyword in call.keywords:
            if keyword.arg is None:
                yield self.finding(
                    module,
                    call.lineno,
                    "ledger emit payload uses **splat; fields must be "
                    "spelled out so the schema table stays checkable",
                )
                continue
            if declared is not None and keyword.arg not in declared:
                yield self.finding(
                    module,
                    call.lineno,
                    f"payload field {keyword.arg!r} is not declared "
                    "for this event kind in "
                    f"{config.ledger_schema_table}",
                )
            value = keyword.value
            if (
                isinstance(value, ast.Name)
                and value.id in config.ledger_live_object_names
            ):
                yield self.finding(
                    module,
                    call.lineno,
                    f"payload value {value.id!r} is a live engine "
                    "object; records must carry primitives "
                    f"(e.g. {value.id}.name)",
                )
