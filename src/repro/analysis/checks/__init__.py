"""Built-in rules; importing this package registers them all.

====================  =================================================
Rule                  Hazard
====================  =================================================
``DET001``            unseeded / module-global RNG use
``DET002``            wall-clock reads inside simulated-time packages
``DET003``            iteration over unordered sets in decision paths
``DET004``            ``id()`` in sort keys / heap tuples / tie-breaks
``LAYOUT001``         hot-module class without ``__slots__``
``LAYOUT002``         slotted class inheriting a non-slotted base
``REG001``            registry factory signature / duplicate names
``TRACE001``          trace-adapter signature / duplicate names
``CELL001``           cell-policy signature / duplicate names
``API001``            CLI flag with no matching ``Scenario`` field
``OBS001``            ledger emit site off the frozen schema table
====================  =================================================

(The runner itself emits ``NOQA001`` for suppressions that no longer
suppress anything and ``BASE001`` for stale baseline entries; those
are bookkeeping, not AST rules, so they live in
:mod:`repro.analysis.runner`.)
"""

from . import api_drift  # noqa: F401
from . import cell_conformance  # noqa: F401
from . import determinism  # noqa: F401
from . import layout  # noqa: F401
from . import obs_conformance  # noqa: F401
from . import registry_conformance  # noqa: F401
from . import trace_conformance  # noqa: F401
