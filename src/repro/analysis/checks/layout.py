"""Layout rules LAYOUT001-LAYOUT002.

PR 6 rebuilt the hot-path classes with ``__slots__`` to shed per-pod
``__dict__`` overhead.  That work is undone silently: add one class
without slots (LAYOUT001) or inherit from one non-slotted base
(LAYOUT002) and every instance quietly grows a dict again with no test
failing.  These rules make the regression a lint error instead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..base import ProjectCheck, register_check
from ..config import CheckConfig
from ..findings import Finding
from ..source import ModuleSource, Project


def _base_name(node: ast.expr) -> str:
    """Dotted name of a base-class expression (``abc.ABC``), or ``""``.

    Subscripted bases (``Generic[T]``, ``Protocol[T]``) resolve to the
    subscripted value's name.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _decorator_name(node: ast.expr) -> str:
    """Name of a decorator, unwrapping calls: ``dataclass(slots=True)``
    and ``dataclasses.dataclass`` both resolve to ``dataclass``."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _dataclass_slots(node: ast.ClassDef) -> Optional[bool]:
    """``True``/``False`` if decorated ``@dataclass(slots=...)``;
    ``None`` if not a dataclass at all."""
    for decorator in node.decorator_list:
        if _decorator_name(decorator) != "dataclass":
            continue
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots":
                    value = keyword.value
                    return (
                        isinstance(value, ast.Constant)
                        and value.value is True
                    )
        return False
    return None


def _declares_slots(node: ast.ClassDef) -> bool:
    """Whether the class body assigns ``__slots__`` directly."""
    for statement in node.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__slots__":
                return True
    return False


def _is_protocol(node: ast.ClassDef) -> bool:
    """Protocols never get instantiated; slots are meaningless there."""
    return any(
        _base_name(base) in ("Protocol", "typing.Protocol")
        for base in node.bases
    )


class _ClassInfo:
    """One class definition with its resolved slots status."""

    __slots__ = ("module", "node", "slotted", "protocol")

    def __init__(self, module: ModuleSource, node: ast.ClassDef):
        self.module = module
        self.node = node
        dc_slots = _dataclass_slots(node)
        self.slotted = (
            dc_slots if dc_slots is not None else _declares_slots(node)
        )
        self.protocol = _is_protocol(node)


def _index_classes(project: Project) -> Dict[str, List[_ClassInfo]]:
    """Every top-level and nested class in the project, by bare name.

    Bare-name resolution is an approximation (no import graph), but
    within one package tree a base-class name almost always denotes the
    single project class of that name; ambiguous names resolve
    pessimistically to "any candidate slotted".
    """
    index: Dict[str, List[_ClassInfo]] = {}
    for module in project:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                index.setdefault(node.name, []).append(
                    _ClassInfo(module, node)
                )
    return index


@register_check("LAYOUT001")
class SlotsRequiredCheck(ProjectCheck):
    """Every class in a hot-layout module must declare ``__slots__``."""

    rule = "LAYOUT001"
    description = (
        "class in a lean-layout hot module without __slots__ (or "
        "@dataclass(slots=True))"
    )
    hint = (
        "declare __slots__ = (...) or use @dataclass(slots=True); "
        "instances in hot modules must not carry a __dict__"
    )

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        for module in project:
            if not config.hot_layout(module.relpath):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = _ClassInfo(module, node)
                if info.protocol:
                    continue  # structural type, never instantiated
                if info.slotted:
                    continue
                if _dataclass_slots(node) is False:
                    message = (
                        f"dataclass {node.name} lacks slots=True"
                    )
                else:
                    message = (
                        f"class {node.name} does not declare __slots__"
                    )
                yield self.finding(module, node.lineno, message)


@register_check("LAYOUT002")
class SlottedBaseCheck(ProjectCheck):
    """A slotted class must not inherit a non-slotted base."""

    rule = "LAYOUT002"
    description = (
        "slotted class inherits a non-slotted base: the base's "
        "__dict__ silently defeats the slots"
    )
    hint = (
        "give the base __slots__ = () (mixins/ABCs) or its own slot "
        "tuple"
    )

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        index = _index_classes(project)
        for module in project:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                info = _ClassInfo(module, node)
                if not info.slotted:
                    continue
                yield from self._check_bases(
                    module, node, index, config
                )

    def _check_bases(
        self,
        module: ModuleSource,
        node: ast.ClassDef,
        index: Dict[str, List[_ClassInfo]],
        config: CheckConfig,
    ) -> Iterator[Finding]:
        for base in node.bases:
            name = _base_name(base)
            if not name or name in config.slotted_external_bases:
                continue
            candidates = index.get(name.rsplit(".", 1)[-1])
            if not candidates:
                continue  # external base: unknowable, skip
            if any(c.slotted or c.protocol for c in candidates):
                continue
            yield self.finding(
                module,
                node.lineno,
                f"slotted class {node.name} inherits non-slotted "
                f"base {name}",
            )
