"""API rule API001: CLI flags must map onto ``Scenario`` fields.

The CLI is a thin shell over the scenario API: every ``repro run`` /
``repro sweep`` flag sets exactly one :class:`Scenario` field.  A flag
added without its field (or after a field rename) produces a
``TypeError`` only at invocation time, on the one code path the unit
suites exercise least.  This rule diff's the two surfaces statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..base import ProjectCheck, register_check
from ..config import CheckConfig
from ..findings import Finding
from ..source import ModuleSource, Project


def _scenario_fields(
    project: Project, config: CheckConfig
) -> Optional[Set[str]]:
    """Field names of the configured ``Scenario`` dataclass."""
    module = project.get(config.scenario_module)
    if module is None:
        return None
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.ClassDef)
            and node.name == config.scenario_class
        ):
            return {
                statement.target.id
                for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
            }
    return None


def _flag_dest(call: ast.Call) -> Optional[str]:
    """argparse dest of one ``add_argument`` call, or ``None``."""
    for keyword in call.keywords:
        if keyword.arg == "dest" and isinstance(
            keyword.value, ast.Constant
        ):
            return str(keyword.value.value)
    for arg in call.args:
        if not (
            isinstance(arg, ast.Constant)
            and isinstance(arg.value, str)
        ):
            continue
        option = arg.value
        if option.startswith("--"):
            return option[2:].replace("-", "_")
    return None


@register_check("API001")
class CliDriftCheck(ProjectCheck):
    """Every scenario CLI flag maps to a ``Scenario`` field."""

    rule = "API001"
    description = (
        "CLI flag with no matching Scenario field: the run facade "
        "will reject it at invocation time"
    )
    hint = (
        "add the Scenario field, add the flag to cli_field_aliases, "
        "or review it onto cli_only_flags"
    )

    def run(
        self, project: Project, config: CheckConfig
    ) -> Iterator[Finding]:
        cli = project.get(config.cli_module)
        if cli is None:
            return
        fields = _scenario_fields(project, config)
        if fields is None:
            yield Finding(
                rule=self.rule,
                path=config.scenario_module,
                line=1,
                message=(
                    f"scenario class {config.scenario_class} not "
                    f"found in {config.scenario_module}"
                ),
                hint=self.hint,
            )
            return
        for node in ast.walk(cli.tree):
            if (
                not isinstance(node, ast.FunctionDef)
                or node.name not in config.cli_flag_functions
            ):
                continue
            yield from self._check_flags(cli, node, fields, config)

    def _check_flags(
        self,
        cli: ModuleSource,
        function: ast.FunctionDef,
        fields: Set[str],
        config: CheckConfig,
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
            ):
                continue
            dest = _flag_dest(node)
            if dest is None or dest in config.cli_only_flags:
                continue
            field = config.cli_field_aliases.get(dest, dest)
            if field not in fields:
                yield self.finding(
                    cli,
                    node.lineno,
                    f"flag --{dest.replace('_', '-')} maps to no "
                    f"{config.scenario_class} field "
                    f"(looked for {field!r})",
                )
