"""Pluggable registries for schedulers and workloads.

The paper's whole evaluation is "replay one scaled Borg trace under
many configurations"; what varies between configurations is *which
strategy places pods* and *which workload the trace materialises
into*.  Both are now extension points: a strategy or workload plugs in
with a decorator and is immediately addressable by name from
:class:`repro.api.Scenario`, ``ReplayConfig`` and the CLI —

    from repro.registry import register_scheduler

    @register_scheduler("my-policy")
    class MyScheduler(Scheduler):
        ...

    Scenario(scheduler="my-policy").run()

Lookups fail fast with the sorted list of known names, so a typo in a
scenario dies at build time, not deep inside a replay.

This module is intentionally a leaf: it imports nothing but the error
hierarchy, so scheduler and workload modules can register themselves
at import time without cycles.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Tuple

from .errors import RegistryError


class Registry:
    """A small name -> factory map with fail-fast semantics.

    * registering a taken name raises (plugins cannot silently shadow
      a built-in or each other);
    * looking up an unknown name raises with the sorted known names.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable] = {}

    def register(self, name: str) -> Callable[[Callable], Callable]:
        """Decorator: bind *name* to the decorated factory.

        The factory is returned unchanged, so classes stay directly
        constructible and functions directly callable.
        """
        if not name or not isinstance(name, str):
            raise RegistryError(
                f"{self.kind} names must be non-empty strings, "
                f"got {name!r}"
            )

        def decorator(factory: Callable) -> Callable:
            if name in self._factories:
                raise RegistryError(
                    f"{self.kind} {name!r} is already registered "
                    f"({self._factories[name]!r})"
                )
            self._factories[name] = factory
            return factory

        return decorator

    def get(self, name: str) -> Callable:
        """The factory registered under *name*; raises with the known
        names when absent."""
        try:
            return self._factories[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {known}"
            ) from None

    def unregister(self, name: str) -> None:
        """Remove *name* (primarily for tests tearing down plugins)."""
        if name not in self._factories:
            known = ", ".join(self.names()) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; known: {known}"
            )
        del self._factories[name]

    def names(self) -> Tuple[str, ...]:
        """Sorted registered names."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {list(self.names())})"


#: Scheduling strategies addressable by ``Scenario(scheduler=...)``.
#: Factories are called with the standard knobs (``use_measured``,
#: ``strict_fcfs``, ``preserve_sgx_nodes``, ``indexed``) plus any
#: scenario-level ``scheduler_options`` and must return a
#: :class:`repro.scheduler.base.Scheduler`.
SCHEDULERS = Registry("scheduler")

#: Workload materialisers addressable by ``Scenario(workload=...)``.
#: Factories are called as ``factory(cluster, trace, *, sgx_fraction,
#: seed, scheduler_name, **options)`` and must return a list of
#: :class:`repro.workload.stress.SubmissionPlan`.  A factory that
#: never reads the trace may set ``consumes_trace = False`` on itself;
#: ``Scenario.run`` then skips the trace synthesis for it.
WORKLOADS = Registry("workload")

#: Preemption planners addressable by ``Scenario(preemption_policy=...)``.
#: Factories are called with no arguments and must return a
#: :class:`repro.policy.preemption.PreemptionPolicy`.  The built-in
#: ``none`` (the default) keeps the paper's strictly non-preemptive
#: orchestrator.
PREEMPTION_POLICIES = Registry("preemption policy")

#: Trace adapters addressable by ``Scenario(trace="name:key=val,...")``.
#: Factories are called as ``factory(spec=TraceSpec, seed=int)`` —
#: ``seed`` is the spec's ``seed`` option resolved against
#: ``DEFAULT_TRACE_SEED`` — and must return a
#: :class:`repro.trace.schema.Trace`.  The built-ins live in
#: :mod:`repro.trace.adapters`; ``repro traces`` lists the catalogue.
TRACES = Registry("trace adapter")

#: Cell partition policies addressable by
#: ``Scenario(cell_policy=...)``.  Factories are called as
#: ``factory(nodes=Sequence[Node], cells=int, seed=int)`` and must
#: return a mapping of node name -> cell id covering every node
#: exactly once with ids in ``[0, cells)`` —
#: :func:`repro.cells.policies.partition_nodes` enforces the totality
#: contract on every call.  The built-ins (``balanced``, ``region``,
#: ``capacity-class``) live in :mod:`repro.cells.policies`.
CELLS = Registry("cell policy")


def register_scheduler(name: str) -> Callable[[Callable], Callable]:
    """Class/function decorator adding a scheduler strategy by name."""
    return SCHEDULERS.register(name)


def register_workload(name: str) -> Callable[[Callable], Callable]:
    """Function decorator adding a workload materialiser by name."""
    return WORKLOADS.register(name)


def register_preemption_policy(name: str) -> Callable[[Callable], Callable]:
    """Class/function decorator adding a preemption planner by name."""
    return PREEMPTION_POLICIES.register(name)


def register_trace(name: str) -> Callable[[Callable], Callable]:
    """Function decorator adding a trace adapter by name."""
    return TRACES.register(name)


def register_cell_policy(name: str) -> Callable[[Callable], Callable]:
    """Function decorator adding a cell partition policy by name."""
    return CELLS.register(name)


def scheduler_names() -> Tuple[str, ...]:
    """Sorted names of all registered scheduling strategies."""
    return SCHEDULERS.names()


def workload_names() -> Tuple[str, ...]:
    """Sorted names of all registered workloads."""
    return WORKLOADS.names()


def preemption_policy_names() -> Tuple[str, ...]:
    """Sorted names of all registered preemption planners."""
    return PREEMPTION_POLICIES.names()


def trace_names() -> Tuple[str, ...]:
    """Sorted names of all registered trace adapters."""
    return TRACES.names()


def cell_policy_names() -> Tuple[str, ...]:
    """Sorted names of all registered cell partition policies."""
    return CELLS.names()
