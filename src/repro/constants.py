"""Constants taken directly from the paper (Vaucher et al., ICDCS 2018).

Every number here is traceable to a specific sentence, figure or table of
the paper; the section is cited next to each constant.  Centralising them
keeps the latency model, the trace scaling and the cluster inventory
honest: experiments read these values instead of re-declaring them.
"""

from __future__ import annotations

from .units import gib, mib

# --------------------------------------------------------------------------
# Experiment defaults (not from the paper; shared by every driver)
# --------------------------------------------------------------------------

#: Seed of the synthetic scaled trace unless overridden: one trace,
#: many runs, exactly like the paper replaying one scaled trace under
#: many configurations.
DEFAULT_TRACE_SEED = 42

#: Seed for SGX-designation and other per-run randomness.
DEFAULT_RUN_SEED = 1

# --------------------------------------------------------------------------
# SGX / EPC geometry (Section II)
# --------------------------------------------------------------------------

#: Total Processor Reserved Memory configured on current hardware (Sec. II:
#: "current hardware supports at most 128MiB").
EPC_TOTAL_BYTES = mib(128)

#: Usable share of the EPC; the remainder stores SGX metadata (Sec. II:
#: "Only 93.5MiB out of 128MiB can effectively be used by applications").
EPC_USABLE_BYTES = mib(93.5)

#: Usable EPC expressed in 4 KiB pages (Sec. II: "a total of 23 936 pages").
EPC_USABLE_PAGES = 23_936

#: Worst-case slowdown when the EPC is over-committed and paging kicks in
#: (Sec. V-A: "severe performance drops up to 1000x", citing SCONE).
EPC_PAGING_MAX_SLOWDOWN = 1000.0

# --------------------------------------------------------------------------
# SGX startup latency model (Section VI-D, Figure 6)
# --------------------------------------------------------------------------

#: PSW / AESM service startup, "about 100 ms", independent of enclave size.
PSW_STARTUP_SECONDS = 0.100

#: EPC allocation rate below the usable-EPC knee: "1.6 ms/MiB".
EPC_ALLOC_SECONDS_PER_MIB_BELOW = 0.0016

#: EPC allocation rate past the knee: "4.5 ms/MiB".
EPC_ALLOC_SECONDS_PER_MIB_ABOVE = 0.0045

#: Fixed penalty once allocation crosses the usable EPC: "a fixed delay of
#: about 200 ms".
EPC_ALLOC_KNEE_PENALTY_SECONDS = 0.200

#: Standard (non-SGX) job startup: "steadily took less than 1 ms".
STANDARD_STARTUP_SECONDS = 0.001

# --------------------------------------------------------------------------
# Cluster inventory (Section VI-A)
# --------------------------------------------------------------------------

#: RAM of each Dell PowerEdge R330 (Xeon E3-1270 v6) machine.
STANDARD_NODE_MEMORY_BYTES = gib(64)

#: Logical CPUs of the Xeon E3-1270 v6 (4 cores / 8 threads).
STANDARD_NODE_CPUS = 8

#: RAM of each SGX-enabled machine (Intel i7-6700).
SGX_NODE_MEMORY_BYTES = gib(8)

#: Logical CPUs of the i7-6700 (4 cores / 8 threads).
SGX_NODE_CPUS = 8

#: Number of non-SGX worker machines (3 R330 minus the master).
STANDARD_WORKER_COUNT = 2

#: Number of SGX-enabled worker machines.
SGX_WORKER_COUNT = 2

# --------------------------------------------------------------------------
# Trace scaling (Section VI-B)
# --------------------------------------------------------------------------

#: Start of the 1-hour evaluation slice, seconds from trace start.
TRACE_SLICE_START_SECONDS = 6480

#: End (exclusive) of the evaluation slice.
TRACE_SLICE_END_SECONDS = 10_080

#: Frequency down-scaling: "We sample every 1200th job from the trace".
TRACE_SAMPLING_STRIDE = 1200

#: Jobs in the scaled trace ("44 jobs out of 663 show this behavior").
TRACE_SCALED_JOB_COUNT = 663

#: Number of scaled-trace jobs that allocate more than they advertise.
TRACE_OVERALLOCATOR_COUNT = 44

#: Longest job duration in the trace (Fig. 4: "All jobs last at most 300 s").
TRACE_MAX_JOB_DURATION_SECONDS = 300.0

#: Largest max-memory-usage fraction observed in the trace (Fig. 3 x-range).
TRACE_MAX_MEMORY_FRACTION = 0.5

#: Multiplier mapping trace memory fractions to standard-job bytes
#: (Sec. VI-B: "we compute their memory usage by multiplying them to 32GiB").
STANDARD_MEMORY_MULTIPLIER_BYTES = gib(32)

#: Multiplier mapping trace memory fractions to SGX-job EPC bytes
#: (Sec. VI-B: "multiplying the memory usage factor ... to the total usable
#: size of the EPC (93.5MiB in our case)").
SGX_MEMORY_MULTIPLIER_BYTES = mib(93.5)

# --------------------------------------------------------------------------
# Scheduler / monitoring defaults (Sections IV, V-C)
# --------------------------------------------------------------------------

#: Sliding-window length used by the paper's InfluxQL query (Listing 1:
#: ``time >= now() - 25s``).
METRICS_WINDOW_SECONDS = 25.0

#: Period between metric pushes from node probes (Heapster default-ish;
#: must be shorter than the sliding window to keep it populated).
METRICS_PUSH_PERIOD_SECONDS = 10.0

#: Period between scheduling passes over the pending queue (Sec. IV: "the
#: scheduler periodically checks").
SCHEDULER_PERIOD_SECONDS = 5.0

# --------------------------------------------------------------------------
# Paper-reported results used as shape targets (Section VI)
# --------------------------------------------------------------------------

#: Fig. 7 makespans per simulated EPC size, in seconds.
FIG7_MAKESPAN_TARGETS = {
    mib(32): 4 * 3600 + 47 * 60,
    mib(64): 2 * 3600 + 47 * 60,
    mib(128): 1 * 3600 + 22 * 60,
    mib(256): 1 * 3600,
}

#: Fig. 8: longest wait in the 100 %-SGX run, seconds.
FIG8_MAX_WAIT_SECONDS = 4696.0

#: Fig. 10 aggregate turnaround times, hours.
FIG10_TURNAROUND_HOURS = {
    "trace": 94.0,
    ("binpack", "standard"): 111.0,
    ("binpack", "sgx"): 210.0,
    ("spread", "standard"): 129.0,
    ("spread", "sgx"): 275.0,
}
