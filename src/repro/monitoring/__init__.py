"""Monitoring substrate: time-series database, InfluxQL subset and probes.

Replaces the paper's Heapster + InfluxDB pipeline (Section V-C) with an
in-memory equivalent:

* :mod:`repro.monitoring.tsdb` — a time-series store with tags, retention
  and range scans;
* :mod:`repro.monitoring.influxql` — a lexer/parser/executor for the
  InfluxQL subset the paper's scheduler uses, sufficient to run Listing 1
  verbatim (nested sub-query, ``MAX``/``SUM``, ``now() - 25s`` windows,
  ``GROUP BY``);
* :mod:`repro.monitoring.heapster` — the standard-memory collector;
* :mod:`repro.monitoring.probe` — the SGX EPC probe deployed per node as a
  DaemonSet payload, reading the patched driver's counters;
* :mod:`repro.monitoring.aggregate` — the write-through sliding-window
  aggregate cache that answers Listing 1's inner query incrementally.
"""

from .aggregate import SeriesAggregate, WindowedAggregateCache
from .heapster import MEASUREMENT_MEMORY, Heapster
from .influxql import InfluxQLError, execute_query, parse_query
from .probe import MEASUREMENT_EPC, SgxMetricsProbe
from .tsdb import Point, TimeSeriesDatabase

__all__ = [
    "Heapster",
    "InfluxQLError",
    "MEASUREMENT_EPC",
    "MEASUREMENT_MEMORY",
    "Point",
    "SeriesAggregate",
    "SgxMetricsProbe",
    "TimeSeriesDatabase",
    "WindowedAggregateCache",
    "execute_query",
    "parse_query",
]
