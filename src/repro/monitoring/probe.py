"""SGX metrics probe: the DaemonSet payload measuring EPC usage.

One probe runs on every SGX-enabled node (deployed by the DaemonSet
controller, Section V-C).  It reads the patched driver's counters — the
``sgx_nr_total_epc_pages`` / ``sgx_nr_free_pages`` module parameters plus
the per-process occupancy ioctl rolled up by cgroup — and pushes per-pod
EPC usage into the same TSDB Heapster uses, under the ``sgx/epc``
measurement with ``pod_name``/``nodename`` tags so the scheduler's
InfluxQL (Listing 1) covers both resource kinds with one query shape.

Values are written in **EPC pages**, the unit the whole accounting chain
(device plugin, driver, scheduler) shares.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..sgx.driver import (
    PARAM_FREE_PAGES,
    PARAM_TOTAL_PAGES,
    SgxDriver,
)
from .tsdb import TimeSeriesDatabase

#: Measurement name for EPC usage, as in the paper's Listing 1.
MEASUREMENT_EPC = "sgx/epc"

#: Measurement for node-level EPC gauges (total/free pages).
MEASUREMENT_EPC_NODE = "sgx/epc_node"


class SgxMetricsProbe:
    """Per-node probe translating driver counters into TSDB points.

    Parameters
    ----------
    node_name:
        Tag value for ``nodename``.
    driver:
        The node's :class:`~repro.sgx.driver.SgxDriver`.
    db:
        Destination time-series database.
    pod_name_resolver:
        Maps a cgroup path to the owning pod's name.  Supplied by the
        Kubelet, which owns the cgroup-to-pod mapping.  Unresolvable
        cgroups are skipped (e.g. enclaves of system daemons).
    """

    __slots__ = (
        "node_name", "driver", "db", "pod_name_resolver", "_pod_tags",
        "_gauge_tags",
    )

    def __init__(
        self,
        node_name: str,
        driver: SgxDriver,
        db: TimeSeriesDatabase,
        pod_name_resolver: Callable[[str], Optional[str]],
    ):
        self.node_name = node_name
        self.driver = driver
        self.db = db
        self.pod_name_resolver = pod_name_resolver
        # Sorted tag tuples built once per pod (and once per gauge)
        # instead of dict-sorted on every measurement pass.
        self._pod_tags: Dict[str, Tuple[Tuple[str, str], ...]] = {}
        self._gauge_tags = tuple(
            (("gauge", label), ("nodename", node_name))
            for label in ("total", "free")
        )

    def collect(self, now: float) -> int:
        """Take one measurement pass; returns points written."""
        written = 0
        snapshot = self.driver.snapshot()
        pod_tags = self._pod_tags
        write_tagged = self.db.write_tagged
        for cgroup_path, pages in snapshot.usage_by_owner.items():
            pod_name = self.pod_name_resolver(cgroup_path)
            if pod_name is None:
                continue
            tags = pod_tags.get(pod_name)
            if tags is None:
                # Already in sorted order: "nodename" < "pod_name".
                tags = pod_tags[pod_name] = (
                    ("nodename", self.node_name),
                    ("pod_name", pod_name),
                )
            write_tagged(
                MEASUREMENT_EPC, value=float(pages), time=now, tags=tags
            )
            written += 1
        for param, tags in (
            (PARAM_TOTAL_PAGES, self._gauge_tags[0]),
            (PARAM_FREE_PAGES, self._gauge_tags[1]),
        ):
            write_tagged(
                MEASUREMENT_EPC_NODE,
                value=float(self.driver.read_parameter(param)),
                time=now,
                tags=tags,
            )
            written += 1
        return written
