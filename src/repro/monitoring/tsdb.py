"""In-memory time-series database.

A deliberately small InfluxDB stand-in: measurements hold *points*, each
with a timestamp, a float value and a tag set.  The scheduler's queries
only need range scans over recent windows, so points are kept per
measurement in append (time) order and old points can be vacuumed with a
retention policy.

Timestamps are simulation-time ``float`` seconds — the database never
consults the wall clock; callers pass ``now`` explicitly, which keeps the
discrete-event simulation deterministic.

Mutations can be observed: :meth:`TimeSeriesDatabase.subscribe` registers
a subscriber notified of every appended point (``on_write``), every
retention vacuum (``on_vacuum``) and every dropped measurement
(``on_drop``).  The windowed-aggregate cache
(:mod:`repro.monitoring.aggregate`) uses this to stay write-through
consistent without the database knowing anything about aggregation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Tuple

from ..errors import MonitoringError


@dataclass(frozen=True, slots=True)
class Point:
    """One sample: a value at a time with identifying tags.

    ``tags`` is a sorted tuple of ``(key, value)`` pairs — the
    normalised form :meth:`make` produces.  Collectors on the replay
    hot path build these tuples once per series and hand them to
    :meth:`TimeSeriesDatabase.write_tagged`, skipping the per-write
    dict-sort of :meth:`make`.
    """

    time: float
    value: float
    tags: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def make(
        cls,
        time: float,
        value: float,
        tags: Optional[Mapping[str, str]] = None,
    ) -> "Point":
        """Build a point from a tag mapping (normalised, hashable)."""
        items = tuple(sorted((tags or {}).items()))
        return cls(time=time, value=float(value), tags=items)

    def tag(self, key: str) -> Optional[str]:
        """Value of one tag, or ``None``."""
        for k, v in self.tags:
            if k == key:
                return v
        return None

    @property
    def tag_dict(self) -> Dict[str, str]:
        """Tags as a plain dict."""
        return dict(self.tags)


@dataclass(slots=True)
class _Series:
    """Points of one measurement, sorted by time."""

    times: List[float] = field(default_factory=list)
    points: List[Point] = field(default_factory=list)

    def insert(self, point: Point) -> None:
        # Writes arrive in time order in practice; appending matches
        # bisect_right exactly for ``time >= times[-1]`` (insertion
        # index == len) without the O(n) list shuffle.
        times = self.times
        if not times or point.time >= times[-1]:
            times.append(point.time)
            self.points.append(point)
            return
        idx = bisect.bisect_right(times, point.time)
        times.insert(idx, point.time)
        self.points.insert(idx, point)

    def scan(
        self, start: Optional[float], end: Optional[float]
    ) -> List[Point]:
        lo = 0 if start is None else bisect.bisect_left(self.times, start)
        hi = (
            len(self.times)
            if end is None
            else bisect.bisect_right(self.times, end)
        )
        return self.points[lo:hi]

    def vacuum_before(self, cutoff: float) -> int:
        idx = bisect.bisect_left(self.times, cutoff)
        removed = idx
        del self.times[:idx]
        del self.points[:idx]
        return removed


class DatabaseSubscriber(Protocol):
    """Observer of database mutations (see :meth:`subscribe`)."""

    def on_write(self, measurement: str, point: Point) -> None:
        """One point was appended to *measurement*."""
        ...  # pragma: no cover - protocol

    def on_vacuum(self, cutoff: float) -> None:
        """Retention dropped all points with ``time < cutoff``."""
        ...  # pragma: no cover - protocol

    def on_drop(self, measurement: str) -> None:
        """*measurement* was removed entirely."""
        ...  # pragma: no cover - protocol


class TimeSeriesDatabase:
    """Tagged time-series store with range scans and retention.

    Parameters
    ----------
    retention_seconds:
        When set, :meth:`vacuum` (called opportunistically on writes)
        drops points older than ``now - retention_seconds``.
    """

    __slots__ = (
        "retention_seconds", "_series", "_writes", "_subscribers",
        "scan_count", "aggregate_cache",
    )

    def __init__(self, retention_seconds: Optional[float] = None):
        if retention_seconds is not None and retention_seconds <= 0:
            raise MonitoringError(
                f"retention must be positive, got {retention_seconds}"
            )
        self.retention_seconds = retention_seconds
        self._series: Dict[str, _Series] = {}
        self._writes = 0
        self._subscribers: List[DatabaseSubscriber] = []
        #: Range scans served (reads of stored points); lets tests and
        #: benchmarks assert the aggregate cache's zero-scan property.
        self.scan_count = 0
        #: The attached :class:`~repro.monitoring.aggregate.
        #: WindowedAggregateCache`, if any — the InfluxQL executor's
        #: fast path looks here.
        self.aggregate_cache = None

    # -- observation ---------------------------------------------------------

    def subscribe(self, subscriber: DatabaseSubscriber) -> None:
        """Notify *subscriber* of every write, vacuum and drop."""
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: DatabaseSubscriber) -> bool:
        """Stop notifying *subscriber*; returns whether it was found.

        A subscriber exposing ``detach()`` (the aggregate cache) is
        detached as well, so holders of a removed cache fall back to
        full scans instead of silently serving frozen state.
        """
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)
            if self.aggregate_cache is subscriber:
                self.aggregate_cache = None
            detach = getattr(subscriber, "detach", None)
            if detach is not None:
                detach()
            return True
        return False

    # -- writes -------------------------------------------------------------

    def write(
        self,
        measurement: str,
        value: float,
        time: float,
        tags: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Append one sample to *measurement*."""
        if not measurement:
            raise MonitoringError("empty measurement name")
        self._append(
            measurement,
            Point(time=time, value=float(value),
                  tags=tuple(sorted((tags or {}).items()))),
        )

    def write_tagged(
        self,
        measurement: str,
        value: float,
        time: float,
        tags: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        """Append one sample with pre-normalised tags.

        *tags* must be a sorted tuple of ``(key, value)`` pairs — the
        form :meth:`Point.make` normalises to.  Collectors cache these
        tuples per series so the replay's per-write path allocates one
        point and nothing else; the stored point is bit-identical to
        what :meth:`write` would produce from the equivalent mapping.
        """
        if not measurement:
            raise MonitoringError("empty measurement name")
        # _append inlined: this is the per-sample collector path and the
        # extra frame showed up in profiles.
        point = Point(time=time, value=float(value), tags=tags)
        series = self._series.get(measurement)
        if series is None:
            series = self._series.setdefault(measurement, _Series())
        series.insert(point)
        self._writes += 1
        for subscriber in self._subscribers:
            subscriber.on_write(measurement, point)
        if self.retention_seconds is not None and self._writes % 256 == 0:
            self.vacuum(now=time)

    def _append(self, measurement: str, point: Point) -> None:
        series = self._series.get(measurement)
        if series is None:
            series = self._series.setdefault(measurement, _Series())
        series.insert(point)
        self._writes += 1
        for subscriber in self._subscribers:
            subscriber.on_write(measurement, point)
        if self.retention_seconds is not None and self._writes % 256 == 0:
            self.vacuum(now=point.time)

    def write_points(
        self, measurement: str, points: Iterable[Point]
    ) -> None:
        """Bulk-append pre-built points."""
        series = self._series.setdefault(measurement, _Series())
        for point in points:
            series.insert(point)
            self._writes += 1
            for subscriber in self._subscribers:
                subscriber.on_write(measurement, point)

    # -- reads --------------------------------------------------------------

    def measurements(self) -> List[str]:
        """Names of all measurements with at least one point."""
        return sorted(m for m, s in self._series.items() if s.points)

    def scan(
        self,
        measurement: str,
        start: Optional[float] = None,
        end: Optional[float] = None,
    ) -> List[Point]:
        """Points of *measurement* with ``start <= time <= end``.

        Unknown measurements scan as empty, mirroring InfluxDB.
        """
        self.scan_count += 1
        series = self._series.get(measurement)
        if series is None:
            return []
        return series.scan(start, end)

    def count(self, measurement: str) -> int:
        """Number of stored points in *measurement*."""
        series = self._series.get(measurement)
        return len(series.points) if series else 0

    def latest(
        self, measurement: str, tags: Optional[Mapping[str, str]] = None
    ) -> Optional[Point]:
        """Most recent point, optionally restricted to matching tags."""
        series = self._series.get(measurement)
        if series is None:
            return None
        wanted = dict(tags or {})
        for point in reversed(series.points):
            if all(point.tag(k) == v for k, v in wanted.items()):
                return point
        return None

    # -- maintenance ----------------------------------------------------------

    def vacuum(self, now: float) -> int:
        """Apply the retention policy; returns points removed."""
        if self.retention_seconds is None:
            return 0
        cutoff = now - self.retention_seconds
        removed = sum(
            series.vacuum_before(cutoff)
            for series in self._series.values()
        )
        for subscriber in self._subscribers:
            subscriber.on_vacuum(cutoff)
        return removed

    def drop_measurement(self, measurement: str) -> None:
        """Remove a measurement entirely."""
        self._series.pop(measurement, None)
        for subscriber in self._subscribers:
            subscriber.on_drop(measurement)

    def __len__(self) -> int:
        return sum(len(s.points) for s in self._series.values())
