"""Incremental sliding-window aggregates over the time-series database.

The paper's scheduler rebuilds its cluster view on every pass by running
Listing 1's sliding-window InfluxQL queries — a full scan over every
point in the window, per measurement, per pass.  That is O(passes ×
window-points) over a whole replay.  This module makes the hot query
shape incremental instead:

:class:`WindowedAggregateCache` subscribes to
:class:`~repro.monitoring.tsdb.TimeSeriesDatabase` writes and maintains,
for every ``(measurement, nodename, pod_name)`` series, a rolling
sliding-window MAX using the classic monotonic-deque algorithm:

* each write is absorbed in O(1) amortised time;
* a :meth:`snapshot` answers Listing 1's inner query — ``SELECT
  MAX(value) FROM m WHERE value <> 0 AND time >= now() - Ws GROUP BY
  pod_name, nodename`` — in O(live series), never touching the stored
  points;
* expiry is lazy (front-of-deque pops at snapshot time) and mirrors the
  database's retention machinery: :meth:`on_vacuum` records the vacuum
  cutoff and the next snapshot expires exactly the points the TSDB
  dropped, so cache and store never disagree.

Bit-for-bit equivalence with the full scan is preserved even for inputs
the incremental algorithm cannot handle: out-of-order writes mark the
measurement dirty (rebuilt from one scan on the next snapshot), and
queries whose ``now`` lies before already-absorbed data or already-expired
state return ``None`` from :meth:`snapshot`, telling the caller to fall
back to the ordinary full scan.  The simulation's monotone clock never
takes either path, so the replay hot loop stays incremental.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import MonitoringError
from .tsdb import Point, TimeSeriesDatabase

logger = logging.getLogger(__name__)

#: Series key: ``(nodename, pod_name)`` tag values (either may be None
#: when a point lacks the tag, mirroring the executor's GROUP BY).
SeriesKey = Tuple[Optional[str], Optional[str]]


@dataclass(frozen=True)
class SeriesAggregate:
    """One live series' window aggregate, as Listing 1 reports it.

    ``max_value`` is the maximum non-zero value in the window;
    ``latest_time`` is the timestamp of the newest contributing point
    (the ``time`` column the InfluxQL executor attaches to each group).
    """

    nodename: Optional[str]
    pod_name: Optional[str]
    max_value: float
    latest_time: float


class _SeriesState:
    """Deques of one ``(measurement, nodename, pod_name)`` series.

    ``times`` holds ``(time, seq)`` for every live non-zero point, in
    arrival order — its front is the series' discovery position in a
    full scan, its back the newest sample.  ``maxdeque`` holds the
    monotonic max structure: times ascending, values strictly
    decreasing, front = window maximum after expiry.
    """

    __slots__ = ("times", "maxdeque")

    def __init__(self) -> None:
        self.times: Deque[Tuple[float, int]] = deque()
        self.maxdeque: Deque[Tuple[float, float]] = deque()

    def expire(self, cutoff: float) -> None:
        """Drop points with ``time < cutoff`` from both deques."""
        times = self.times
        while times and times[0][0] < cutoff:
            times.popleft()
        maxdeque = self.maxdeque
        while maxdeque and maxdeque[0][0] < cutoff:
            maxdeque.popleft()


class _MeasurementState:
    """All series of one measurement plus the validity watermarks."""

    __slots__ = (
        "series", "max_time", "hwm", "vacuum_floor", "dirty", "stable_until"
    )

    def __init__(self, dirty: bool = False) -> None:
        self.series: Dict[SeriesKey, _SeriesState] = {}
        #: Newest non-zero point time absorbed; queries earlier than
        #: this would wrongly see "future" points, so they fall back.
        self.max_time = float("-inf")
        #: Highest snapshot ``now`` whose expiry mutated the deques;
        #: queries earlier than this may need already-expired points.
        self.hwm = float("-inf")
        #: Highest retention-vacuum cutoff seen; points below it are
        #: gone from the store, so snapshots must not serve them.
        self.vacuum_floor = float("-inf")
        self.dirty = dirty
        #: Earliest future instant at which window expiry alone could
        #: change this measurement's reported rows (a masked smaller
        #: value surfacing, or a series aging out entirely).  Computed
        #: by each snapshot; ``-inf`` means "unknown — don't trust it".
        self.stable_until = float("-inf")


class WindowedAggregateCache:
    """Write-through sliding-window MAX cache over a TSDB.

    Construction subscribes to *db* (and publishes itself as
    ``db.aggregate_cache`` so the InfluxQL executor's fast path can find
    it).  Measurements already holding points are marked dirty and
    rebuilt from one scan on first use.

    Parameters
    ----------
    db:
        The database to mirror.
    window_seconds:
        The sliding-window length; must match the ``now() - Ws`` bound
        of the queries the cache is meant to answer.
    """

    def __init__(self, db: TimeSeriesDatabase, window_seconds: float):
        if window_seconds <= 0:
            raise MonitoringError(
                f"window must be positive, got {window_seconds}"
            )
        self.db = db
        self.window_seconds = window_seconds
        self._measurements: Dict[str, _MeasurementState] = {}
        self._seq = 0
        self._detached = False
        # Stats: snapshots answered, fallbacks to full scan, rebuilds.
        self.hits = 0
        self.fallbacks = 0
        self.rebuilds = 0
        #: Bumped whenever absorbed writes could change the rows a
        #: future snapshot reports: a new series, a write raising a
        #: series' window max, anything that marks state dirty, a
        #: rebuild, a drop, or a vacuum cutting into an observed
        #: window.  Together with :meth:`stable_until` this lets the
        #: scheduler's skip-clean check prove "the measured view is
        #: identical to the previous pass" in O(1) — writes that merely
        #: refresh an unchanged maximum (steady-state probes) do not
        #: bump it.
        self.content_version = 0
        # One write-through cache per database: a displaced cache would
        # either absorb every write twice (if left subscribed) or serve
        # stale windows (if silently unsubscribed), so replace it
        # explicitly — it detaches and declines all future queries.
        existing = getattr(db, "aggregate_cache", None)
        if existing is not None:
            logger.warning(
                "replacing aggregate cache (window %ss) with a new one "
                "(window %ss); holders of the old cache fall back to "
                "full window scans",
                existing.window_seconds, window_seconds,
            )
            existing.detach()
        for measurement in db.measurements():
            self._measurements[measurement] = _MeasurementState(dirty=True)
        db.subscribe(self)
        db.aggregate_cache = self

    def detach(self) -> None:
        """Stop mirroring the database and stop answering queries.

        Idempotent.  Holders of a detached cache fall back to the full
        scan on every query (snapshots return ``None``), which stays
        correct — a detached cache never serves stale windows.
        """
        if self._detached:
            return
        self._detached = True
        self.content_version += 1
        self.db.unsubscribe(self)
        self._measurements.clear()

    # -- subscriber interface (driven by the TSDB) -----------------------

    def on_write(self, measurement: str, point: Point) -> None:
        """Absorb one appended point.  O(1) amortised."""
        state = self._measurements.get(measurement)
        if state is None:
            state = _MeasurementState()
            self._measurements[measurement] = state
        if point.value == 0.0:
            # Listing 1 filters ``value <> 0``; zero samples can never
            # contribute to a window max, so they are not retained.
            return
        if point.time > state.max_time:
            state.max_time = point.time
        if point.time < state.vacuum_floor:
            # The store keeps this point (vacuums only drop what was
            # present at vacuum time) but the lazy floor would expire
            # it; rebuild from the store rather than serve a mismatch.
            state.dirty = True
            self.content_version += 1
            return
        tags = point.tags
        if (
            len(tags) == 2
            and tags[0][0] == "nodename"
            and tags[1][0] == "pod_name"
        ):
            # The collectors' exact tag shape, pre-sorted: skip the
            # two linear tag() scans on the per-write path.
            key = (tags[0][1], tags[1][1])
        else:
            key = (point.tag("nodename"), point.tag("pod_name"))
        series = state.series.get(key)
        if series is None:
            series = _SeriesState()
            state.series[key] = series
            self.content_version += 1
        if series.times and point.time < series.times[-1][0]:
            # Out-of-order arrival: the monotonic deque cannot absorb
            # it incrementally; rebuild lazily from the store.
            state.dirty = True
            self.content_version += 1
            return
        if series.maxdeque and point.value > series.maxdeque[0][1]:
            # The window maximum rises: reported rows change.  A write
            # at or below the current max only refreshes the deque.
            self.content_version += 1
        self._push(series, point)

    def on_vacuum(self, cutoff: float) -> None:
        """Mirror a retention vacuum — lazily.

        Auto-vacuums fire every 256 writes; walking every series each
        time would swamp the O(1)-per-write absorption.  Instead the
        cutoff is recorded and folded into the next snapshot's expiry,
        which already walks exactly the live series once.
        """
        for state in self._measurements.values():
            if cutoff > state.vacuum_floor:
                state.vacuum_floor = cutoff
                if cutoff > state.hwm - self.window_seconds:
                    # The cut reaches into windows at or after the last
                    # observed snapshot: reported rows may change.
                    self.content_version += 1

    def on_drop(self, measurement: str) -> None:
        """Mirror a dropped measurement."""
        if self._measurements.pop(measurement, None) is not None:
            self.content_version += 1

    # -- queries ---------------------------------------------------------

    def _live_series(
        self, measurement: str, now: float, ordered: bool
    ) -> Optional[List[Tuple[SeriesKey, _SeriesState]]]:
        """Expire and return the series alive in ``[now - window, now]``.

        ``None`` means the cache cannot guarantee equivalence with a
        full scan — *now* earlier than absorbed data or than a previous
        snapshot's expiry — and the caller must fall back.  With
        ``ordered`` the result follows full-scan group-discovery order
        (by each series' oldest in-window point).
        """
        if self._detached:
            self.fallbacks += 1
            return None
        state = self._measurements.get(measurement)
        if state is None:
            if self.db.count(measurement) == 0:
                self.hits += 1
                return []
            # Data exists the cache never saw (defensive; construction
            # marks pre-existing measurements dirty).
            self.fallbacks += 1
            return None
        if state.dirty:
            self._rebuild(measurement, state)
        if now < state.max_time or now < state.hwm:
            state.stable_until = float("-inf")
            self.fallbacks += 1
            return None
        cutoff = now - self.window_seconds
        if state.vacuum_floor > cutoff:
            # Retention cut inside the window: the store no longer has
            # those points, so the cache must not serve them either.
            cutoff = state.vacuum_floor
        state.hwm = now
        live: List[Tuple[SeriesKey, _SeriesState]] = []
        dead: List[SeriesKey] = []
        # Reported rows stay byte-identical until the earliest window
        # maximum ages out: its expiry either surfaces a smaller masked
        # value or (single-entry deque) removes the series entirely.
        stable_until = float("inf")
        for key, series in state.series.items():
            series.expire(cutoff)
            if not series.times:
                dead.append(key)
                continue
            live.append((key, series))
            head_expiry = series.maxdeque[0][0] + self.window_seconds
            if head_expiry < stable_until:
                stable_until = head_expiry
        state.stable_until = stable_until
        for key in dead:
            del state.series[key]
        if ordered:
            live.sort(key=lambda entry: entry[1].times[0])
        self.hits += 1
        return live

    def snapshot(
        self, measurement: str, now: float
    ) -> Optional[List[SeriesAggregate]]:
        """Window aggregates of *measurement* at *now*, or ``None``.

        Returns one :class:`SeriesAggregate` per series with at least
        one non-zero point in ``[now - window, now]``, ordered exactly
        as a full InfluxQL scan discovers the groups.  ``None`` tells
        the caller to run the full scan instead (see
        :meth:`_live_series`).
        """
        live = self._live_series(measurement, now, ordered=True)
        if live is None:
            return None
        return [
            SeriesAggregate(
                nodename=key[0],
                pod_name=key[1],
                max_value=series.maxdeque[0][1],
                latest_time=series.times[-1][0],
            )
            for key, series in live
        ]

    def window_maxima(
        self, measurement: str, now: float
    ) -> Optional[List[Tuple[Optional[str], Optional[str], float]]]:
        """Lean ``(nodename, pod_name, max_value)`` rows at *now*.

        The scheduler's per-pass hot path: same liveness and values as
        :meth:`snapshot`, but plain tuples and no ordering guarantee —
        callers that reduce into a map (one entry per series, keys are
        unique) don't pay for discovery-order sorting or dataclasses.
        ``None`` means fall back to the full scan.
        """
        live = self._live_series(measurement, now, ordered=False)
        if live is None:
            return None
        return [
            (key[0], key[1], series.maxdeque[0][1]) for key, series in live
        ]

    def live_series(self, measurement: str) -> int:
        """Number of series currently tracked for *measurement*."""
        state = self._measurements.get(measurement)
        return len(state.series) if state else 0

    def revalidate(self, measurement: str, now: float) -> None:
        """Advance *measurement*'s stability horizon to *now* cheaply.

        The horizon computed by a snapshot goes stale as steady-state
        writes refresh unchanged maxima (they extend real stability but
        bump nothing).  This walk applies window expiry exactly as a
        snapshot would — O(live series), no row building — and either
        extends :attr:`_MeasurementState.stable_until` or, when expiry
        really changed a reported row (a masked smaller value surfaced,
        a series died), bumps :attr:`content_version` so fingerprint
        comparisons fail as they must.  No-op whenever the cache could
        not serve *now* incrementally.
        """
        if self._detached:
            return
        state = self._measurements.get(measurement)
        if state is None or state.dirty:
            return
        if now < state.max_time or now < state.hwm:
            return
        cutoff = now - self.window_seconds
        if state.vacuum_floor > cutoff:
            cutoff = state.vacuum_floor
        state.hwm = now
        stable = float("inf")
        changed = False
        dead: List[SeriesKey] = []
        for key, series in state.series.items():
            front = series.maxdeque[0][1]
            series.expire(cutoff)
            if not series.times:
                dead.append(key)
                changed = True
                continue
            if series.maxdeque[0][1] != front:
                changed = True
            head_expiry = series.maxdeque[0][0] + self.window_seconds
            if head_expiry < stable:
                stable = head_expiry
        for key in dead:
            del state.series[key]
        state.stable_until = stable
        if changed:
            self.content_version += 1

    def stable_until(self, measurement: str) -> float:
        """Until when *measurement*'s last-reported rows cannot change.

        Valid only between the last successful snapshot and the next
        write (writes that could alter rows bump
        :attr:`content_version`, which callers must check alongside).
        A measurement the cache has never served reports ``-inf``
        (unknown); one with no absorbed points reports ``+inf`` (no
        rows, and any appearing row bumps the version).
        """
        if self._detached:
            return float("-inf")
        state = self._measurements.get(measurement)
        if state is None:
            return float("inf")
        if state.dirty:
            return float("-inf")
        return state.stable_until

    # -- internals -------------------------------------------------------

    def _push(self, series: _SeriesState, point: Point) -> None:
        seq = self._seq
        self._seq = seq + 1
        series.times.append((point.time, seq))
        maxdeque = series.maxdeque
        while maxdeque and maxdeque[-1][1] <= point.value:
            maxdeque.pop()
        maxdeque.append((point.time, point.value))

    def _rebuild(self, measurement: str, state: _MeasurementState) -> None:
        """Reconstruct a measurement's deques from one full scan.

        Replays the stored points through :meth:`on_write` so rebuilt
        state follows exactly the incremental absorption rules; the
        scan is time-sorted, so the out-of-order branch never fires.
        """
        state.series = {}
        state.max_time = float("-inf")
        state.hwm = float("-inf")
        # The store is ground truth: whatever a past vacuum dropped is
        # already absent from the scan, so no floor needs reapplying.
        state.vacuum_floor = float("-inf")
        state.dirty = False
        self.rebuilds += 1
        for point in self.db.scan(measurement):
            self.on_write(measurement, point)
