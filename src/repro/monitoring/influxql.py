"""An InfluxQL subset: lexer, parser and executor.

The paper's scheduler drives InfluxDB with sliding-window queries; its
Listing 1 is::

    SELECT SUM(epc) AS epc FROM
    (SELECT MAX(value) AS epc FROM "sgx/epc"
    WHERE value <> 0 AND time >= now() - 25s
    GROUP BY pod_name, nodename
    )
    GROUP BY nodename

This module implements exactly the language features such queries need —
aggregate projections with aliases, measurement and sub-query sources,
conjunctive ``WHERE`` clauses with ``now() - <duration>`` arithmetic, and
``GROUP BY`` over tags — as a classic pipeline:

* :func:`tokenize` produces a token stream;
* :func:`parse_query` builds a :class:`SelectQuery` AST;
* :func:`execute_query` evaluates the AST against a
  :class:`~repro.monitoring.tsdb.TimeSeriesDatabase` at an explicit
  ``now`` timestamp (the simulator's clock, never the wall clock).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from ..errors import QueryError
from .tsdb import TimeSeriesDatabase


class InfluxQLError(QueryError):
    """Raised on lexing, parsing or execution failures."""


# --------------------------------------------------------------------------
# Lexer
# --------------------------------------------------------------------------

_KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "AS",
    "AND",
    "NOW",
    "ORDER",
    "LIMIT",
    "ASC",
    "DESC",
    "SHOW",
    "MEASUREMENTS",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<dquote>"[^"]*")
  | (?P<squote>'[^']*')
  | (?P<op><>|!=|<=|>=|=|<|>)
  | (?P<punct>[(),*+-])
  | (?P<word>[A-Za-z_][A-Za-z0-9_./-]*)
    """,
    re.VERBOSE,
)

#: Duration suffixes accepted after a number, in seconds.
_DURATION_UNITS = {
    "ns": 1e-9,
    "us": 1e-6,
    "ms": 1e-3,
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
    "w": 7 * 86400.0,
}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # KEYWORD | IDENT | STRING | NUMBER | OP | PUNCT
    text: str


def tokenize(query: str) -> List[Token]:
    """Lex *query* into tokens, raising on unrecognised input."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(query):
        match = _TOKEN_RE.match(query, pos)
        if match is None:
            raise InfluxQLError(
                f"unexpected character {query[pos]!r} at offset {pos}"
            )
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        if match.lastgroup == "number":
            tokens.append(Token("NUMBER", text))
        elif match.lastgroup == "dquote":
            tokens.append(Token("IDENT", text[1:-1]))
        elif match.lastgroup == "squote":
            tokens.append(Token("STRING", text[1:-1]))
        elif match.lastgroup == "op":
            tokens.append(Token("OP", text))
        elif match.lastgroup == "punct":
            tokens.append(Token("PUNCT", text))
        else:  # word
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("KEYWORD", upper))
            else:
                tokens.append(Token("IDENT", text))
    return tokens


# --------------------------------------------------------------------------
# AST
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One projection: ``AGG(column) AS alias`` or a bare column."""

    column: str
    aggregate: Optional[str] = None  # MAX | MIN | SUM | MEAN | COUNT | ...
    alias: Optional[str] = None

    @property
    def output_name(self) -> str:
        """Column name of this item in the result rows."""
        if self.alias:
            return self.alias
        if self.aggregate:
            return self.aggregate.lower()
        return self.column


@dataclass(frozen=True)
class TimeExpr:
    """``now()`` plus a constant offset in seconds."""

    offset_seconds: float = 0.0

    def resolve(self, now: float) -> float:
        """The concrete timestamp at evaluation time."""
        return now + self.offset_seconds


Literal = Union[float, str, TimeExpr]


@dataclass(frozen=True)
class Condition:
    """A comparison ``column <op> literal``."""

    column: str
    op: str
    literal: Literal


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SELECT statement."""

    items: Sequence[SelectItem]
    source: Union[str, "SelectQuery"]
    conditions: Sequence[Condition] = ()
    group_by: Sequence[str] = ()
    #: ``ORDER BY time`` direction: "asc", "desc" or None (unordered).
    order_time: Optional[str] = None
    #: ``LIMIT n``; None means unlimited.
    limit: Optional[int] = None


@dataclass(frozen=True)
class ShowMeasurements:
    """A parsed SHOW MEASUREMENTS statement."""


# --------------------------------------------------------------------------
# Parser (recursive descent)
# --------------------------------------------------------------------------

_AGGREGATES = {"MAX", "MIN", "SUM", "MEAN", "COUNT", "FIRST", "LAST"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise InfluxQLError("unexpected end of query")
        self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise InfluxQLError(
                f"expected {wanted}, got {token.text!r}"
            )
        return token

    def _accept(
        self, kind: str, text: Optional[str] = None
    ) -> Optional[Token]:
        token = self._peek()
        if (
            token is not None
            and token.kind == kind
            and (text is None or token.text == text)
        ):
            self._pos += 1
            return token
        return None

    # -- grammar ---------------------------------------------------------

    def parse(self) -> Union[SelectQuery, ShowMeasurements]:
        if self._accept("KEYWORD", "SHOW"):
            self._expect("KEYWORD", "MEASUREMENTS")
            statement: Union[SelectQuery, ShowMeasurements] = (
                ShowMeasurements()
            )
        else:
            statement = self._select()
        if self._peek() is not None:
            raise InfluxQLError(
                f"trailing input starting at {self._peek().text!r}"
            )
        return statement

    def _select(self) -> SelectQuery:
        self._expect("KEYWORD", "SELECT")
        items = [self._select_item()]
        while self._accept("PUNCT", ","):
            items.append(self._select_item())
        self._expect("KEYWORD", "FROM")
        source = self._source()
        conditions: List[Condition] = []
        if self._accept("KEYWORD", "WHERE"):
            conditions.append(self._condition())
            while self._accept("KEYWORD", "AND"):
                conditions.append(self._condition())
        group_by: List[str] = []
        if self._accept("KEYWORD", "GROUP"):
            self._expect("KEYWORD", "BY")
            group_by.append(self._expect("IDENT").text)
            while self._accept("PUNCT", ","):
                group_by.append(self._expect("IDENT").text)
        order_time = None
        if self._accept("KEYWORD", "ORDER"):
            self._expect("KEYWORD", "BY")
            column = self._expect("IDENT").text
            if column != "time":
                raise InfluxQLError(
                    f"can only ORDER BY time, got {column!r}"
                )
            order_time = "asc"
            if self._accept("KEYWORD", "DESC"):
                order_time = "desc"
            else:
                self._accept("KEYWORD", "ASC")
        limit = None
        if self._accept("KEYWORD", "LIMIT"):
            token = self._expect("NUMBER")
            limit = int(float(token.text))
            if limit < 0:
                raise InfluxQLError(f"negative LIMIT: {limit}")
        return SelectQuery(
            items=tuple(items),
            source=source,
            conditions=tuple(conditions),
            group_by=tuple(group_by),
            order_time=order_time,
            limit=limit,
        )

    def _select_item(self) -> SelectItem:
        if self._accept("PUNCT", "*"):
            return SelectItem(column="*")
        name = self._expect("IDENT").text
        aggregate = None
        column = name
        if name.upper() in _AGGREGATES and self._accept("PUNCT", "("):
            aggregate = name.upper()
            if self._accept("PUNCT", "*"):
                column = "*"
            else:
                column = self._expect("IDENT").text
            self._expect("PUNCT", ")")
        alias = None
        if self._accept("KEYWORD", "AS"):
            alias = self._expect("IDENT").text
        return SelectItem(column=column, aggregate=aggregate, alias=alias)

    def _source(self) -> Union[str, SelectQuery]:
        if self._accept("PUNCT", "("):
            inner = self._select()
            self._expect("PUNCT", ")")
            return inner
        token = self._next()
        if token.kind not in ("IDENT", "STRING"):
            raise InfluxQLError(f"bad FROM source {token.text!r}")
        return token.text

    def _condition(self) -> Condition:
        column = self._expect("IDENT").text
        op_token = self._next()
        if op_token.kind != "OP":
            raise InfluxQLError(f"expected comparison, got {op_token.text!r}")
        literal = self._literal()
        return Condition(column=column, op=op_token.text, literal=literal)

    def _literal(self) -> Literal:
        if self._accept("KEYWORD", "NOW"):
            self._expect("PUNCT", "(")
            self._expect("PUNCT", ")")
            offset = 0.0
            sign_token = self._peek()
            if sign_token is not None and sign_token.kind == "PUNCT" and (
                sign_token.text in "+-"
            ):
                self._next()
                magnitude = self._duration()
                offset = magnitude if sign_token.text == "+" else -magnitude
            return TimeExpr(offset_seconds=offset)
        token = self._next()
        if token.kind == "NUMBER":
            # A bare number may be a duration if a unit ident follows with
            # no separator; the lexer splits "25s" into NUMBER + IDENT only
            # when the unit starts a word, so we re-join here.
            unit = self._peek()
            if (
                unit is not None
                and unit.kind == "IDENT"
                and unit.text in _DURATION_UNITS
            ):
                self._next()
                return float(token.text) * _DURATION_UNITS[unit.text]
            return float(token.text)
        if token.kind == "STRING":
            return token.text
        raise InfluxQLError(f"bad literal {token.text!r}")

    def _duration(self) -> float:
        number = self._expect("NUMBER").text
        unit_token = self._peek()
        if (
            unit_token is not None
            and unit_token.kind == "IDENT"
            and unit_token.text in _DURATION_UNITS
        ):
            self._next()
            return float(number) * _DURATION_UNITS[unit_token.text]
        return float(number)


def parse_query(query: str) -> Union[SelectQuery, ShowMeasurements]:
    """Parse an InfluxQL statement: SELECT or SHOW MEASUREMENTS."""
    return _Parser(tokenize(query)).parse()


# --------------------------------------------------------------------------
# Executor
# --------------------------------------------------------------------------

Row = Dict[str, Any]

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _aggregate(name: str, values: List[float]) -> Optional[float]:
    if name == "COUNT":
        return float(len(values))
    if not values:
        return None
    if name == "MAX":
        return max(values)
    if name == "MIN":
        return min(values)
    if name == "SUM":
        return sum(values)
    if name == "MEAN":
        return sum(values) / len(values)
    if name == "FIRST":
        return values[0]
    if name == "LAST":
        return values[-1]
    raise InfluxQLError(f"unknown aggregate {name}")


def _source_rows(
    source: Union[str, SelectQuery],
    db: TimeSeriesDatabase,
    now: float,
    time_hint: Optional[float],
    allow_fast_path: bool,
) -> List[Row]:
    if isinstance(source, SelectQuery):
        return _execute(source, db, now, allow_fast_path)
    start = time_hint  # pruned scan when WHERE gives a lower bound
    rows: List[Row] = []
    for point in db.scan(source, start=start, end=now):
        row: Row = {"time": point.time, "value": point.value}
        row.update(point.tag_dict)
        rows.append(row)
    return rows


def _time_lower_bound(
    conditions: Sequence[Condition], now: float
) -> Optional[float]:
    """Extract a ``time >=`` bound so measurement scans can be pruned."""
    bound: Optional[float] = None
    for cond in conditions:
        if cond.column == "time" and cond.op in (">", ">="):
            literal = cond.literal
            value = (
                literal.resolve(now)
                if isinstance(literal, TimeExpr)
                else float(literal)  # type: ignore[arg-type]
            )
            bound = value if bound is None else max(bound, value)
    return bound


def _matches(row: Row, conditions: Sequence[Condition], now: float) -> bool:
    for cond in conditions:
        actual = row.get(cond.column)
        if actual is None:
            return False
        expected: Any = cond.literal
        if isinstance(expected, TimeExpr):
            expected = expected.resolve(now)
        op = _OPS.get(cond.op)
        if op is None:
            raise InfluxQLError(f"unknown operator {cond.op!r}")
        try:
            if not op(actual, expected):
                return False
        except TypeError as exc:
            raise InfluxQLError(
                f"cannot compare {actual!r} {cond.op} {expected!r}"
            ) from exc
    return True


def _finalize(query: SelectQuery, rows: List[Row]) -> List[Row]:
    """Apply ORDER BY time and LIMIT to the result rows."""
    if query.order_time is not None:
        rows = sorted(
            rows,
            key=lambda r: r.get("time", 0.0),
            reverse=query.order_time == "desc",
        )
    if query.limit is not None:
        rows = rows[: query.limit]
    return rows


def _cache_fast_path(
    query: SelectQuery, db: TimeSeriesDatabase, now: float
) -> Optional[List[Row]]:
    """Answer Listing 1's inner query shape from the aggregate cache.

    The recognised shape is exactly the per-pod sliding-window maximum
    the paper's scheduler issues every pass::

        SELECT MAX(value) [AS alias] FROM <measurement>
        WHERE value <> 0 AND time >= now() - <window>
        GROUP BY pod_name, nodename

    (conditions and group tags in either order), where ``<window>``
    equals the attached cache's ``window_seconds``.  Returns ``None``
    when the query does not match, no cache is attached, or the cache
    declines (non-monotone ``now``) — the caller then runs the full
    scan.  A returned row list is bit-for-bit what the full scan
    produces, including group-discovery order and the ``time`` column.
    """
    cache = getattr(db, "aggregate_cache", None)
    if cache is None or not isinstance(query.source, str):
        return None
    if len(query.items) != 1:
        return None
    item = query.items[0]
    if item.aggregate != "MAX" or item.column != "value":
        return None
    if tuple(query.group_by) not in (
        ("pod_name", "nodename"),
        ("nodename", "pod_name"),
    ):
        return None
    if len(query.conditions) != 2:
        return None
    nonzero = False
    window: Optional[float] = None
    for cond in query.conditions:
        if (
            cond.column == "value"
            and cond.op in ("<>", "!=")
            and isinstance(cond.literal, float)
            and cond.literal == 0.0
        ):
            nonzero = True
        elif (
            cond.column == "time"
            and cond.op == ">="
            and isinstance(cond.literal, TimeExpr)
        ):
            window = -cond.literal.offset_seconds
        else:
            return None
    if not nonzero or window is None or window != cache.window_seconds:
        return None
    aggregates = cache.snapshot(query.source, now)
    if aggregates is None:
        return None
    name = item.output_name
    rows: List[Row] = [
        {
            "pod_name": agg.pod_name,
            "nodename": agg.nodename,
            "time": agg.latest_time,
            name: agg.max_value,
        }
        for agg in aggregates
    ]
    return _finalize(query, rows)


def _execute(
    query: SelectQuery,
    db: TimeSeriesDatabase,
    now: float,
    allow_fast_path: bool = True,
) -> List[Row]:
    if allow_fast_path:
        fast = _cache_fast_path(query, db, now)
        if fast is not None:
            return fast
    time_hint = _time_lower_bound(query.conditions, now)
    rows = _source_rows(query.source, db, now, time_hint, allow_fast_path)
    rows = [r for r in rows if _matches(r, query.conditions, now)]

    has_aggregates = any(item.aggregate for item in query.items)
    if not has_aggregates:
        # Plain projection: keep requested columns (or all for '*').
        output: List[Row] = []
        for row in rows:
            if any(item.column == "*" for item in query.items):
                output.append(dict(row))
                continue
            projected: Row = {}
            if "time" in row:
                projected["time"] = row["time"]
            for item in query.items:
                if item.column in row:
                    projected[item.output_name] = row[item.column]
            for key in query.group_by:
                if key in row:
                    projected[key] = row[key]
            output.append(projected)
        return _finalize(query, output)

    # Aggregation path: group rows, then fold each select item.
    groups: Dict[tuple, List[Row]] = {}
    for row in rows:
        key = tuple(row.get(tag) for tag in query.group_by)
        groups.setdefault(key, []).append(row)

    output = []
    for key, members in groups.items():
        out: Row = dict(zip(query.group_by, key, strict=True))
        times = [r["time"] for r in members if "time" in r]
        if times:
            out["time"] = max(times)
        for item in query.items:
            if item.aggregate is None:
                raise InfluxQLError(
                    "mixing aggregated and bare fields is unsupported "
                    f"(field {item.column!r})"
                )
            if item.column == "*":
                values = [
                    float(v)
                    for r in members
                    for k, v in r.items()
                    if k == "value" and isinstance(v, (int, float))
                ]
            else:
                values = [
                    float(r[item.column])
                    for r in members
                    if isinstance(r.get(item.column), (int, float))
                ]
            result = _aggregate(item.aggregate, values)
            if result is not None:
                out[item.output_name] = result
        output.append(out)
    return _finalize(query, output)


def execute_query(
    query: Union[str, SelectQuery, ShowMeasurements],
    db: TimeSeriesDatabase,
    now: float,
    allow_fast_path: bool = True,
) -> List[Row]:
    """Run *query* against *db* with the clock fixed at *now*.

    Returns a list of result rows (dicts mixing group tags and aggregated
    fields), in group-discovery order unless ``ORDER BY time`` applies.
    ``SHOW MEASUREMENTS`` returns one ``{"name": ...}`` row per
    measurement.

    When *db* has a :class:`~repro.monitoring.aggregate.
    WindowedAggregateCache` attached and the query matches Listing 1's
    inner shape (``SELECT MAX(value) ... WHERE value <> 0 AND time >=
    now() - W GROUP BY pod_name, nodename`` with ``W`` equal to the
    cache window), the result is answered from the cache in O(live
    series) instead of scanning the window's points.  Any other query —
    or a ``now`` the cache cannot serve — takes the full scan; both
    paths return identical rows (see :func:`_cache_fast_path`).
    ``allow_fast_path=False`` forces the full scan regardless, for
    callers that must measure or validate the uncached path.
    """
    if isinstance(query, str):
        query = parse_query(query)
    if isinstance(query, ShowMeasurements):
        return [{"name": name} for name in db.measurements()]
    return _execute(query, db, now, allow_fast_path)
