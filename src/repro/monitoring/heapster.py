"""Heapster-like collector for standard-memory metrics.

The paper configures Heapster to gather per-pod memory usage on every
node and push it into InfluxDB (Section V-C).  Our collector does the
same against the in-memory TSDB: it polls registered *sources* (the
Kubelets, in practice) and writes one point per pod per collection pass,
tagged ``pod_name`` and ``nodename`` exactly as the paper's Listing 1
expects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Protocol, Tuple

from .tsdb import TimeSeriesDatabase

#: Measurement name for standard memory, Heapster-style.
MEASUREMENT_MEMORY = "memory/usage"


@dataclass(frozen=True, slots=True)
class PodUsage:
    """One pod's measured usage of a resource on one node."""

    pod_name: str
    node_name: str
    value: float


class PodUsageSource(Protocol):
    """Anything able to report per-pod usage (Kubelets implement this)."""

    def pod_memory_usage(self) -> List[PodUsage]:
        """Measured standard-memory bytes per pod on this source's node."""
        ...  # pragma: no cover - protocol


class Heapster:
    """Polls Kubelet-like sources and stores per-pod memory points."""

    __slots__ = ("db", "_sources", "_tag_cache")

    def __init__(self, db: TimeSeriesDatabase):
        self.db = db
        self._sources: List[PodUsageSource] = []
        # Sorted tag tuples keyed by (pod, node): each series' tags are
        # built once instead of dict-sorted on every collection pass.
        self._tag_cache: Dict[
            Tuple[str, str], Tuple[Tuple[str, str], ...]
        ] = {}

    def register(self, source: PodUsageSource) -> None:
        """Add a node-level usage source."""
        self._sources.append(source)

    def register_all(self, sources: Iterable[PodUsageSource]) -> None:
        """Add several sources at once."""
        for source in sources:
            self.register(source)

    def unregister(self, source: PodUsageSource) -> bool:
        """Stop polling a source (node removed); returns whether found."""
        if source in self._sources:
            self._sources.remove(source)
            return True
        return False

    @property
    def source_count(self) -> int:
        """Number of registered sources."""
        return len(self._sources)

    def collect(self, now: float) -> int:
        """Poll every source once; returns the number of points written."""
        written = 0
        tag_cache = self._tag_cache
        write_tagged = self.db.write_tagged
        for source in self._sources:
            for usage in source.pod_memory_usage():
                key = (usage.pod_name, usage.node_name)
                tags = tag_cache.get(key)
                if tags is None:
                    # Already in sorted order: "nodename" < "pod_name".
                    tags = tag_cache[key] = (
                        ("nodename", usage.node_name),
                        ("pod_name", usage.pod_name),
                    )
                write_tagged(
                    MEASUREMENT_MEMORY, value=usage.value, time=now,
                    tags=tags,
                )
                written += 1
        return written
