"""Enclave Page Cache (EPC) accounting.

The EPC is the scarce resource the whole paper revolves around: a subset
of Processor Reserved Memory, split into 4 KiB pages, shared by every
enclave on the machine.  Current hardware reserves 128 MiB of which only
93.5 MiB (23 936 pages) are usable by applications; the rest holds SGX
metadata (Section II of the paper).

Two allocation regimes exist:

* **strict** — the paper's system *deliberately prevents over-commitment*
  (Section V-A) so that performance stays predictable; allocations beyond
  the free page count raise :class:`~repro.errors.EpcExhaustedError`.
* **paging** — stock SGX allows over-commitment by paging EPC pages out to
  encrypted system memory, at a cost of up to 1000x.  We model it so the
  no-enforcement experiments (Fig. 11) and the ablation benches can
  quantify what strictness buys.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..constants import EPC_TOTAL_BYTES, EPC_USABLE_BYTES
from ..errors import EpcExhaustedError, SgxError
from ..units import pages as bytes_to_pages
from ..units import pages_to_mib


@dataclass(frozen=True, slots=True)
class EpcAllocation:
    """A live reservation of EPC pages owned by a single enclave."""

    allocation_id: int
    owner: str
    pages: int
    #: Pages currently resident in the EPC; the remainder is paged out.
    resident_pages: int

    @property
    def paged_out_pages(self) -> int:
        """Pages evicted to (encrypted) system memory."""
        return self.pages - self.resident_pages

    @property
    def mib(self) -> float:
        """Size of the allocation in MiB."""
        return pages_to_mib(self.pages)


class EnclavePageCache:
    """Page-granular model of one machine's EPC.

    Parameters
    ----------
    total_bytes:
        Size of the Processor Reserved Memory.  Defaults to the 128 MiB of
        current hardware; Fig. 7 sweeps this up to 256 MiB.
    usable_fraction:
        Share of the PRM usable by applications.  Defaults to the
        93.5/128 ratio of SGX 1 hardware.
    allow_overcommit:
        When ``False`` (the paper's choice), allocations that do not fit
        raise :class:`EpcExhaustedError`.  When ``True``, excess pages are
        accounted as paged-out, and :meth:`overcommit_ratio` feeds the
        paging slowdown model.
    """

    def __init__(
        self,
        total_bytes: int = EPC_TOTAL_BYTES,
        usable_fraction: Optional[float] = None,
        allow_overcommit: bool = False,
    ):
        if total_bytes <= 0:
            raise SgxError(f"EPC size must be positive, got {total_bytes}")
        if usable_fraction is None:
            usable_fraction = EPC_USABLE_BYTES / EPC_TOTAL_BYTES
        if not 0.0 < usable_fraction <= 1.0:
            raise SgxError(
                f"usable fraction must be in (0, 1], got {usable_fraction}"
            )
        self.total_bytes = total_bytes
        self.usable_bytes = int(total_bytes * usable_fraction)
        self.total_pages = bytes_to_pages(self.usable_bytes)
        self.allow_overcommit = allow_overcommit
        self._allocations: Dict[int, EpcAllocation] = {}
        self._ids = itertools.count(1)
        # Running page total, adjusted at every allocation mutation:
        # the paging-slowdown model queries allocated_pages per running
        # job per occupancy change, far too often to re-sum.
        self._allocated_pages = 0

    # -- capacity queries ---------------------------------------------------

    @property
    def allocated_pages(self) -> int:
        """Total pages owned by live allocations (resident or paged out)."""
        return self._allocated_pages

    @property
    def resident_pages(self) -> int:
        """Pages currently resident in the EPC."""
        return sum(a.resident_pages for a in self._allocations.values())

    @property
    def free_pages(self) -> int:
        """Pages not owned by any allocation (never negative)."""
        return max(0, self.total_pages - self.allocated_pages)

    @property
    def overcommitted(self) -> bool:
        """Whether live allocations exceed the usable EPC."""
        return self.allocated_pages > self.total_pages

    def overcommit_ratio(self) -> float:
        """Ratio of allocated to usable pages (1.0 means exactly full)."""
        if self.total_pages == 0:
            return float("inf") if self.allocated_pages else 1.0
        return self.allocated_pages / self.total_pages

    def usage_by_owner(self) -> Dict[str, int]:
        """Pages owned per owner label, summed across allocations."""
        usage: Dict[str, int] = {}
        for alloc in self._allocations.values():
            usage[alloc.owner] = usage.get(alloc.owner, 0) + alloc.pages
        return usage

    def owner_pages(self, owner: str) -> int:
        """Pages owned by *owner* (0 if the owner has no allocation)."""
        return self.usage_by_owner().get(owner, 0)

    # -- allocation lifecycle -----------------------------------------------

    def allocate(self, owner: str, n_pages: int) -> EpcAllocation:
        """Reserve *n_pages* for *owner*.

        In strict mode the whole request must fit in free pages.  In
        overcommit mode the request always succeeds; pages that do not fit
        are recorded as paged out and later allocations steal residency
        from nobody (residency is recomputed proportionally on demand via
        :meth:`rebalance_residency`).
        """
        if n_pages <= 0:
            raise SgxError(f"allocation must be positive, got {n_pages}")
        free = self.total_pages - self.allocated_pages
        if n_pages > free and not self.allow_overcommit:
            raise EpcExhaustedError(n_pages, max(0, free))
        resident = min(n_pages, max(0, free))
        alloc = EpcAllocation(
            allocation_id=next(self._ids),
            owner=owner,
            pages=n_pages,
            resident_pages=resident,
        )
        self._allocations[alloc.allocation_id] = alloc
        self._allocated_pages += n_pages
        return alloc

    def grow_allocation(
        self, allocation: EpcAllocation, extra_pages: int
    ) -> EpcAllocation:
        """Extend a live allocation by *extra_pages* (SGX 2 EAUG path).

        Strict mode requires the extra pages to be free; overcommit mode
        marks the overflow as paged out.  Returns the replacement record
        (the old one is retired).
        """
        if extra_pages <= 0:
            raise SgxError(f"growth must be positive, got {extra_pages}")
        if allocation.allocation_id not in self._allocations:
            raise SgxError(
                f"allocation {allocation.allocation_id} is not live"
            )
        current = self._allocations[allocation.allocation_id]
        free = self.total_pages - self.allocated_pages
        if extra_pages > free and not self.allow_overcommit:
            raise EpcExhaustedError(extra_pages, max(0, free))
        extra_resident = min(extra_pages, max(0, free))
        grown = EpcAllocation(
            allocation_id=current.allocation_id,
            owner=current.owner,
            pages=current.pages + extra_pages,
            resident_pages=current.resident_pages + extra_resident,
        )
        self._allocations[grown.allocation_id] = grown
        self._allocated_pages += extra_pages
        return grown

    def shrink_allocation(
        self, allocation: EpcAllocation, fewer_pages: int
    ) -> EpcAllocation:
        """Trim *fewer_pages* off a live allocation (SGX 2 EREMOVE path).

        Returns the replacement record; shrinking to zero pages is not
        allowed — destroy the enclave instead.
        """
        if fewer_pages <= 0:
            raise SgxError(f"shrink must be positive, got {fewer_pages}")
        if allocation.allocation_id not in self._allocations:
            raise SgxError(
                f"allocation {allocation.allocation_id} is not live"
            )
        current = self._allocations[allocation.allocation_id]
        if fewer_pages >= current.pages:
            raise SgxError(
                f"cannot shrink {current.pages}-page allocation by "
                f"{fewer_pages}; destroy the enclave instead"
            )
        # Drop paged-out pages first; residency never goes negative.
        remaining = current.pages - fewer_pages
        shrunk = EpcAllocation(
            allocation_id=current.allocation_id,
            owner=current.owner,
            pages=remaining,
            resident_pages=min(current.resident_pages, remaining),
        )
        self._allocations[shrunk.allocation_id] = shrunk
        self._allocated_pages -= fewer_pages
        return shrunk

    def release(self, allocation: EpcAllocation) -> None:
        """Return an allocation's pages to the free pool."""
        # Subtract the live record's pages, not the argument's: the
        # caller may hold a stale record from before a grow/shrink.
        current = self._allocations.get(allocation.allocation_id)
        if current is None:
            raise SgxError(
                f"allocation {allocation.allocation_id} is not live"
            )
        del self._allocations[allocation.allocation_id]
        self._allocated_pages -= current.pages

    def release_owner(self, owner: str) -> int:
        """Release every allocation owned by *owner*; return pages freed."""
        doomed = [
            a for a in self._allocations.values() if a.owner == owner
        ]
        freed = 0
        for alloc in doomed:
            del self._allocations[alloc.allocation_id]
            freed += alloc.pages
        self._allocated_pages -= freed
        return freed

    def rebalance_residency(self) -> None:
        """Recompute which pages are resident after over-commit churn.

        The real driver evicts pages on demand; for scheduling purposes
        only the *aggregate* residency matters, so we give each allocation
        a proportional share of the usable EPC.
        """
        if not self.overcommitted:
            for alloc in list(self._allocations.values()):
                self._allocations[alloc.allocation_id] = EpcAllocation(
                    allocation_id=alloc.allocation_id,
                    owner=alloc.owner,
                    pages=alloc.pages,
                    resident_pages=alloc.pages,
                )
            return
        scale = self.total_pages / self.allocated_pages
        for alloc in list(self._allocations.values()):
            self._allocations[alloc.allocation_id] = EpcAllocation(
                allocation_id=alloc.allocation_id,
                owner=alloc.owner,
                pages=alloc.pages,
                resident_pages=int(alloc.pages * scale),
            )

    def allocations(self) -> Iterator[EpcAllocation]:
        """Iterate over live allocations (snapshot order is insertion)."""
        return iter(list(self._allocations.values()))

    def __len__(self) -> int:
        return len(self._allocations)

    def __repr__(self) -> str:
        return (
            f"EnclavePageCache(total_pages={self.total_pages}, "
            f"allocated={self.allocated_pages}, free={self.free_pages}, "
            f"overcommit={self.allow_overcommit})"
        )


@dataclass
class EpcSnapshot:
    """Point-in-time EPC occupancy, as reported by the driver's counters."""

    total_pages: int
    free_pages: int
    usage_by_owner: Dict[str, int] = field(default_factory=dict)

    @property
    def used_pages(self) -> int:
        """Pages currently owned by some enclave."""
        return self.total_pages - self.free_pages
