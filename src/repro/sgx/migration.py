"""Secure enclave checkpoint/migration (the paper's future work).

The conclusion plans to "extend our orchestrator by integrating support
for enclave migration", building on the mechanism of Gu et al. (DSN'17)
that the related-work section describes in detail.  This module
implements that mechanism's security-relevant state machine:

* **quiescent point** — all threads must be out of the enclave before
  checkpointing (we refuse while ecalls are in flight);
* **migration key over an attested channel** — the key is bound to the
  source and target platform quotes, so only the attested target can
  restore;
* **self-destroy** — the source enclave is destroyed the moment the
  checkpoint is cut, so it cannot keep running alongside its clone
  (fork attack, source side);
* **one-time restore** — a checkpoint can be consumed exactly once
  (fork attack, target side);
* **freshness** — checkpoints carry a monotonic generation per enclave
  lineage; an old checkpoint can never be restored after a newer one
  was cut (rollback attack).

The paper treats migration as orthogonal to scheduling; so do we — this
layer moves enclaves between :class:`~repro.sgx.driver.SgxDriver`
instances and leaves pod-level rebinding to future orchestrator work.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..errors import SgxError
from .aesm import AesmService
from .driver import SgxDriver
from .enclave import Enclave, EnclaveState


class MigrationError(SgxError):
    """A checkpoint/restore operation violated the migration protocol."""


@dataclass(frozen=True)
class MigrationKey:
    """A key transmitted over the attestation-secured channel.

    Binds one checkpoint to one (source, target) platform pair; restore
    verifies all three bindings.
    """

    key_id: int
    checkpoint_id: int
    source_platform: str
    target_platform: str


@dataclass(frozen=True)
class EnclaveCheckpoint:
    """A sealed snapshot of a quiesced enclave."""

    checkpoint_id: int
    lineage_id: int
    generation: int
    measurement: str
    signer: str
    size_bytes: int
    ecall_count: int

    @property
    def state_digest(self) -> str:
        """Integrity digest a restorer validates before resuming."""
        payload = (
            f"{self.lineage_id}|{self.generation}|{self.measurement}|"
            f"{self.size_bytes}|{self.ecall_count}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()


class MigrationManager:
    """Coordinates secure enclave migrations across nodes."""

    def __init__(self):
        self._checkpoint_ids = itertools.count(1)
        self._key_ids = itertools.count(1)
        self._lineage_ids = itertools.count(1)
        #: enclave id -> lineage id (assigned at first checkpoint).
        self._lineages: Dict[int, int] = {}
        #: lineage id -> newest generation ever checkpointed.
        self._generations: Dict[int, int] = {}
        self._consumed: Set[int] = set()

    # -- checkpoint -------------------------------------------------------

    def checkpoint(
        self,
        driver: SgxDriver,
        pid: int,
        enclave: Enclave,
        source_aesm: AesmService,
        target_aesm: AesmService,
    ) -> Tuple[EnclaveCheckpoint, MigrationKey]:
        """Cut a checkpoint of *enclave* and self-destroy it.

        Requires an initialized, quiescent enclave.  Returns the sealed
        checkpoint plus the migration key bound to the attested target
        platform.  After this call the source enclave is gone — its EPC
        pages are back in the source node's pool.
        """
        if enclave.state is not EnclaveState.INITIALIZED:
            raise MigrationError(
                f"cannot checkpoint enclave in state {enclave.state}"
            )
        # Attest both ends; quoting fails unless the services run.
        source_quote = source_aesm.get_quote(
            enclave.measurement, report_data="migration-source"
        )
        target_quote = target_aesm.get_quote(
            enclave.measurement, report_data="migration-target"
        )

        lineage = self._lineages.get(enclave.enclave_id)
        if lineage is None:
            lineage = next(self._lineage_ids)
            self._lineages[enclave.enclave_id] = lineage
        generation = self._generations.get(lineage, 0) + 1
        self._generations[lineage] = generation

        checkpoint = EnclaveCheckpoint(
            checkpoint_id=next(self._checkpoint_ids),
            lineage_id=lineage,
            generation=generation,
            measurement=enclave.measurement,
            signer=enclave.signer,
            size_bytes=enclave.size_bytes,
            ecall_count=enclave.ecall_count,
        )
        key = MigrationKey(
            key_id=next(self._key_ids),
            checkpoint_id=checkpoint.checkpoint_id,
            source_platform=source_quote.platform_id,
            target_platform=target_quote.platform_id,
        )
        # Self-destroy: the source may never resume (fork prevention).
        driver.destroy_enclave(pid, enclave)
        return checkpoint, key

    # -- restore ----------------------------------------------------------

    def restore(
        self,
        driver: SgxDriver,
        pid: int,
        checkpoint: EnclaveCheckpoint,
        key: MigrationKey,
        target_aesm: AesmService,
    ) -> Enclave:
        """Restore a checkpoint on the target node, exactly once.

        Validates the migration key's bindings, the one-time property
        and freshness, then rebuilds the enclave (paying the normal
        build-time allocation on the target) and replays its call
        counter so the restored enclave is observationally identical.
        """
        if key.checkpoint_id != checkpoint.checkpoint_id:
            raise MigrationError(
                "migration key is not bound to this checkpoint"
            )
        if key.target_platform != target_aesm.platform_id:
            raise MigrationError(
                f"key bound to platform {key.target_platform!r}, "
                f"restore attempted on {target_aesm.platform_id!r}"
            )
        if checkpoint.checkpoint_id in self._consumed:
            raise MigrationError(
                "checkpoint already restored once (fork attack)"
            )
        newest = self._generations.get(checkpoint.lineage_id, 0)
        if checkpoint.generation < newest:
            raise MigrationError(
                f"stale checkpoint generation {checkpoint.generation} "
                f"< {newest} (rollback attack)"
            )
        self._consumed.add(checkpoint.checkpoint_id)

        enclave = driver.create_enclave(
            pid, size_bytes=checkpoint.size_bytes, signer=checkpoint.signer
        )
        if enclave.measurement != checkpoint.measurement:
            driver.destroy_enclave(pid, enclave)
            raise MigrationError(
                "restored enclave measurement mismatch; state corrupt"
            )
        driver.initialize_enclave(pid, enclave, target_aesm)
        # Replay to the checkpointed call count (identical-state replay
        # of Gu et al.; our observable state is the counter).
        for _ in range(checkpoint.ecall_count):
            enclave.ecall("replayed")
        # The restored enclave continues the lineage: a later checkpoint
        # of it must supersede this one.
        self._lineages[enclave.enclave_id] = checkpoint.lineage_id
        return enclave
