"""SGX 2: dynamic EPC memory management (EDMM).

Section VI-G of the paper looks ahead to SGX 2, whose "most important
feature ... is dynamic EPC memory allocation.  Enclaves can ask the
operating system for the allocation of new memory pages, and may also
release pages they own", at runtime rather than only at build time.
The authors argue their scheduler works out of the box — it already
tracks *measured* EPC usage — and that only the driver-side limit
enforcement needs a modest port.

This module implements that future: :class:`Sgx2Enclave` supports
post-EINIT growth (EAUG/EACCEPT) and shrinking (EMODT/EREMOVE), and the
driver hooks in :mod:`repro.sgx.driver` port the per-pod limit check to
the growth path, denying EAUG that would push a pod past its advertised
limit — the very port the paper estimates as "modest".

A second SGX 2 benefit also falls out: enclaves no longer pay the
build-time cost of their *peak* allocation, only of their initial one;
later growth is accounted page-wise as it happens.
"""

from __future__ import annotations

from ..errors import EnclaveStateError
from ..units import pages as bytes_to_pages
from .enclave import Enclave, EnclaveState
from .epc import EnclavePageCache


class Sgx2Enclave(Enclave):
    """An enclave on SGX 2 hardware: resizable after initialisation.

    Construction commits only the *initial* size; :meth:`grow` and
    :meth:`shrink` adjust protected memory at runtime.  Growth is only
    legal once the enclave is initialized (EDMM operates from inside a
    running enclave via EACCEPT), matching the architecture.
    """

    def __init__(
        self,
        owner: str,
        epc: EnclavePageCache,
        size_bytes: int,
        signer: str = "vendor",
    ):
        super().__init__(
            owner=owner, epc=epc, size_bytes=size_bytes, signer=signer
        )
        self.sgx_version = 2

    def grow(self, extra_bytes: int) -> int:
        """EAUG + EACCEPT: add protected pages at runtime.

        Returns the number of pages added.  Raises
        :class:`~repro.errors.EnclaveStateError` outside the initialized
        state and :class:`~repro.errors.EpcExhaustedError` when the node
        runs strict accounting and the pages do not fit.
        """
        if extra_bytes <= 0:
            raise EnclaveStateError(
                f"growth must be positive, got {extra_bytes}"
            )
        if self.state is not EnclaveState.INITIALIZED:
            raise EnclaveStateError(
                f"EDMM growth requires an initialized enclave, "
                f"state is {self.state}"
            )
        assert self._allocation is not None
        extra_pages = bytes_to_pages(extra_bytes)
        self._allocation = self._epc.grow_allocation(
            self._allocation, extra_pages
        )
        self.pages += extra_pages
        self.size_bytes += extra_bytes
        return extra_pages

    def shrink(self, fewer_bytes: int) -> int:
        """EMODT + EREMOVE: return protected pages to the pool.

        Returns the number of pages released.
        """
        if fewer_bytes <= 0:
            raise EnclaveStateError(
                f"shrink must be positive, got {fewer_bytes}"
            )
        if self.state is not EnclaveState.INITIALIZED:
            raise EnclaveStateError(
                f"EDMM shrink requires an initialized enclave, "
                f"state is {self.state}"
            )
        assert self._allocation is not None
        fewer_pages = bytes_to_pages(fewer_bytes)
        self._allocation = self._epc.shrink_allocation(
            self._allocation, fewer_pages
        )
        self.pages -= fewer_pages
        self.size_bytes -= fewer_bytes
        return fewer_pages
