"""Model of the patched Intel ``isgx`` Linux kernel driver.

The paper modifies the stock driver (115 lines of C, Section V-E) to

* expose EPC occupancy as module parameters readable under
  ``/sys/module/isgx/parameters``: ``sgx_nr_total_epc_pages`` and
  ``sgx_nr_free_pages``;
* add an ioctl reporting the EPC pages owned by a single process;
* add an ioctl by which Kubelet communicates a *cgroup path -> EPC page
  limit* pair at pod creation, settable **once** per pod so containers
  cannot reset their own limits;
* deny enclave initialisation (``__sgx_encl_init``) whenever the enclave's
  pages would push its pod past the advertised limit.

This module reproduces that interface.  The pseudo-file surface is modelled
by :meth:`SgxDriver.read_parameter`, and the two ioctls by
:meth:`SgxDriver.ioctl`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import (
    DriverError,
    EnclaveLimitExceededError,
    EpcExhaustedError,
)
from .aesm import AesmService
from .enclave import Enclave
from .epc import EnclavePageCache, EpcSnapshot
from .sgx2 import Sgx2Enclave

#: ioctl number for querying a process's EPC occupancy (paper Sec. V-E).
IOCTL_GET_EPC_USAGE = 0xA0
#: ioctl number for communicating a pod's EPC limit (paper Sec. V-D/V-E).
IOCTL_SET_POD_LIMIT = 0xA1

#: Module-parameter pseudo-file names, as exposed under
#: ``/sys/module/isgx/parameters/``.
PARAM_TOTAL_PAGES = "sgx_nr_total_epc_pages"
PARAM_FREE_PAGES = "sgx_nr_free_pages"


@dataclass
class _ProcessRecord:
    """Book-keeping for one process that owns enclaves."""

    pid: int
    cgroup_path: str
    enclaves: List[Enclave] = field(default_factory=list)

    @property
    def epc_pages(self) -> int:
        """Pages owned by this process's live enclaves."""
        return sum(e.pages for e in self.enclaves)


class SgxDriver:
    """The per-node SGX driver: counters, limits, and EINIT gating.

    Parameters
    ----------
    epc:
        The node's EPC model.
    enforce_limits:
        Whether the paper's limit-enforcement patch is active.  Fig. 11
        compares runs with this on and off.
    sgx_version:
        1 (current hardware) or 2 (EDMM-capable, Section VI-G).  On
        version 1 the driver refuses dynamic enclaves and runtime
        resizing, exactly like the stock driver.
    """

    def __init__(
        self,
        epc: EnclavePageCache,
        enforce_limits: bool = True,
        sgx_version: int = 1,
    ):
        if sgx_version not in (1, 2):
            raise DriverError(f"unsupported SGX version {sgx_version}")
        self.epc = epc
        self.enforce_limits = enforce_limits
        self.sgx_version = sgx_version
        self._limits: Dict[str, int] = {}
        self._processes: Dict[int, _ProcessRecord] = {}

    # -- module parameters (pseudo-files) ---------------------------------

    def read_parameter(self, name: str) -> int:
        """Read a module parameter as the monitoring probe would.

        Supported names mirror the pseudo-files the patch adds below
        ``/sys/module/isgx/parameters/``.
        """
        if name == PARAM_TOTAL_PAGES:
            return self.epc.total_pages
        if name == PARAM_FREE_PAGES:
            return self.epc.free_pages
        raise DriverError(f"unknown module parameter {name!r}")

    def snapshot(self) -> EpcSnapshot:
        """Aggregate occupancy snapshot (what the probe pushes to the TSDB)."""
        return EpcSnapshot(
            total_pages=self.epc.total_pages,
            free_pages=self.epc.free_pages,
            usage_by_owner=self.epc.usage_by_owner(),
        )

    # -- ioctl surface -----------------------------------------------------

    def ioctl(self, number: int, **kwargs) -> int:
        """Dispatch an ioctl as user space would.

        ``IOCTL_GET_EPC_USAGE`` expects ``pid=`` and returns the pages
        owned by that process.  ``IOCTL_SET_POD_LIMIT`` expects
        ``cgroup_path=`` and ``limit_pages=`` and returns 0 on success.
        """
        if number == IOCTL_GET_EPC_USAGE:
            return self.process_epc_pages(kwargs["pid"])
        if number == IOCTL_SET_POD_LIMIT:
            self.set_pod_limit(kwargs["cgroup_path"], kwargs["limit_pages"])
            return 0
        raise DriverError(f"unknown ioctl 0x{number:X}")

    def process_epc_pages(self, pid: int) -> int:
        """EPC pages owned by process *pid* (0 for unknown processes)."""
        record = self._processes.get(pid)
        return record.epc_pages if record else 0

    def set_pod_limit(self, cgroup_path: str, limit_pages: int) -> None:
        """Record a pod's EPC page limit, keyed by cgroup path.

        The driver accepts each pod's limit exactly once ("limits can only
        be set once for each pod, therefore preventing the containers
        themselves from resetting them", Sec. V-E).
        """
        if limit_pages < 0:
            raise DriverError(f"negative limit: {limit_pages}")
        if cgroup_path in self._limits:
            raise DriverError(
                f"limit already set for pod {cgroup_path!r}; "
                "limits are settable once"
            )
        self._limits[cgroup_path] = limit_pages

    def pod_limit(self, cgroup_path: str) -> Optional[int]:
        """The limit recorded for a pod, or ``None`` if none was set."""
        return self._limits.get(cgroup_path)

    def clear_pod(self, cgroup_path: str) -> None:
        """Forget a pod's limit at pod teardown (cgroup removal)."""
        self._limits.pop(cgroup_path, None)

    # -- enclave lifecycle hooks -------------------------------------------

    def register_process(self, pid: int, cgroup_path: str) -> None:
        """Track a process so its enclaves can be attributed to a pod."""
        if pid in self._processes:
            raise DriverError(f"pid {pid} already registered")
        self._processes[pid] = _ProcessRecord(pid=pid, cgroup_path=cgroup_path)

    def unregister_process(self, pid: int) -> None:
        """Destroy all enclaves of *pid* and forget it (process exit)."""
        record = self._processes.pop(pid, None)
        if record is None:
            return
        for enclave in record.enclaves:
            enclave.destroy()

    def create_enclave(
        self,
        pid: int,
        size_bytes: int,
        signer: str = "vendor",
        dynamic: bool = False,
    ) -> Enclave:
        """ECREATE + EADD on behalf of *pid*.

        ``dynamic=True`` requests an SGX 2 enclave whose memory can be
        resized after EINIT; it requires ``sgx_version >= 2``.  May
        raise :class:`~repro.errors.EpcExhaustedError` when the node
        runs strict (no over-commit) EPC accounting.
        """
        record = self._require_process(pid)
        if dynamic and self.sgx_version < 2:
            raise DriverError(
                "dynamic enclaves require SGX 2 (EDMM); this driver "
                "runs in SGX 1 mode"
            )
        enclave_cls = Sgx2Enclave if dynamic else Enclave
        try:
            enclave = enclave_cls(
                owner=record.cgroup_path,
                epc=self.epc,
                size_bytes=size_bytes,
                signer=signer,
            )
        except EpcExhaustedError:
            raise
        record.enclaves.append(enclave)
        return enclave

    def grow_enclave(
        self, pid: int, enclave: Enclave, extra_bytes: int
    ) -> int:
        """EAUG on behalf of *pid*, with the limit check ported to SGX 2.

        The paper estimates this port as modest (Section VI-G): the same
        per-pod comparison that gates ``__sgx_encl_init`` gates dynamic
        growth — a pod may never own more pages than it advertised.
        Returns the pages added.
        """
        from ..units import pages as bytes_to_pages

        record = self._require_process(pid)
        if enclave not in record.enclaves:
            raise DriverError(
                f"enclave {enclave.enclave_id} does not belong to pid {pid}"
            )
        if not isinstance(enclave, Sgx2Enclave):
            raise DriverError(
                "runtime growth requires an SGX 2 (dynamic) enclave"
            )
        if self.enforce_limits:
            limit = self._limits.get(record.cgroup_path)
            if limit is not None:
                owned = self._pod_pages(record.cgroup_path)
                wanted = owned + bytes_to_pages(extra_bytes)
                if wanted > limit:
                    raise EnclaveLimitExceededError(
                        record.cgroup_path, wanted, limit
                    )
        return enclave.grow(extra_bytes)

    def shrink_enclave(
        self, pid: int, enclave: Enclave, fewer_bytes: int
    ) -> int:
        """EREMOVE on behalf of *pid*; returns the pages released."""
        record = self._require_process(pid)
        if enclave not in record.enclaves:
            raise DriverError(
                f"enclave {enclave.enclave_id} does not belong to pid {pid}"
            )
        if not isinstance(enclave, Sgx2Enclave):
            raise DriverError(
                "runtime shrinking requires an SGX 2 (dynamic) enclave"
            )
        return enclave.shrink(fewer_bytes)

    def initialize_enclave(
        self, pid: int, enclave: Enclave, aesm: AesmService
    ) -> None:
        """EINIT with the paper's limit check spliced in.

        Compares the pages owned by the enclave's *pod* (all processes in
        the same cgroup) against the advertised limit, and denies
        initialisation — destroying the enclave, as the kernel would free
        its pages — when the limit is exceeded.
        """
        record = self._require_process(pid)
        if enclave not in record.enclaves:
            raise DriverError(
                f"enclave {enclave.enclave_id} does not belong to pid {pid}"
            )
        if self.enforce_limits:
            limit = self._limits.get(record.cgroup_path)
            if limit is not None:
                owned = self._pod_pages(record.cgroup_path)
                if owned > limit:
                    enclave.destroy()
                    record.enclaves.remove(enclave)
                    raise EnclaveLimitExceededError(
                        record.cgroup_path, owned, limit
                    )
        token = aesm.get_launch_token(enclave.measurement, enclave.signer)
        enclave.initialize(token)

    def destroy_enclave(self, pid: int, enclave: Enclave) -> None:
        """Tear one enclave down and release its pages."""
        record = self._require_process(pid)
        if enclave in record.enclaves:
            record.enclaves.remove(enclave)
        enclave.destroy()

    # -- internals ----------------------------------------------------------

    def _require_process(self, pid: int) -> _ProcessRecord:
        record = self._processes.get(pid)
        if record is None:
            raise DriverError(f"pid {pid} is not registered with the driver")
        return record

    def _pod_pages(self, cgroup_path: str) -> int:
        """Pages owned by every process in the pod's cgroup."""
        return sum(
            r.epc_pages
            for r in self._processes.values()
            if r.cgroup_path == cgroup_path
        )
