"""AESM / Platform Software (PSW) model.

Applications built with the Intel SDK rely on the Platform Software, whose
Application Enclave Service Manager (AESM) brokers access to the
architectural enclaves: the Launch Enclave (LE) that mints launch tokens,
the Quoting Enclave (QE) used for remote attestation and the Provisioning
Enclave (PE).  Section VI-D notes that, because containers stay isolated,
*each container runs its own PSW instance* and therefore pays the ~100 ms
service startup once.

This module models the parts the orchestrator can observe: token minting
(required before ``EINIT``), quote generation (so examples can demonstrate
attestation flows) and the startup latency.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Optional

from ..constants import PSW_STARTUP_SECONDS
from ..errors import LaunchTokenError


@dataclass(frozen=True)
class LaunchToken:
    """An EINITTOKEN minted by the Launch Enclave for a specific enclave."""

    token_id: int
    enclave_measurement: str
    signer: str

    def matches(self, measurement: str) -> bool:
        """Whether this token authorises the enclave with *measurement*."""
        return self.enclave_measurement == measurement


@dataclass(frozen=True)
class Quote:
    """A remote-attestation quote binding a measurement to a report body."""

    enclave_measurement: str
    report_data: str
    platform_id: str

    @property
    def digest(self) -> str:
        """Stable digest a verifier would check against expected values."""
        payload = (
            f"{self.enclave_measurement}|{self.report_data}|"
            f"{self.platform_id}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()


class AesmService:
    """The per-container AESM daemon.

    A stopped service refuses all requests; callers must account for
    :attr:`startup_seconds` before the first token can be fetched, which
    is exactly the PSW cost measured in Fig. 6.
    """

    def __init__(
        self,
        platform_id: str = "sgx-platform",
        startup_seconds: float = PSW_STARTUP_SECONDS,
    ):
        self.platform_id = platform_id
        self.startup_seconds = startup_seconds
        self._running = False
        self._token_ids = itertools.count(1)

    @property
    def running(self) -> bool:
        """Whether the service has completed startup."""
        return self._running

    def start(self) -> float:
        """Start the service; returns the startup latency to account for."""
        self._running = True
        return self.startup_seconds

    def stop(self) -> None:
        """Stop the service (container teardown)."""
        self._running = False

    def get_launch_token(
        self, enclave_measurement: str, signer: str
    ) -> LaunchToken:
        """Fetch an EINITTOKEN from the Launch Enclave.

        Raises
        ------
        LaunchTokenError
            If the service is not running or the measurement is empty.
        """
        if not self._running:
            raise LaunchTokenError("AESM service is not running")
        if not enclave_measurement:
            raise LaunchTokenError("empty enclave measurement")
        return LaunchToken(
            token_id=next(self._token_ids),
            enclave_measurement=enclave_measurement,
            signer=signer,
        )

    def get_quote(
        self, enclave_measurement: str, report_data: str = ""
    ) -> Quote:
        """Produce a quote via the Quoting Enclave."""
        if not self._running:
            raise LaunchTokenError("AESM service is not running")
        return Quote(
            enclave_measurement=enclave_measurement,
            report_data=report_data,
            platform_id=self.platform_id,
        )


class PlatformSoftware:
    """Bundle of the PSW pieces a container ships: AESM plus SDK glue.

    The orchestrator's base Docker image (Section V-F) packages this; the
    model simply tracks one AESM per container and exposes the aggregate
    startup latency.
    """

    def __init__(self, container_id: str, platform_id: Optional[str] = None):
        self.container_id = container_id
        self.aesm = AesmService(
            platform_id=platform_id or f"platform-{container_id}"
        )

    def boot(self) -> float:
        """Boot the PSW inside the container; returns startup seconds."""
        return self.aesm.start()

    def shutdown(self) -> None:
        """Tear the PSW down with the container."""
        self.aesm.stop()
