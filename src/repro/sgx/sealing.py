"""Sealed storage: persisting enclave data across restarts.

Section II: "Data stored in enclaves can be saved to persistent
storage, protected by a seal key.  This allows to store sensitive data
on disk, waiving the need for a new remote attestation every time the
SGX application restarts."

SGX derives seal keys inside the CPU from the platform's fuse keys plus
a policy: **MRENCLAVE** binds the key to one exact enclave build (an
updated enclave cannot unseal its predecessor's data), **MRSIGNER**
binds it to the signing vendor (any enclave from the same signer can
unseal, enabling upgrades).  Both are modelled here, along with the
integrity failure you get when tampering with a sealed blob or moving
it to another machine.
"""

from __future__ import annotations

import enum
import hashlib
import hmac
from dataclasses import dataclass

from ..errors import SgxError
from .enclave import Enclave, EnclaveState


class SealingError(SgxError):
    """Unsealing failed: wrong enclave, wrong platform, or tampering."""


class SealPolicy(enum.Enum):
    """Which identity the seal key is derived from."""

    MRENCLAVE = "mrenclave"  # exact enclave build
    MRSIGNER = "mrsigner"    # any enclave from the same signer

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class SealedBlob:
    """An encrypted, integrity-protected blob on untrusted storage."""

    policy: SealPolicy
    ciphertext: bytes
    mac: str

    @property
    def size_bytes(self) -> int:
        """On-disk size of the blob."""
        return len(self.ciphertext)


class SealingService:
    """Per-platform seal-key derivation and blob handling.

    One service per physical machine; the platform secret stands in for
    the CPU's fuse keys, so blobs sealed on one machine never unseal on
    another (seal keys are platform-bound in SGX).
    """

    def __init__(self, platform_id: str):
        if not platform_id:
            raise SgxError("platform id must be non-empty")
        self.platform_id = platform_id
        self._platform_secret = hashlib.sha256(
            f"fuse-key|{platform_id}".encode()
        ).digest()

    # -- key derivation --------------------------------------------------

    def _seal_key(self, enclave: Enclave, policy: SealPolicy) -> bytes:
        identity = (
            enclave.measurement
            if policy is SealPolicy.MRENCLAVE
            else enclave.signer
        )
        return hmac.new(
            self._platform_secret,
            f"{policy.value}|{identity}".encode(),
            hashlib.sha256,
        ).digest()

    @staticmethod
    def _require_initialized(enclave: Enclave) -> None:
        if enclave.state is not EnclaveState.INITIALIZED:
            raise SealingError(
                f"sealing requires an initialized enclave, "
                f"state is {enclave.state}"
            )

    # -- seal / unseal ------------------------------------------------------

    def seal(
        self,
        enclave: Enclave,
        data: bytes,
        policy: SealPolicy = SealPolicy.MRSIGNER,
    ) -> SealedBlob:
        """Seal *data* under *enclave*'s identity per *policy*."""
        self._require_initialized(enclave)
        key = self._seal_key(enclave, policy)
        ciphertext = self._xor_stream(key, data)
        mac = hmac.new(key, ciphertext, hashlib.sha256).hexdigest()
        return SealedBlob(policy=policy, ciphertext=ciphertext, mac=mac)

    def unseal(self, enclave: Enclave, blob: SealedBlob) -> bytes:
        """Unseal *blob* inside *enclave*.

        Raises :class:`SealingError` when the enclave's identity (per
        the blob's policy) or the platform differs from the sealer's, or
        when the blob was tampered with — all three manifest as a MAC
        mismatch, exactly as on real hardware.
        """
        self._require_initialized(enclave)
        key = self._seal_key(enclave, blob.policy)
        expected = hmac.new(key, blob.ciphertext, hashlib.sha256).hexdigest()
        if not hmac.compare_digest(expected, blob.mac):
            raise SealingError(
                "MAC mismatch: wrong enclave identity, wrong platform, "
                "or tampered blob"
            )
        return self._xor_stream(key, blob.ciphertext)

    # -- internals ----------------------------------------------------------

    @staticmethod
    def _xor_stream(key: bytes, data: bytes) -> bytes:
        """Deterministic keystream cipher (a stand-in for AES-GCM)."""
        output = bytearray(len(data))
        block = b""
        counter = 0
        for index in range(len(data)):
            if index % 32 == 0:
                block = hashlib.sha256(
                    key + counter.to_bytes(8, "little")
                ).digest()
                counter += 1
            output[index] = data[index] ^ block[index % 32]
        return bytes(output)
