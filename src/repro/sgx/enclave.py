"""Enclave lifecycle state machine.

Mirrors the SGX 1 execution flow described in Section II and Fig. 1 of the
paper: the untrusted part of an application *creates* an enclave
(``ECREATE``), commits **all** of its protected memory up front (``EADD``,
required so the memory is covered by the attestation measurement),
*initialises* it with a launch token (``EINIT``) and only then may issue
``ecall``s through the call gate.  Teardown releases every EPC page.

The driver model (:mod:`repro.sgx.driver`) hooks enclave initialisation to
enforce per-pod EPC limits, exactly where the paper's 115-line kernel patch
sits (``__sgx_encl_init``).
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from typing import Optional

from ..errors import EnclaveStateError, LaunchTokenError
from ..units import pages as bytes_to_pages
from .aesm import LaunchToken
from .epc import EnclavePageCache, EpcAllocation


class EnclaveState(enum.Enum):
    """Lifecycle states of an enclave."""

    CREATED = "created"        # ECREATE done, memory committed
    INITIALIZED = "initialized"  # EINIT done, ecalls allowed
    DESTROYED = "destroyed"    # EPC pages released

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Enclave:
    """One SGX enclave owned by a process inside a pod.

    Parameters
    ----------
    owner:
        Accounting label — the pod's cgroup path in the orchestrator, so
        driver-side limit checks can attribute pages to pods.
    epc:
        The node's :class:`~repro.sgx.epc.EnclavePageCache`.
    size_bytes:
        Protected memory committed at build time.  SGX 1 requires the full
        allocation here; attempting to grow later raises.
    signer:
        Identity of the enclave's signing key (for launch-token checks).
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        owner: str,
        epc: EnclavePageCache,
        size_bytes: int,
        signer: str = "vendor",
    ):
        if size_bytes <= 0:
            raise EnclaveStateError(
                f"enclave size must be positive, got {size_bytes}"
            )
        self.enclave_id = next(Enclave._ids)
        self.owner = owner
        self.signer = signer
        self.size_bytes = size_bytes
        self.pages = bytes_to_pages(size_bytes)
        self._epc = epc
        # ECREATE + EADD: commit all protected memory immediately.  This
        # may raise EpcExhaustedError in strict mode — the caller (the
        # node's container runtime) decides how to surface that.
        self._allocation: Optional[EpcAllocation] = epc.allocate(
            owner, self.pages
        )
        self.state = EnclaveState.CREATED
        self._ecall_count = 0

    @property
    def measurement(self) -> str:
        """MRENCLAVE-like digest of the enclave's identity and size."""
        payload = f"{self.signer}|{self.size_bytes}"
        return hashlib.sha256(payload.encode()).hexdigest()

    @property
    def ecall_count(self) -> int:
        """Number of trusted calls executed so far."""
        return self._ecall_count

    # -- lifecycle ----------------------------------------------------------

    def initialize(self, token: LaunchToken) -> None:
        """EINIT: validate the launch token and enter the initialized state.

        The driver wraps this call to apply the per-pod limit check; see
        :meth:`repro.sgx.driver.SgxDriver.initialize_enclave`.
        """
        if self.state is not EnclaveState.CREATED:
            raise EnclaveStateError(
                f"cannot EINIT enclave in state {self.state}"
            )
        if not token.matches(self.measurement):
            raise LaunchTokenError(
                "launch token does not match enclave measurement"
            )
        self.state = EnclaveState.INITIALIZED

    def ecall(self, function: str = "trusted_fn") -> str:
        """Enter the enclave through the call gate and run *function*.

        Returns a result token; raises unless the enclave is initialized.
        """
        if self.state is not EnclaveState.INITIALIZED:
            raise EnclaveStateError(
                f"ecall into enclave in state {self.state}"
            )
        self._ecall_count += 1
        return f"ok:{function}:{self._ecall_count}"

    def grow(self, extra_bytes: int) -> None:
        """SGX 1 forbids growing an enclave after creation.

        Always raises; exists so workloads that *attempt* dynamic memory
        (an SGX 2 feature, Section VI-G) fail in the documented way.
        """
        raise EnclaveStateError(
            "SGX 1 enclaves cannot grow after ECREATE "
            f"(requested +{extra_bytes} bytes); this requires SGX 2 EDMM"
        )

    def destroy(self) -> None:
        """Release all EPC pages.  Idempotent."""
        if self.state is EnclaveState.DESTROYED:
            return
        if self._allocation is not None:
            self._epc.release(self._allocation)
            self._allocation = None
        self.state = EnclaveState.DESTROYED

    def __repr__(self) -> str:
        return (
            f"Enclave(id={self.enclave_id}, owner={self.owner!r}, "
            f"pages={self.pages}, state={self.state})"
        )
