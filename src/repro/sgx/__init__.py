"""SGX substrate: EPC accounting, enclave lifecycle, driver and AESM models.

This package replaces the Intel SGX hardware and kernel driver that the
paper's system runs on.  It reproduces the *observable* behaviour the
orchestrator depends on:

* page-granular EPC accounting with a 93.5 MiB usable / 128 MiB total split
  (:mod:`repro.sgx.epc`);
* the measured startup latency model of Fig. 6 (:mod:`repro.sgx.perf`);
* the enclave lifecycle — ECREATE, EADD, EINIT via launch token, ecall —
  (:mod:`repro.sgx.enclave`, :mod:`repro.sgx.aesm`);
* the patched ``isgx`` driver interface: occupancy counters exposed as
  module parameters, per-process and per-cgroup ioctls, and denial of
  enclave initialisation past the pod's advertised limit
  (:mod:`repro.sgx.driver`).
"""

from .aesm import AesmService, LaunchToken, PlatformSoftware
from .driver import (
    IOCTL_GET_EPC_USAGE,
    IOCTL_SET_POD_LIMIT,
    SgxDriver,
)
from .enclave import Enclave, EnclaveState
from .epc import EnclavePageCache, EpcAllocation
from .perf import SgxPerfModel, StartupBreakdown

__all__ = [
    "AesmService",
    "Enclave",
    "EnclavePageCache",
    "EnclaveState",
    "EpcAllocation",
    "IOCTL_GET_EPC_USAGE",
    "IOCTL_SET_POD_LIMIT",
    "LaunchToken",
    "PlatformSoftware",
    "SgxDriver",
    "SgxPerfModel",
    "StartupBreakdown",
]
