"""SGX performance model calibrated to the paper's measurements.

Section VI-D of the paper measures two startup costs for SGX processes
(Fig. 6) and reports the paging penalty for over-committed EPC:

* **PSW/AESM service startup** — "about 100 ms", independent of size,
  paid once per container because each container runs its own PSW.
* **Enclave memory allocation** — all enclave memory is committed at build
  time (for attestation measurement).  Allocation time shows "two clear
  linear trends": 1.6 ms/MiB up to the usable EPC (93.5 MiB), then a fixed
  ~200 ms delay plus 4.5 ms/MiB beyond the knee.
* **Paging slowdown** — over-committing the EPC costs "up to 1000x"
  (Section V-A, citing SCONE).  We model the slowdown as interpolating
  geometrically between 1x at ratio 1.0 and the maximum at a configurable
  saturation ratio, which reproduces the qualitative cliff without
  claiming precision the paper does not provide.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    EPC_ALLOC_KNEE_PENALTY_SECONDS,
    EPC_ALLOC_SECONDS_PER_MIB_ABOVE,
    EPC_ALLOC_SECONDS_PER_MIB_BELOW,
    EPC_PAGING_MAX_SLOWDOWN,
    EPC_USABLE_BYTES,
    PSW_STARTUP_SECONDS,
    STANDARD_STARTUP_SECONDS,
)
from ..errors import SgxError
from ..units import MIB, bytes_to_mib


@dataclass(frozen=True)
class StartupBreakdown:
    """Decomposition of a process startup into its two measured phases."""

    psw_seconds: float
    allocation_seconds: float

    @property
    def total_seconds(self) -> float:
        """End-to-end startup latency."""
        return self.psw_seconds + self.allocation_seconds


class SgxPerfModel:
    """Latency model for SGX process startup and EPC paging.

    All parameters default to the paper's measured constants; experiments
    that sweep hypothetical hardware (Fig. 7's SGX 2 sizes) override
    ``usable_epc_bytes``.
    """

    def __init__(
        self,
        psw_startup_seconds: float = PSW_STARTUP_SECONDS,
        alloc_below_knee_s_per_mib: float = EPC_ALLOC_SECONDS_PER_MIB_BELOW,
        alloc_above_knee_s_per_mib: float = EPC_ALLOC_SECONDS_PER_MIB_ABOVE,
        knee_penalty_seconds: float = EPC_ALLOC_KNEE_PENALTY_SECONDS,
        usable_epc_bytes: int = EPC_USABLE_BYTES,
        paging_max_slowdown: float = EPC_PAGING_MAX_SLOWDOWN,
        paging_saturation_ratio: float = 2.0,
    ):
        if usable_epc_bytes <= 0:
            raise SgxError("usable EPC must be positive")
        if paging_max_slowdown < 1.0:
            raise SgxError("paging slowdown cannot be below 1x")
        if paging_saturation_ratio <= 1.0:
            raise SgxError("paging saturation ratio must exceed 1.0")
        self.psw_startup_seconds = psw_startup_seconds
        self.alloc_below = alloc_below_knee_s_per_mib
        self.alloc_above = alloc_above_knee_s_per_mib
        self.knee_penalty_seconds = knee_penalty_seconds
        self.usable_epc_bytes = usable_epc_bytes
        self.paging_max_slowdown = paging_max_slowdown
        self.paging_saturation_ratio = paging_saturation_ratio

    # -- startup --------------------------------------------------------

    def allocation_seconds(self, epc_bytes: int) -> float:
        """Time to commit *epc_bytes* of enclave memory at build time."""
        if epc_bytes < 0:
            raise SgxError(f"negative allocation: {epc_bytes}")
        below = min(epc_bytes, self.usable_epc_bytes)
        latency = bytes_to_mib(below) * self.alloc_below
        if epc_bytes > self.usable_epc_bytes:
            above = epc_bytes - self.usable_epc_bytes
            latency += (
                self.knee_penalty_seconds
                + bytes_to_mib(above) * self.alloc_above
            )
        return latency

    def startup(self, epc_bytes: int) -> StartupBreakdown:
        """Full startup breakdown for an SGX process of *epc_bytes*."""
        return StartupBreakdown(
            psw_seconds=self.psw_startup_seconds,
            allocation_seconds=self.allocation_seconds(epc_bytes),
        )

    def standard_startup(self) -> StartupBreakdown:
        """Startup for a standard (non-SGX) process: sub-millisecond."""
        return StartupBreakdown(
            psw_seconds=0.0,
            allocation_seconds=STANDARD_STARTUP_SECONDS,
        )

    # -- paging -----------------------------------------------------------

    def paging_slowdown(self, overcommit_ratio: float) -> float:
        """Execution slowdown factor at a given EPC over-commit ratio.

        Returns 1.0 at or below full occupancy, rising geometrically to
        ``paging_max_slowdown`` at ``paging_saturation_ratio`` and clamped
        there beyond it.
        """
        if overcommit_ratio <= 1.0:
            return 1.0
        span = self.paging_saturation_ratio - 1.0
        progress = min(1.0, (overcommit_ratio - 1.0) / span)
        # Geometric interpolation: smooth in log-space, matching the
        # "orders of magnitude" phrasing of the sources the paper cites.
        return self.paging_max_slowdown ** progress

    def effective_runtime(
        self, base_runtime_seconds: float, overcommit_ratio: float
    ) -> float:
        """Runtime of a job under a given over-commit ratio."""
        if base_runtime_seconds < 0:
            raise SgxError("negative runtime")
        return base_runtime_seconds * self.paging_slowdown(overcommit_ratio)

    # -- convenience ------------------------------------------------------

    def startup_curve(self, step_bytes: int = 8 * MIB, max_bytes: int = 0):
        """Yield ``(epc_bytes, StartupBreakdown)`` along Fig. 6's x-axis."""
        if max_bytes <= 0:
            max_bytes = 128 * MIB
        size = 0
        while size <= max_bytes:
            yield size, self.startup(size)
            size += step_bytes
