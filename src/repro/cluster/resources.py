"""Resource vectors: the quantities the scheduler reasons about.

A :class:`ResourceVector` carries the three dimensions relevant to the
paper's placement problem — CPU (millicores, as Kubernetes counts them),
standard memory (bytes) and EPC (pages).  Vectors support the arithmetic
the filter and scoring phases need: addition, subtraction, comparison
against a capacity, and utilisation ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ResourceError
from ..units import fmt_bytes, pages_to_mib


@dataclass(frozen=True, slots=True)
class ResourceVector:
    """An immutable (cpu, memory, epc) triple.

    ``cpu_millicores`` uses Kubernetes' milli-CPU convention (1000 = one
    core).  ``memory_bytes`` is standard RAM.  ``epc_pages`` counts 4 KiB
    EPC pages; zero for standard jobs and non-SGX nodes.
    """

    cpu_millicores: int = 0
    memory_bytes: int = 0
    epc_pages: int = 0

    def __post_init__(self):
        for name in ("cpu_millicores", "memory_bytes", "epc_pages"):
            value = getattr(self, name)
            if not isinstance(value, int):
                raise ResourceError(f"{name} must be an int, got {value!r}")

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls) -> "ResourceVector":
        """The additive identity."""
        return _ZERO

    @classmethod
    def _unchecked(
        cls, cpu_millicores: int, memory_bytes: int, epc_pages: int
    ) -> "ResourceVector":
        """Construct without validation: arithmetic on vectors that are
        already validated only ever combines ints, and the isinstance
        sweep costs real time in per-candidate scheduler loops."""
        vector = object.__new__(cls)
        object.__setattr__(vector, "cpu_millicores", cpu_millicores)
        object.__setattr__(vector, "memory_bytes", memory_bytes)
        object.__setattr__(vector, "epc_pages", epc_pages)
        return vector

    # -- arithmetic ----------------------------------------------------------

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector._unchecked(
            self.cpu_millicores + other.cpu_millicores,
            self.memory_bytes + other.memory_bytes,
            self.epc_pages + other.epc_pages,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector._unchecked(
            self.cpu_millicores - other.cpu_millicores,
            self.memory_bytes - other.memory_bytes,
            self.epc_pages - other.epc_pages,
        )

    def clamp_floor(self) -> "ResourceVector":
        """Clamp all negative components to zero."""
        return ResourceVector._unchecked(
            max(0, self.cpu_millicores),
            max(0, self.memory_bytes),
            max(0, self.epc_pages),
        )

    # -- comparisons -----------------------------------------------------

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """Component-wise ``<=``: can this demand fit in *capacity*?"""
        return (
            self.cpu_millicores <= capacity.cpu_millicores
            and self.memory_bytes <= capacity.memory_bytes
            and self.epc_pages <= capacity.epc_pages
        )

    @property
    def is_nonnegative(self) -> bool:
        """Whether no component is negative."""
        return (
            self.cpu_millicores >= 0
            and self.memory_bytes >= 0
            and self.epc_pages >= 0
        )

    @property
    def requires_sgx(self) -> bool:
        """Whether this demand can only be met by an SGX-capable node."""
        return self.epc_pages > 0

    # -- derived metrics ---------------------------------------------------

    def utilization_of(self, capacity: "ResourceVector") -> Dict[str, float]:
        """Per-dimension utilisation ratios against *capacity*.

        Dimensions with zero capacity are reported as 0.0 when unused and
        ``inf`` when used — a demand on a dimension a node lacks.
        """

        def ratio(used: int, cap: int) -> float:
            if cap == 0:
                return float("inf") if used > 0 else 0.0
            return used / cap

        return {
            "cpu": ratio(self.cpu_millicores, capacity.cpu_millicores),
            "memory": ratio(self.memory_bytes, capacity.memory_bytes),
            "epc": ratio(self.epc_pages, capacity.epc_pages),
        }

    def dominant_utilization(self, capacity: "ResourceVector") -> float:
        """The max utilisation ratio across dimensions (binpack score)."""
        return max(self.utilization_of(capacity).values())

    def dominant_finite_utilization(
        self,
        capacity: "ResourceVector",
        extra: Optional["ResourceVector"] = None,
    ) -> float:
        """Max utilisation against *capacity*, skipping infinite ratios.

        The scheduler's node-load score: dimensions the node lacks
        (zero capacity under demand) are ignored rather than reported
        as ``inf``.  With *extra*, scores the hypothetical total
        ``self + extra`` — computed straight from the components, so
        per-candidate hot paths allocate no intermediate vector or
        dict.  Returns 0.0 when every dimension is ignored.
        """
        if extra is None:
            pairs = (
                (self.cpu_millicores, capacity.cpu_millicores),
                (self.memory_bytes, capacity.memory_bytes),
                (self.epc_pages, capacity.epc_pages),
            )
        else:
            pairs = (
                (self.cpu_millicores + extra.cpu_millicores,
                 capacity.cpu_millicores),
                (self.memory_bytes + extra.memory_bytes,
                 capacity.memory_bytes),
                (self.epc_pages + extra.epc_pages, capacity.epc_pages),
            )
        best = None
        for demand, limit in pairs:
            if limit == 0:
                if demand > 0:
                    continue  # dimension the node lacks: inf, ignored
                ratio = 0.0
            else:
                ratio = demand / limit
            if best is None or ratio > best:
                best = ratio
        return 0.0 if best is None else best

    def __repr__(self) -> str:
        return (
            f"ResourceVector(cpu={self.cpu_millicores}m, "
            f"mem={fmt_bytes(self.memory_bytes)}, "
            f"epc={self.epc_pages}p/{pages_to_mib(self.epc_pages):.1f}MiB)"
        )


_ZERO = ResourceVector(0, 0, 0)
