"""Minimal cgroup hierarchy model.

The paper's limit-enforcement channel (Section V-D) deliberately avoids a
full cgroup controller.  Instead it uses the **cgroup path as a pod
identifier**, because (i) it is readily available in Kubelet and in the
kernel, (ii) all containers of a pod share one cgroup path while distinct
pods never do, and (iii) the path exists *before* containers start, so the
driver knows a pod's limit at enclave-init time.

This module models just enough of the hierarchy to honour those three
properties: pod cgroups are created under a per-QoS-class parent before
any container process is attached, and processes are attached to their
pod's cgroup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import CgroupError

#: Kubernetes QoS classes determine the cgroup parent for a pod.
QOS_CLASSES = ("guaranteed", "burstable", "besteffort")


@dataclass
class Cgroup:
    """One node in the cgroup tree."""

    path: str
    parent: Optional["Cgroup"] = None
    children: Dict[str, "Cgroup"] = field(default_factory=dict)
    pids: Set[int] = field(default_factory=set)

    @property
    def name(self) -> str:
        """Last path component."""
        return self.path.rsplit("/", 1)[-1]

    def walk(self) -> List["Cgroup"]:
        """This cgroup and all descendants, depth-first."""
        found = [self]
        for child in self.children.values():
            found.extend(child.walk())
        return found

    def all_pids(self) -> Set[int]:
        """Every pid attached to this cgroup or any descendant."""
        pids: Set[int] = set()
        for group in self.walk():
            pids |= group.pids
        return pids


class CgroupHierarchy:
    """The cgroup filesystem of one node (``/sys/fs/cgroup``-ish)."""

    def __init__(self):
        self.root = Cgroup(path="")
        self._by_path: Dict[str, Cgroup] = {"": self.root}
        self._pid_home: Dict[int, Cgroup] = {}
        for qos in QOS_CLASSES:
            self.create(f"/kubepods/{qos}")

    # -- tree management ---------------------------------------------------

    def create(self, path: str) -> Cgroup:
        """Create a cgroup (and any missing ancestors). Idempotent."""
        path = self._normalize(path)
        if path in self._by_path:
            return self._by_path[path]
        parent_path, _, name = path.rpartition("/")
        parent = self.create(parent_path) if parent_path else self.root
        group = Cgroup(path=path, parent=parent)
        parent.children[name] = group
        self._by_path[path] = group
        return group

    def remove(self, path: str) -> None:
        """Remove an empty cgroup subtree.

        Raises if any attached process remains, matching kernel semantics.
        """
        path = self._normalize(path)
        group = self._by_path.get(path)
        if group is None:
            raise CgroupError(f"no such cgroup: {path!r}")
        if group is self.root:
            raise CgroupError("cannot remove the root cgroup")
        live = group.all_pids()
        if live:
            raise CgroupError(
                f"cgroup {path!r} still has {len(live)} attached pids"
            )
        for descendant in group.walk():
            self._by_path.pop(descendant.path, None)
        assert group.parent is not None
        group.parent.children.pop(group.name, None)

    def exists(self, path: str) -> bool:
        """Whether *path* names a live cgroup."""
        return self._normalize(path) in self._by_path

    def get(self, path: str) -> Cgroup:
        """Look a cgroup up by path."""
        path = self._normalize(path)
        group = self._by_path.get(path)
        if group is None:
            raise CgroupError(f"no such cgroup: {path!r}")
        return group

    # -- process attachment --------------------------------------------------

    def attach(self, pid: int, path: str) -> None:
        """Attach *pid* to a cgroup, migrating it if already attached."""
        group = self.get(path)
        old = self._pid_home.get(pid)
        if old is not None:
            old.pids.discard(pid)
        group.pids.add(pid)
        self._pid_home[pid] = group

    def detach(self, pid: int) -> None:
        """Remove *pid* from the hierarchy (process exit)."""
        group = self._pid_home.pop(pid, None)
        if group is not None:
            group.pids.discard(pid)

    def cgroup_of(self, pid: int) -> Optional[str]:
        """The cgroup path of *pid*, or ``None`` if unattached."""
        group = self._pid_home.get(pid)
        return group.path if group else None

    # -- pod helpers ----------------------------------------------------------

    def pod_cgroup_path(self, pod_uid: str, qos: str = "burstable") -> str:
        """The canonical cgroup path for a pod, Kubernetes-style."""
        if qos not in QOS_CLASSES:
            raise CgroupError(f"unknown QoS class {qos!r}")
        return f"/kubepods/{qos}/pod{pod_uid}"

    def create_pod_cgroup(self, pod_uid: str, qos: str = "burstable") -> str:
        """Create a pod's cgroup before its containers start; returns path."""
        path = self.pod_cgroup_path(pod_uid, qos)
        if self.exists(path):
            raise CgroupError(f"pod cgroup already exists: {path!r}")
        self.create(path)
        return path

    @staticmethod
    def _normalize(path: str) -> str:
        if not path.startswith("/") and path:
            raise CgroupError(f"cgroup paths must be absolute: {path!r}")
        return path.rstrip("/")
