"""Cluster substrate: resource vectors, cgroups, nodes and topologies.

Models the physical machines of the paper's 5-node testbed (Section VI-A)
and the kernel-level accounting structures (cgroups) the limit-enforcement
channel relies on (Section V-D).
"""

from .cgroups import Cgroup, CgroupHierarchy
from .node import Node, NodeSpec
from .resources import ResourceVector
from .topology import Cluster, paper_cluster, uniform_cluster

__all__ = [
    "Cgroup",
    "CgroupHierarchy",
    "Cluster",
    "Node",
    "NodeSpec",
    "ResourceVector",
    "paper_cluster",
    "uniform_cluster",
]
