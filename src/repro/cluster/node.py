"""Machine model: one physical node of the heterogeneous cluster.

A node bundles the hardware the orchestrator cares about — CPUs, RAM and,
on SGX machines, the EPC with its patched driver — plus the kernel-side
structures (cgroup hierarchy, pid namespace) that the paper's
limit-enforcement channel runs through.

Nodes know nothing about pods; the Kubelet (:mod:`repro.orchestrator.
kubelet`) layers pod admission on top.  The node only tracks *processes*
and their memory, which is what the probes measure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from ..constants import (
    EPC_TOTAL_BYTES,
    SGX_NODE_CPUS,
    SGX_NODE_MEMORY_BYTES,
    STANDARD_NODE_CPUS,
    STANDARD_NODE_MEMORY_BYTES,
)
from ..errors import NodeError
from ..sgx.driver import SgxDriver
from ..sgx.epc import EnclavePageCache
from .cgroups import CgroupHierarchy
from .resources import ResourceVector


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a machine's hardware."""

    name: str
    cpus: int
    memory_bytes: int
    sgx_capable: bool = False
    #: PRM size; only meaningful on SGX machines.  Fig. 7 sweeps this.
    epc_total_bytes: int = EPC_TOTAL_BYTES
    #: Whether the node's driver allows EPC over-commitment (paging).
    epc_allow_overcommit: bool = False
    #: Whether the driver enforces per-pod EPC limits (Fig. 11 toggle).
    enforce_epc_limits: bool = True
    #: SGX architecture revision: 1 (current) or 2 (EDMM, Sec. VI-G).
    sgx_version: int = 1

    @classmethod
    def standard(cls, name: str) -> "NodeSpec":
        """A Dell R330-class worker: Xeon E3-1270 v6, 64 GiB, no SGX."""
        return cls(
            name=name,
            cpus=STANDARD_NODE_CPUS,
            memory_bytes=STANDARD_NODE_MEMORY_BYTES,
            sgx_capable=False,
        )

    @classmethod
    def sgx(
        cls,
        name: str,
        epc_total_bytes: int = EPC_TOTAL_BYTES,
        enforce_epc_limits: bool = True,
        epc_allow_overcommit: bool = False,
        sgx_version: int = 1,
    ) -> "NodeSpec":
        """An i7-6700-class SGX worker: 8 GiB RAM, 128 MiB PRM."""
        return cls(
            name=name,
            cpus=SGX_NODE_CPUS,
            memory_bytes=SGX_NODE_MEMORY_BYTES,
            sgx_capable=True,
            epc_total_bytes=epc_total_bytes,
            enforce_epc_limits=enforce_epc_limits,
            epc_allow_overcommit=epc_allow_overcommit,
            sgx_version=sgx_version,
        )


class Node:
    """A live machine: hardware spec plus kernel state."""

    def __init__(self, spec: NodeSpec):
        self.spec = spec
        self.cgroups = CgroupHierarchy()
        self._pids = itertools.count(1000)
        self._process_memory: Dict[int, int] = {}
        if spec.sgx_capable:
            self.epc: Optional[EnclavePageCache] = EnclavePageCache(
                total_bytes=spec.epc_total_bytes,
                allow_overcommit=spec.epc_allow_overcommit,
            )
            self.driver: Optional[SgxDriver] = SgxDriver(
                self.epc,
                enforce_limits=spec.enforce_epc_limits,
                sgx_version=spec.sgx_version,
            )
        else:
            self.epc = None
            self.driver = None
        # Hardware never changes after construction, so the capacity
        # vector is built once; the scheduler reads it on every view
        # build of every pass (it is immutable, sharing is safe).
        self._capacity = ResourceVector(
            cpu_millicores=spec.cpus * 1000,
            memory_bytes=spec.memory_bytes,
            epc_pages=self.epc.total_pages if self.epc is not None else 0,
        )

    @property
    def name(self) -> str:
        """The node's cluster-unique name."""
        return self.spec.name

    @property
    def sgx_capable(self) -> bool:
        """Whether the node has a functioning SGX driver."""
        return self.driver is not None

    # -- capacity -------------------------------------------------------------

    @property
    def capacity(self) -> ResourceVector:
        """Allocatable resources, as advertised to the control plane.

        EPC capacity is the *usable* page count the device plugin exposes
        as individual resource items (Section V-A).
        """
        return self._capacity

    # -- process lifecycle ---------------------------------------------------

    def spawn_process(
        self, cgroup_path: str, memory_bytes: int = 0
    ) -> int:
        """Start a process inside *cgroup_path*; returns its pid.

        ``memory_bytes`` is the process's standard (non-EPC) resident
        memory, visible to the Heapster-like collector.
        """
        if memory_bytes < 0:
            raise NodeError(f"negative memory: {memory_bytes}")
        if not self.cgroups.exists(cgroup_path):
            raise NodeError(f"no such cgroup on {self.name}: {cgroup_path!r}")
        pid = next(self._pids)
        self.cgroups.attach(pid, cgroup_path)
        self._process_memory[pid] = memory_bytes
        if self.driver is not None:
            self.driver.register_process(pid, cgroup_path)
        return pid

    def set_process_memory(self, pid: int, memory_bytes: int) -> None:
        """Update a process's resident standard memory."""
        if pid not in self._process_memory:
            raise NodeError(f"unknown pid {pid} on {self.name}")
        if memory_bytes < 0:
            raise NodeError(f"negative memory: {memory_bytes}")
        self._process_memory[pid] = memory_bytes

    def kill_process(self, pid: int) -> None:
        """Terminate a process, tearing down its enclaves. Idempotent."""
        if pid not in self._process_memory:
            return
        if self.driver is not None:
            self.driver.unregister_process(pid)
        self.cgroups.detach(pid)
        del self._process_memory[pid]

    # -- measured usage (what probes report) ------------------------------

    def used_memory_bytes(self) -> int:
        """Total resident standard memory across all processes."""
        return sum(self._process_memory.values())

    def cgroup_memory_bytes(self, cgroup_path: str) -> int:
        """Resident standard memory of one cgroup subtree."""
        group = self.cgroups.get(cgroup_path)
        memory = self._process_memory
        if not group.children:
            # Pod cgroups are leaves: their subtree pid set is their
            # own, so the walk/union of ``all_pids`` is skipped on the
            # per-pod-per-probe-tick path.
            total = 0
            for pid in group.pids:
                total += memory.get(pid, 0)
            return total
        return sum(memory.get(pid, 0) for pid in group.all_pids())

    def used_epc_pages(self) -> int:
        """EPC pages currently allocated on this node (0 if non-SGX)."""
        return self.epc.allocated_pages if self.epc is not None else 0

    def free_epc_pages(self) -> int:
        """EPC pages free on this node (0 if non-SGX)."""
        return self.epc.free_pages if self.epc is not None else 0

    def __repr__(self) -> str:
        kind = "sgx" if self.sgx_capable else "standard"
        return f"Node({self.name!r}, {kind}, capacity={self.capacity})"
