"""Cluster construction: node inventories and the paper's testbed.

The evaluation cluster (Section VI-A) has five machines: three Dell
PowerEdge R330 (Xeon E3-1270 v6, 64 GiB RAM) of which one is the
Kubernetes master and two are workers, plus two SGX-enabled i7-6700
machines (8 GiB RAM, 128 MiB PRM each).  :func:`paper_cluster` builds the
*worker* inventory of that testbed; the master runs no user pods and is
therefore not part of the schedulable cluster.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List

from ..constants import (
    EPC_TOTAL_BYTES,
    SGX_WORKER_COUNT,
    STANDARD_WORKER_COUNT,
)
from ..errors import ClusterError
from .node import Node, NodeSpec
from .resources import ResourceVector


class Cluster:
    """A named collection of nodes with aggregate-capacity helpers."""

    def __init__(self, nodes: Iterable[Node] = ()):
        self._nodes: Dict[str, Node] = {}
        for node in nodes:
            self.add_node(node)

    # -- membership ----------------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Register a node; names must be unique."""
        if node.name in self._nodes:
            raise ClusterError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node

    def remove_node(self, name: str) -> Node:
        """Remove and return a node."""
        node = self._nodes.pop(name, None)
        if node is None:
            raise ClusterError(f"no such node {name!r}")
        return node

    def node(self, name: str) -> Node:
        """Look a node up by name."""
        node = self._nodes.get(name)
        if node is None:
            raise ClusterError(f"no such node {name!r}")
        return node

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def nodes(self) -> List[Node]:
        """All nodes in registration order."""
        return list(self._nodes.values())

    @property
    def sgx_nodes(self) -> List[Node]:
        """Nodes with a functioning SGX driver."""
        return [n for n in self._nodes.values() if n.sgx_capable]

    @property
    def standard_nodes(self) -> List[Node]:
        """Nodes without SGX support."""
        return [n for n in self._nodes.values() if not n.sgx_capable]

    # -- aggregate capacity -----------------------------------------------

    def total_capacity(self) -> ResourceVector:
        """Sum of node capacities."""
        total = ResourceVector.zero()
        for node in self._nodes.values():
            total = total + node.capacity
        return total

    def total_epc_pages(self) -> int:
        """Total usable EPC pages across SGX nodes."""
        return sum(n.capacity.epc_pages for n in self.sgx_nodes)


def paper_cluster(
    epc_total_bytes: int = EPC_TOTAL_BYTES,
    enforce_epc_limits: bool = True,
    epc_allow_overcommit: bool = False,
    standard_workers: int = STANDARD_WORKER_COUNT,
    sgx_workers: int = SGX_WORKER_COUNT,
    sgx_version: int = 1,
) -> Cluster:
    """The paper's worker inventory: 2 standard + 2 SGX machines.

    ``epc_total_bytes`` parameterises the PRM size for Fig. 7's what-if
    sweep over hypothetical SGX 2 hardware.
    """
    nodes: List[Node] = []
    for i in range(standard_workers):
        nodes.append(Node(NodeSpec.standard(f"worker-{i}")))
    for i in range(sgx_workers):
        nodes.append(
            Node(
                NodeSpec.sgx(
                    f"sgx-worker-{i}",
                    epc_total_bytes=epc_total_bytes,
                    enforce_epc_limits=enforce_epc_limits,
                    epc_allow_overcommit=epc_allow_overcommit,
                    sgx_version=sgx_version,
                )
            )
        )
    return Cluster(nodes)


def uniform_cluster(
    count: int,
    spec_factory=NodeSpec.standard,
    name_prefix: str = "node",
    **spec_kwargs,
) -> Cluster:
    """A homogeneous cluster of *count* nodes built by *spec_factory*."""
    if count <= 0:
        raise ClusterError(f"cluster needs at least one node, got {count}")
    nodes = [
        Node(spec_factory(f"{name_prefix}-{i}", **spec_kwargs))
        for i in range(count)
    ]
    return Cluster(nodes)
