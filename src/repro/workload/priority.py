"""Two-tier tenant mix: the priority subsystem's canonical workload.

The multi-tenant contention scenario the policy layer exists for: the
same scaled Borg trace the paper replays, split into a small
*latency-critical* tenant and a bulk *best-effort* tenant.  Without a
preemption policy the high tier queues behind whatever the batch tier
already committed to the nodes; with one (e.g. ``cheapest-victims``)
its pods evict the cheapest burstable victims and start immediately —
the ``BENCH_preemption.json`` sweep quantifies the waiting-time gap.

Tier mechanics:

* the **high tier** (a seeded, exact-count subset of the jobs) gets
  ``high_priority`` and, by default, explicit ``limits == requests`` —
  guaranteed QoS, so high-tier pods are never eviction victims
  themselves;
* the **low tier** keeps ``low_priority`` and the trace pods' usual
  requests-only shape — burstable QoS, evictable by any higher tier.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np

from ..errors import TraceError
from ..orchestrator.api import DEFAULT_SCHEDULER, ResourceRequirements
from ..registry import register_workload
from ..trace.schema import Trace
from .stress import SubmissionPlan, materialize_trace

#: Decorrelates the tier draw from ``materialize_trace``'s SGX draw,
#: which consumes the same seed.
_TIER_SEED_STREAM = 0x7071


@register_workload("priority-mix")
def priority_mix_plans(
    cluster,
    trace: Trace,
    *,
    sgx_fraction: float = 0.0,
    seed: int = 0,
    scheduler_name: str = DEFAULT_SCHEDULER,
    high_fraction: float = 0.2,
    high_priority: int = 100,
    low_priority: int = 0,
    high_guaranteed: bool = True,
    **options,
) -> List[SubmissionPlan]:
    """Registry entry: the trace as a latency-critical/batch tenant mix.

    ``high_fraction`` of the jobs (seeded, exact count, independent of
    the SGX designation) join the high tier.  ``high_priority`` /
    ``low_priority`` accept class names at the scenario level (the
    engine resolves them before the factory runs).  Extra ``options``
    flow to :func:`repro.workload.stress.materialize_trace`.
    """
    if not 0.0 <= high_fraction <= 1.0:
        raise TraceError(
            f"high_fraction outside [0, 1]: {high_fraction}"
        )
    if high_priority <= low_priority:
        raise TraceError(
            f"high_priority ({high_priority}) must exceed "
            f"low_priority ({low_priority})"
        )
    plans = materialize_trace(
        trace,
        sgx_fraction=sgx_fraction,
        seed=seed,
        scheduler_name=scheduler_name,
        priority=low_priority,
        **options,
    )
    n_high = int(round(high_fraction * len(plans)))
    rng = np.random.default_rng((seed, _TIER_SEED_STREAM))
    high_indices = set(
        rng.choice(len(plans), size=n_high, replace=False).tolist()
        if n_high
        else []
    )
    mixed: List[SubmissionPlan] = []
    for index, plan in enumerate(plans):
        tier_high = index in high_indices
        spec = plan.spec
        labels = dict(spec.labels)
        labels["tier"] = "high" if tier_high else "low"
        if tier_high:
            resources = spec.resources
            if high_guaranteed:
                # Pin limits to requests: guaranteed QoS, so the high
                # tier can preempt but never be preempted.
                resources = ResourceRequirements(
                    requests=resources.requests,
                    limits=resources.requests,
                )
            spec = replace(
                spec,
                priority=high_priority,
                labels=labels,
                resources=resources,
            )
        else:
            spec = replace(spec, priority=low_priority, labels=labels)
        mixed.append(replace(plan, spec=spec))
    return mixed
