"""Malicious containers: the adversarial workload of Section VI-F.

"The modus operandi of these containers is to declare 1 page of EPC as
limit and request in their pod specification, but actually use way more:
up to 50 % of the total EPC available on the machine they execute on.
We deploy as many of them as there are SGX-enabled nodes in the
cluster."

With limit enforcement on, the driver denies their enclave at EINIT and
they die immediately; with enforcement off, they squat EPC that honest
pods then contend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..cluster.resources import ResourceVector
from ..cluster.topology import Cluster
from ..errors import TraceError
from ..orchestrator.api import (
    DEFAULT_SCHEDULER,
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
)
from ..registry import register_workload
from .stress import SubmissionPlan


@dataclass(frozen=True)
class MaliciousConfig:
    """Parameters of the malicious deployment.

    ``epc_occupancy`` is the fraction of a node's usable EPC each
    malicious container actually allocates (Fig. 11 uses 25 % and 50 %).
    ``duration_seconds`` defaults to effectively the whole experiment:
    the squatters never leave on their own.
    """

    epc_occupancy: float = 0.5
    declared_pages: int = 1
    duration_seconds: float = 6 * 3600.0
    submit_time: float = 0.0

    def __post_init__(self):
        if not 0.0 < self.epc_occupancy <= 1.0:
            raise TraceError(
                f"occupancy outside (0, 1]: {self.epc_occupancy}"
            )
        if self.declared_pages < 1:
            raise TraceError("malicious pods must declare at least 1 page")


@register_workload("malicious")
def malicious_plans(
    cluster: Cluster,
    trace=None,
    *,
    sgx_fraction: float = 0.0,
    seed: int = 0,
    scheduler_name: str = DEFAULT_SCHEDULER,
    config: MaliciousConfig = None,
    **options,
) -> List[SubmissionPlan]:
    """Registry entry: the Section VI-F squatter deployment alone.

    As a scenario's primary workload this deploys *only* the malicious
    containers (one per SGX node); a trace replay with squatters on
    the side keeps using ``Scenario(malicious=MaliciousConfig(...))``,
    which composes this entry with the trace workload.  ``trace``,
    ``sgx_fraction`` and ``seed`` are part of the uniform factory
    signature but unused — the deployment is derived from the cluster
    inventory.  Options (``epc_occupancy``, ``declared_pages``, ...)
    feed :class:`MaliciousConfig` unless a ``config`` is given.
    """
    if config is None:
        config = MaliciousConfig(**options)
    elif options:
        raise TraceError(
            "pass either a MaliciousConfig or its fields, not both"
        )
    return malicious_submissions(
        cluster, config, scheduler_name=scheduler_name
    )


#: The deployment is derived from the cluster inventory; Scenario.run
#: skips the trace synthesis entirely for this workload.
malicious_plans.consumes_trace = False


def malicious_submissions(
    cluster: Cluster,
    config: MaliciousConfig,
    scheduler_name: str = DEFAULT_SCHEDULER,
) -> List[SubmissionPlan]:
    """One malicious pod per SGX node, per the paper's deployment."""
    plans: List[SubmissionPlan] = []
    for index, node in enumerate(cluster.sgx_nodes):
        assert node.epc is not None
        actual_pages = max(
            config.declared_pages,
            int(node.epc.total_pages * config.epc_occupancy),
        )
        spec = PodSpec(
            name=f"malicious-{index}",
            resources=ResourceRequirements(
                requests=ResourceVector(epc_pages=config.declared_pages)
            ),
            scheduler_name=scheduler_name,
            workload=WorkloadProfile(
                duration_seconds=config.duration_seconds,
                memory_bytes=0,
                epc_pages=actual_pages,
            ),
            labels={"origin": "malicious"},
        )
        plans.append(
            SubmissionPlan(
                submit_time=config.submit_time,
                spec=spec,
                job_id=-(index + 1),
                is_sgx=True,
            )
        )
    return plans
