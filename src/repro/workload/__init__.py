"""Workload materialisation: turning trace jobs into deployable pods.

The paper materialises trace jobs as containers running STRESS-SGX — a
fork of stress-ng with an EPC stressor (Section VI-C): standard jobs use
the virtual-memory stressor, SGX jobs the EPC stressor, each allocating
exactly the memory the trace reports.  :mod:`repro.workload.stress`
models those stressors; :mod:`repro.workload.malicious` builds the
under-declaring containers of Section VI-F.
"""

from .hybrid import HybridStressor, hybrid_plans, hybrid_pod_spec
from .malicious import (
    MaliciousConfig,
    malicious_plans,
    malicious_submissions,
)
from .priority import priority_mix_plans
from .stress import (
    EpcStressor,
    SubmissionPlan,
    VmStressor,
    materialize_trace,
    stress_plans,
)

__all__ = [
    "EpcStressor",
    "HybridStressor",
    "MaliciousConfig",
    "SubmissionPlan",
    "VmStressor",
    "hybrid_plans",
    "hybrid_pod_spec",
    "malicious_plans",
    "malicious_submissions",
    "materialize_trace",
    "priority_mix_plans",
    "stress_plans",
]
