"""Hybrid trusted/untrusted workloads (the paper's future work).

The conclusion plans support for "hybrid processes running trusted and
untrusted code".  Where the paper's evaluation assumes jobs execute
"entirely in enclaves, minus a part responsible for bootstrapping"
(Section IV), a hybrid job keeps a substantial *untrusted* working set
in standard memory next to its enclave — think of a database whose
query engine is enclave-protected while its page cache is not.

Scheduling-wise this is a genuinely two-dimensional bin-packing
problem on the SGX nodes only: the enclave part pins the job to SGX
hardware, while the untrusted part competes for those nodes' small RAM
(8 GiB on the paper's i7 machines, versus 64 GiB on the standard
workers).  Past a certain untrusted share, RAM — not the EPC — becomes
the binding constraint and EPC capacity strands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..cluster.resources import ResourceVector
from ..errors import TraceError
from ..orchestrator.api import (
    DEFAULT_SCHEDULER,
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
)
from ..registry import register_workload
from ..units import gib, mib
from ..units import pages as bytes_to_pages
from .stress import SubmissionPlan


@dataclass(frozen=True)
class HybridStressor:
    """A process pinning both enclave pages and untrusted RAM."""

    epc_bytes: int
    memory_bytes: int

    def __post_init__(self):
        if self.epc_bytes <= 0:
            raise TraceError(
                "hybrid jobs need a trusted part; use VmStressor instead"
            )
        if self.memory_bytes < 0:
            raise TraceError(f"negative memory: {self.memory_bytes}")

    def profile(self, duration_seconds: float) -> WorkloadProfile:
        """The workload this stressor produces when run for *duration*."""
        return WorkloadProfile(
            duration_seconds=duration_seconds,
            memory_bytes=self.memory_bytes,
            epc_pages=bytes_to_pages(self.epc_bytes),
        )


def hybrid_pod_spec(
    name: str,
    duration_seconds: float,
    declared_epc_bytes: int,
    declared_memory_bytes: int,
    scheduler_name: str = DEFAULT_SCHEDULER,
) -> PodSpec:
    """A pod requesting both EPC pages and standard memory.

    Declared values double as the actual working set (honest hybrid
    jobs); the scheduler must satisfy *both* dimensions on one SGX
    node.
    """
    stressor = HybridStressor(
        epc_bytes=declared_epc_bytes, memory_bytes=declared_memory_bytes
    )
    return PodSpec(
        name=name,
        resources=ResourceRequirements(
            requests=ResourceVector(
                memory_bytes=declared_memory_bytes,
                epc_pages=bytes_to_pages(declared_epc_bytes),
            )
        ),
        scheduler_name=scheduler_name,
        workload=stressor.profile(duration_seconds),
        labels={"origin": "hybrid"},
    )


@register_workload("hybrid")
def hybrid_plans(
    cluster,
    trace=None,
    *,
    sgx_fraction: float = 1.0,
    seed: int = 0,
    scheduler_name: str = DEFAULT_SCHEDULER,
    n_jobs: int = 60,
    window_seconds: float = 900.0,
    min_duration_seconds: float = 60.0,
    max_duration_seconds: float = 180.0,
    min_epc_bytes: int = mib(6),
    max_epc_bytes: int = mib(20),
    memory_bytes: int = int(gib(1)),
) -> List[SubmissionPlan]:
    """Registry entry: a seeded hybrid trusted/untrusted population.

    The ``ext-hybrid`` experiment's workload as a reusable scenario
    ingredient: *n_jobs* jobs arrive uniformly over *window_seconds*,
    each pinning a small enclave plus ``memory_bytes`` of untrusted
    RAM on the same SGX node.  ``trace`` and ``sgx_fraction`` are part
    of the uniform factory signature but unused — every hybrid job
    requires SGX by construction.
    """
    if n_jobs <= 0:
        raise TraceError(f"n_jobs must be positive: {n_jobs}")
    rng = np.random.default_rng(seed)
    submit_times = np.sort(rng.uniform(0.0, window_seconds, size=n_jobs))
    plans: List[SubmissionPlan] = []
    for index in range(n_jobs):
        duration = float(
            rng.uniform(min_duration_seconds, max_duration_seconds)
        )
        spec = hybrid_pod_spec(
            f"hybrid-{index}",
            duration_seconds=duration,
            declared_epc_bytes=int(
                rng.uniform(min_epc_bytes, max_epc_bytes)
            ),
            declared_memory_bytes=memory_bytes,
            scheduler_name=scheduler_name,
        )
        plans.append(
            SubmissionPlan(
                submit_time=float(submit_times[index]),
                spec=spec,
                job_id=index,
                is_sgx=True,
            )
        )
    return plans


#: The population is synthesised from the seed; Scenario.run skips the
#: trace synthesis entirely for this workload.
hybrid_plans.consumes_trace = False
