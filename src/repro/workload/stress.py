"""STRESS-SGX / stress-ng job models and trace materialisation.

Section VI-B/VI-C: each trace job becomes a container around STRESS-SGX.
The *assigned memory* fraction is what the job declares to Kubernetes;
the *maximal memory usage* fraction is what the stressor actually
allocates.  Fractions map to bytes with the paper's multipliers — 32 GiB
for standard jobs, the usable EPC size (93.5 MiB) for SGX jobs — chosen
so both populations exercise their respective memory in comparable
relative terms.

SGX designation is arbitrary in the paper ("we arbitrarily designate a
subset of trace jobs as SGX-enabled"); :func:`materialize_trace` draws
that subset with a seeded RNG so runs are reproducible, taking the SGX
percentage 0..100 % that Fig. 8 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..cluster.resources import ResourceVector
from ..constants import (
    SGX_MEMORY_MULTIPLIER_BYTES,
    STANDARD_MEMORY_MULTIPLIER_BYTES,
)
from ..errors import TraceError
from ..orchestrator.api import (
    DEFAULT_SCHEDULER,
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
)
from ..registry import register_workload
from ..trace.schema import Trace
from ..units import pages as bytes_to_pages


@dataclass(frozen=True)
class VmStressor:
    """stress-ng's virtual-memory stressor: pins standard RAM."""

    target_bytes: int

    def profile(self, duration_seconds: float) -> WorkloadProfile:
        """The workload this stressor produces when run for *duration*."""
        return WorkloadProfile(
            duration_seconds=duration_seconds,
            memory_bytes=self.target_bytes,
            epc_pages=0,
        )


@dataclass(frozen=True)
class EpcStressor:
    """STRESS-SGX's EPC stressor: pins enclave memory."""

    target_bytes: int

    def profile(self, duration_seconds: float) -> WorkloadProfile:
        """The workload this stressor produces when run for *duration*."""
        return WorkloadProfile(
            duration_seconds=duration_seconds,
            memory_bytes=0,
            epc_pages=bytes_to_pages(self.target_bytes),
        )


@dataclass(frozen=True)
class SubmissionPlan:
    """One pod submission: when, and what."""

    submit_time: float
    spec: PodSpec
    job_id: int
    is_sgx: bool


@register_workload("stress")
def stress_plans(
    cluster,
    trace: Trace,
    *,
    sgx_fraction: float = 0.0,
    seed: int = 0,
    scheduler_name: str = DEFAULT_SCHEDULER,
    **options,
) -> List[SubmissionPlan]:
    """Registry entry: the paper's STRESS-SGX trace materialisation.

    The default workload of every scenario.  ``cluster`` is part of
    the uniform workload-factory signature but unused — trace jobs are
    sized by the paper's multipliers, not by the inventory (pass
    ``standard_multiplier_bytes``/``sgx_multiplier_bytes`` via
    ``workload_options`` to change that).
    """
    if trace is None:
        raise TraceError("the 'stress' workload replays a trace")
    return materialize_trace(
        trace,
        sgx_fraction=sgx_fraction,
        seed=seed,
        scheduler_name=scheduler_name,
        **options,
    )


def materialize_trace(
    trace: Trace,
    sgx_fraction: float = 0.0,
    seed: int = 0,
    scheduler_name: str = DEFAULT_SCHEDULER,
    standard_multiplier_bytes: int = STANDARD_MEMORY_MULTIPLIER_BYTES,
    sgx_multiplier_bytes: int = SGX_MEMORY_MULTIPLIER_BYTES,
    priority: int = 0,
) -> List[SubmissionPlan]:
    """Turn a scaled trace into timed pod submissions.

    ``sgx_fraction`` of the jobs (chosen with the seeded RNG, exact
    count) become EPC-stressor pods; the rest are VM-stressor pods.
    Declared requests come from the job's *assigned* fraction, the
    stressor's actual allocation from its *max usage* fraction.
    ``priority`` stamps every pod with one scheduling tier (scenarios
    may pass a class name; the engine resolves it to the integer
    before it reaches here).
    """
    if not 0.0 <= sgx_fraction <= 1.0:
        raise TraceError(f"sgx fraction outside [0, 1]: {sgx_fraction}")
    jobs = trace.jobs
    n_sgx = int(round(sgx_fraction * len(jobs)))
    rng = np.random.default_rng(seed)
    sgx_indices = set(
        rng.choice(len(jobs), size=n_sgx, replace=False).tolist()
        if n_sgx
        else []
    )
    plans: List[SubmissionPlan] = []
    for index, job in enumerate(jobs):
        is_sgx = index in sgx_indices
        if is_sgx:
            declared = ResourceVector(
                epc_pages=bytes_to_pages(
                    int(job.assigned_memory * sgx_multiplier_bytes)
                )
            )
            stressor_profile = EpcStressor(
                target_bytes=int(job.max_memory * sgx_multiplier_bytes)
            ).profile(job.duration)
            name = f"sgx-job-{job.job_id}"
        else:
            declared = ResourceVector(
                memory_bytes=int(
                    job.assigned_memory * standard_multiplier_bytes
                )
            )
            stressor_profile = VmStressor(
                target_bytes=int(job.max_memory * standard_multiplier_bytes)
            ).profile(job.duration)
            name = f"std-job-{job.job_id}"
        spec = PodSpec(
            name=name,
            resources=ResourceRequirements(requests=declared),
            scheduler_name=scheduler_name,
            workload=stressor_profile,
            labels={"origin": "borg-trace", "job_id": str(job.job_id)},
            priority=priority,
        )
        plans.append(
            SubmissionPlan(
                submit_time=job.submit_time,
                spec=spec,
                job_id=job.job_id,
                is_sgx=is_sgx,
            )
        )
    return plans
