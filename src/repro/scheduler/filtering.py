"""Feasibility filtering: the scheduler's first phase.

Section IV: "The scheduler then combines the two kinds of data to filter
out job-node combinations that cannot be satisfied, either due to
hardware compatibility (i.e., SGX-enabled job on a non-SGX node), or if
the job requests would saturate a node."
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from ..orchestrator.pod import Pod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .base import NodeView


class FilterReason(enum.Enum):
    """Why a node was rejected for a pod."""

    HARDWARE_INCOMPATIBLE = "sgx job on a non-sgx node"
    WOULD_SATURATE = "requests exceed available resources"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def feasible_nodes(
    pod: Pod, views: Sequence["NodeView"]
) -> Tuple[List["NodeView"], Dict[str, FilterReason]]:
    """Split *views* into feasible candidates and rejections for *pod*.

    Returns the candidates (in input order) and a map of node name to
    rejection reason for the rest.  Callers that only need the
    candidates should use :func:`feasible_candidates`, which skips the
    per-node rejection bookkeeping.
    """
    requests = pod.spec.resources.requests
    candidates: List["NodeView"] = []
    rejections: Dict[str, FilterReason] = {}
    for view in views:
        if pod.requires_sgx and not view.sgx_capable:
            rejections[view.name] = FilterReason.HARDWARE_INCOMPATIBLE
            continue
        if not requests.fits_within(view.available):
            rejections[view.name] = FilterReason.WOULD_SATURATE
            continue
        candidates.append(view)
    return candidates, rejections


def feasible_candidates(
    pod: Pod, views: Sequence["NodeView"]
) -> List["NodeView"]:
    """The feasible candidates of :func:`feasible_nodes`, and only them.

    Identical membership and order, without building the rejection map
    the scheduling pass immediately discards — the diagnostic variant
    exists for API users who want to explain a deferral.
    """
    requests = pod.spec.resources.requests
    needs_sgx = pod.requires_sgx
    cpu = requests.cpu_millicores
    memory = requests.memory_bytes
    epc = requests.epc_pages
    candidates: List["NodeView"] = []
    append = candidates.append
    # Component comparisons against capacity-minus-used, inlined: this
    # runs once per node per pod per pass, and materialising the
    # ``available`` vector per probe dominated the filter phase.  A
    # zero request fits an overcommitted dimension (available floors
    # at zero), hence the ``== 0`` escapes.
    for view in views:
        if needs_sgx and not view.sgx_capable:
            continue
        capacity = view.capacity
        used = view.used
        if (
            (cpu == 0 or cpu <= capacity.cpu_millicores - used.cpu_millicores)
            and (
                memory == 0
                or memory <= capacity.memory_bytes - used.memory_bytes
            )
            and (epc == 0 or epc <= capacity.epc_pages - used.epc_pages)
        ):
            append(view)
    return candidates


def can_ever_fit(pod: Pod, views: Sequence["NodeView"]) -> bool:
    """Whether some node's *total capacity* could ever host *pod*.

    Pods failing this test are permanently unschedulable: no amount of
    waiting frees enough resources.  The orchestrator rejects them so the
    queue can drain (cf. the Fig. 7 sweep, where small EPC sizes make the
    largest enclave jobs unsatisfiable).
    """
    requests = pod.spec.resources.requests
    for view in views:
        if pod.requires_sgx and not view.sgx_capable:
            continue
        if requests.fits_within(view.capacity):
            return True
    return False


def prefer_non_sgx(
    pod: Pod, candidates: Sequence["NodeView"]
) -> List["NodeView"]:
    """Apply the paper's node-preservation rule to *candidates*.

    Both strategies "only resort to SGX-enabled nodes for non-SGX jobs
    when no other choice is possible" (Section IV).  For standard pods,
    return only the non-SGX candidates when any exist; SGX pods see all
    candidates unchanged (the filter already removed non-SGX nodes).
    """
    if pod.requires_sgx:
        return list(candidates)
    standard = [view for view in candidates if not view.sgx_capable]
    return standard if standard else list(candidates)
