"""Scheduler framework: node views, measured-usage snapshots, FCFS pass.

The pieces every strategy shares:

* :class:`NodeView` — the scheduler's picture of one node: capacity,
  *measured* usage (from the TSDB) and *committed* declared requests.
* :class:`ClusterStateService` — builds node views by running the
  paper's sliding-window InfluxQL queries (Listing 1's inner query shape)
  against the monitoring database, falling back to declared requests for
  pods too young to have samples.
* :class:`Scheduler` — the non-preemptive FCFS scheduling pass shared by
  all strategies; concrete strategies implement :meth:`Scheduler._select`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.resources import ResourceVector
from ..constants import METRICS_WINDOW_SECONDS
from ..errors import SchedulingError
from ..monitoring.influxql import execute_query, parse_query
from ..monitoring.heapster import MEASUREMENT_MEMORY
from ..monitoring.probe import MEASUREMENT_EPC
from ..orchestrator.kubelet import Kubelet
from ..orchestrator.pod import Pod
from .filtering import can_ever_fit, feasible_nodes, prefer_non_sgx


@dataclass
class NodeView:
    """The scheduler's view of one node at pass time.

    ``used`` reflects measured usage plus in-pass reservations; the
    strategies mutate it via :meth:`reserve` as they assign pods so one
    pass never double-books a node.
    """

    name: str
    sgx_capable: bool
    capacity: ResourceVector
    used: ResourceVector = field(default_factory=ResourceVector.zero)
    committed: ResourceVector = field(default_factory=ResourceVector.zero)

    @property
    def available(self) -> ResourceVector:
        """Capacity minus used, floored at zero."""
        return (self.capacity - self.used).clamp_floor()

    @property
    def load(self) -> float:
        """Scalar node load: the dominant utilisation across dimensions.

        Ignores dimensions the node does not have (EPC on standard
        nodes), so heterogeneous nodes compare sensibly.
        """
        ratios = [
            ratio
            for ratio in self.used.utilization_of(self.capacity).values()
            if ratio != float("inf")
        ]
        return max(ratios) if ratios else 0.0

    def reserve(self, requests: ResourceVector) -> None:
        """Account an in-pass assignment against this node."""
        self.used = self.used + requests
        self.committed = self.committed + requests

    def load_after(self, requests: ResourceVector) -> float:
        """The load this node would have after placing *requests*."""
        hypothetical = NodeView(
            name=self.name,
            sgx_capable=self.sgx_capable,
            capacity=self.capacity,
            used=self.used + requests,
            committed=self.committed,
        )
        return hypothetical.load


@dataclass(frozen=True)
class Assignment:
    """One scheduling decision: pod onto node."""

    pod: Pod
    node_name: str


@dataclass
class SchedulingOutcome:
    """Everything one scheduling pass decided."""

    assignments: List[Assignment] = field(default_factory=list)
    #: Pods that can never fit any node and should be rejected.
    unschedulable: List[Pod] = field(default_factory=list)
    #: Pods left pending this pass (no room right now).
    deferred: List[Pod] = field(default_factory=list)


#: Inner query of the paper's Listing 1, parameterised by measurement:
#: the per-pod maximum over the sliding window, tagged by node.
_PER_POD_QUERY = (
    'SELECT MAX(value) AS usage FROM "{measurement}" '
    "WHERE value <> 0 AND time >= now() - {window}s "
    "GROUP BY pod_name, nodename"
)


class ClusterStateService:
    """Builds :class:`NodeView` snapshots from Kubelets plus the TSDB."""

    def __init__(
        self,
        kubelets: Sequence[Kubelet],
        db,
        window_seconds: float = METRICS_WINDOW_SECONDS,
    ):
        self.kubelets = list(kubelets)
        self.db = db
        self.window_seconds = window_seconds
        self._epc_query = parse_query(
            _PER_POD_QUERY.format(
                measurement=MEASUREMENT_EPC, window=window_seconds
            )
        )
        self._memory_query = parse_query(
            _PER_POD_QUERY.format(
                measurement=MEASUREMENT_MEMORY, window=window_seconds
            )
        )

    def _measured_usage(self, now: float) -> Dict[Tuple[str, str], ResourceVector]:
        """Per (node, pod) measured usage from the sliding-window queries."""
        measured: Dict[Tuple[str, str], ResourceVector] = {}
        for row in execute_query(self._memory_query, self.db, now):
            key = (row.get("nodename"), row.get("pod_name"))
            vector = measured.get(key, ResourceVector.zero())
            measured[key] = vector + ResourceVector(
                memory_bytes=int(row.get("usage", 0.0))
            )
        for row in execute_query(self._epc_query, self.db, now):
            key = (row.get("nodename"), row.get("pod_name"))
            vector = measured.get(key, ResourceVector.zero())
            measured[key] = vector + ResourceVector(
                epc_pages=int(row.get("usage", 0.0))
            )
        return measured

    def build_views(self, now: float) -> List[NodeView]:
        """One :class:`NodeView` per node, in Kubelet registration order.

        Each admitted pod contributes its measured usage when the window
        holds a sample for it, and its declared requests otherwise (pods
        younger than one probe period would be invisible to a purely
        measured view — this is the reservation that prevents stampedes
        between a bind and its first sample).
        """
        measured = self._measured_usage(now)
        views: List[NodeView] = []
        for kubelet in self.kubelets:
            node = kubelet.node
            used = ResourceVector.zero()
            for pod in kubelet.admitted_pods():
                key = (node.name, pod.name)
                sample = measured.get(key)
                if sample is not None:
                    # CPU is not measured; carry the declared value.
                    used = used + ResourceVector(
                        cpu_millicores=pod.spec.resources.requests.cpu_millicores,
                        memory_bytes=sample.memory_bytes,
                        epc_pages=sample.epc_pages,
                    )
                else:
                    used = used + pod.spec.resources.requests
            views.append(
                NodeView(
                    name=node.name,
                    sgx_capable=kubelet.advertised_epc_pages() > 0,
                    capacity=node.capacity,
                    used=used,
                    committed=kubelet.committed_requests(),
                )
            )
        return views


class Scheduler(abc.ABC):
    """Shared FCFS scheduling pass; strategies pick the node.

    Parameters
    ----------
    use_measured:
        When ``True`` (the paper's system), feasibility is judged against
        the measured view; when ``False``, against declared commitments
        only (the Kubernetes-default baseline and an ablation toggle).
    strict_fcfs:
        When ``True``, a pod that cannot be placed blocks all younger
        pods (head-of-line blocking).  Defaults to the Kubernetes-like
        behaviour of skipping unschedulable pods while keeping FCFS
        *priority*.
    preserve_sgx_nodes:
        The paper's node-preservation rule: standard jobs only land on
        SGX nodes when no other node fits (Section IV).  Exposed as a
        toggle for the ablation benchmark.
    """

    name = "abstract"

    def __init__(
        self,
        use_measured: bool = True,
        strict_fcfs: bool = False,
        preserve_sgx_nodes: bool = True,
    ):
        self.use_measured = use_measured
        self.strict_fcfs = strict_fcfs
        self.preserve_sgx_nodes = preserve_sgx_nodes

    def schedule(
        self, pending: Sequence[Pod], views: Sequence[NodeView], now: float
    ) -> SchedulingOutcome:
        """Run one pass over *pending* (oldest first) against *views*."""
        outcome = SchedulingOutcome()
        views = list(views)
        if not self.use_measured:
            for view in views:
                view.used = view.committed
        for pod in pending:
            if not can_ever_fit(pod, views):
                outcome.unschedulable.append(pod)
                continue
            candidates, _ = feasible_nodes(pod, views)
            if self.preserve_sgx_nodes:
                candidates = prefer_non_sgx(pod, candidates)
            if not candidates:
                outcome.deferred.append(pod)
                if self.strict_fcfs:
                    remaining = list(pending)
                    tail = remaining[remaining.index(pod) + 1:]
                    outcome.deferred.extend(tail)
                    break
                continue
            chosen = self._select(pod, candidates, views)
            if chosen is None:
                outcome.deferred.append(pod)
                continue
            if not pod.spec.resources.requests.fits_within(chosen.available):
                raise SchedulingError(
                    f"{self.name} selected saturated node {chosen.name} "
                    f"for pod {pod.name}"
                )
            chosen.reserve(pod.spec.resources.requests)
            outcome.assignments.append(
                Assignment(pod=pod, node_name=chosen.name)
            )
        return outcome

    @abc.abstractmethod
    def _select(
        self,
        pod: Pod,
        candidates: Sequence[NodeView],
        views: Sequence[NodeView],
    ) -> Optional[NodeView]:
        """Pick one of *candidates* for *pod*; ``None`` defers the pod."""
