"""Scheduler framework: node views, measured-usage snapshots, FCFS pass.

The pieces every strategy shares:

* :class:`NodeView` — the scheduler's picture of one node: capacity,
  *measured* usage (from the TSDB) and *committed* declared requests.
* :class:`ClusterStateService` — builds node views by running the
  paper's sliding-window InfluxQL queries (Listing 1's inner query shape)
  against the monitoring database, falling back to declared requests for
  pods too young to have samples.
* :class:`Scheduler` — the non-preemptive FCFS scheduling pass shared by
  all strategies; concrete strategies implement :meth:`Scheduler._select`.
"""

from __future__ import annotations

import abc
import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.resources import ResourceVector
from ..constants import METRICS_WINDOW_SECONDS
from ..errors import SchedulingError
from ..monitoring.aggregate import WindowedAggregateCache
from ..monitoring.heapster import MEASUREMENT_MEMORY
from ..monitoring.influxql import execute_query, parse_query
from ..monitoring.probe import MEASUREMENT_EPC
from ..obs.ledger import NULL_LEDGER
from ..obs.spans import NULL_SPANS
from ..orchestrator.kubelet import Kubelet
from ..orchestrator.pod import Pod
from .filtering import can_ever_fit, feasible_candidates, prefer_non_sgx
from .index import NodeCandidateIndex, SelectionStats

logger = logging.getLogger(__name__)


@dataclass(slots=True)
class NodeView:
    """The scheduler's view of one node at pass time.

    ``used`` reflects measured usage plus in-pass reservations; the
    strategies mutate it via :meth:`reserve` as they assign pods so one
    pass never double-books a node.

    Slotted: a pass materialises one per node and the filter/score
    loops touch them per candidate per pod; equality stays the
    generated field-wise comparison (and the class stays unhashable),
    exactly as before the slots conversion.
    """

    name: str
    sgx_capable: bool
    capacity: ResourceVector
    used: ResourceVector = field(default_factory=ResourceVector.zero)
    committed: ResourceVector = field(default_factory=ResourceVector.zero)

    @property
    def available(self) -> ResourceVector:
        """Capacity minus used, floored at zero."""
        capacity = self.capacity
        used = self.used
        return ResourceVector._unchecked(
            max(0, capacity.cpu_millicores - used.cpu_millicores),
            max(0, capacity.memory_bytes - used.memory_bytes),
            max(0, capacity.epc_pages - used.epc_pages),
        )

    @property
    def load(self) -> float:
        """Scalar node load: the dominant utilisation across dimensions.

        Ignores dimensions the node does not have (EPC on standard
        nodes), so heterogeneous nodes compare sensibly.
        """
        return self.used.dominant_finite_utilization(self.capacity)

    def reserve(self, requests: ResourceVector) -> None:
        """Account an in-pass assignment against this node."""
        self.used = self.used + requests
        self.committed = self.committed + requests

    def release(
        self,
        freed: ResourceVector,
        committed: Optional[ResourceVector] = None,
    ) -> None:
        """Return an evicted pod's resources to this view (in-pass).

        The inverse of :meth:`reserve`, used by the preemption step
        when a victim is killed mid-pass.  ``freed`` is the usage
        estimate returned to ``used`` (measured EPC, declared
        memory/CPU); ``committed`` defaults to it.  Components are
        floored at zero because a victim's measured usage may exceed
        what this view had attributed to it — the next pass rebuilds
        views from ground truth either way.
        """
        self.used = (self.used - freed).clamp_floor()
        self.committed = (
            self.committed - (freed if committed is None else committed)
        ).clamp_floor()

    def load_after(self, requests: ResourceVector) -> float:
        """The load this node would have after placing *requests*.

        Evaluated once per candidate per pod on the spread/binpack hot
        path; shares :attr:`load`'s semantics via the same
        :meth:`~repro.cluster.resources.ResourceVector.
        dominant_finite_utilization` helper, without allocating a
        hypothetical view or intermediate vector.
        """
        return self.used.dominant_finite_utilization(
            self.capacity, extra=requests
        )


@dataclass(frozen=True, slots=True)
class Assignment:
    """One scheduling decision: pod onto node."""

    pod: Pod
    node_name: str


@dataclass(slots=True)
class SchedulingOutcome:
    """Everything one scheduling pass decided."""

    assignments: List[Assignment] = field(default_factory=list)
    #: Pods that can never fit any node and should be rejected.
    unschedulable: List[Pod] = field(default_factory=list)
    #: Pods left pending this pass (no room right now).
    deferred: List[Pod] = field(default_factory=list)
    #: Why deferred pods waited, keyed by :data:`WAIT_REASONS` entries
    #: — the blocked dimension (no node has enough of it free), or
    #: ``fragmentation`` (each dimension fits somewhere, no single node
    #: fits all), or ``head_of_line`` (strict-FCFS tail, never
    #: examined).
    wait_reasons: Dict[str, int] = field(default_factory=dict)

    def defer(self, pod: Pod, reason: str) -> None:
        """Record *pod* as deferred for *reason*."""
        self.deferred.append(pod)
        self.wait_reasons[reason] = self.wait_reasons.get(reason, 0) + 1


#: The deferral-reason keys :meth:`SchedulingOutcome.defer` uses.
WAIT_REASONS = ("epc", "memory", "cpu", "fragmentation", "head_of_line")


def classify_wait(
    requests: ResourceVector,
    cpu_max: int,
    memory_max: int,
    epc_max: int,
) -> str:
    """Why *requests* fit no node, given per-dimension free maxima.

    The maxima are taken over the pod's eligible nodes (SGX-capable
    only for enclave pods).  A dimension whose request exceeds even
    the best node's free amount is the binding constraint; checked in
    EPC -> memory -> CPU order because EPC is the scarcest resource.
    When every dimension fits *somewhere* but no single node fits all,
    the wait is down to fragmentation.
    """
    if requests.epc_pages > epc_max:
        return "epc"
    if requests.memory_bytes > memory_max:
        return "memory"
    if requests.cpu_millicores > cpu_max:
        return "cpu"
    return "fragmentation"


#: Inner query of the paper's Listing 1, parameterised by measurement:
#: the per-pod maximum over the sliding window, tagged by node.
_PER_POD_QUERY = (
    'SELECT MAX(value) AS usage FROM "{measurement}" '
    "WHERE value <> 0 AND time >= now() - {window}s "
    "GROUP BY pod_name, nodename"
)


class ClusterStateService:
    """Builds :class:`NodeView` snapshots from Kubelets plus the TSDB.

    The measured view comes from Listing 1's inner query, one run per
    measurement per pass.  When a
    :class:`~repro.monitoring.aggregate.WindowedAggregateCache` is
    supplied (the orchestrator wires one by default), each pass consumes
    an incremental cache snapshot — O(live series) — instead of
    re-scanning every point in the window; the cache window must equal
    ``window_seconds`` so both paths answer the identical query.  Passes
    the cache cannot serve (non-monotone clocks, cold state) fall back
    to the full InfluxQL scan, which produces bit-for-bit the same rows.

    Rows missing the ``nodename`` or ``pod_name`` tag cannot be
    attributed to a pod; they are skipped and counted in
    :attr:`malformed_rows_skipped` rather than silently folded into a
    shared ``(None, ...)`` bucket.
    """

    __slots__ = (
        "kubelets", "db", "window_seconds", "cache",
        "allow_query_cache", "reuse_clean_snapshots", "_last_views",
        "_last_fingerprint", "snapshots_reused",
        "malformed_rows_skipped", "_epc_query", "_memory_query",
        "ledger", "spans",
    )

    def __init__(
        self,
        kubelets: Sequence[Kubelet],
        db,
        window_seconds: float = METRICS_WINDOW_SECONDS,
        cache: Optional[WindowedAggregateCache] = None,
        allow_query_cache: bool = True,
        reuse_clean_snapshots: bool = True,
        observer=None,
    ):
        if cache is not None and cache.window_seconds != window_seconds:
            raise SchedulingError(
                f"state cache window {cache.window_seconds}s does not "
                f"match the query window {window_seconds}s"
            )
        self.kubelets = list(kubelets)
        self.db = db
        self.window_seconds = window_seconds
        self.cache = cache
        #: When False, full scans bypass the InfluxQL fast path too —
        #: a shared db may carry a cache attached by another owner, and
        #: a caller that disabled caching must really measure the scan.
        self.allow_query_cache = allow_query_cache
        #: Skip-clean passes: when the aggregate cache and the kubelet
        #: commitments report no change since the previous pass, reuse
        #: the previous pass's node views instead of rebuilding them.
        self.reuse_clean_snapshots = reuse_clean_snapshots
        self._last_views: Optional[List[NodeView]] = None
        self._last_fingerprint: Optional[Tuple] = None
        #: Passes answered from the retained views (observability).
        self.snapshots_reused = 0
        #: Malformed-row *observations*: a row missing its
        #: ``nodename``/``pod_name`` tags is counted on every pass it
        #: stays inside the window, so this tracks exposure, not
        #: distinct rows.
        self.malformed_rows_skipped = 0
        #: The run's decision ledger / span recorder (null when the
        #: replay is unobserved); :meth:`build_views` records whether
        #: each pass rebuilt its views or reused the clean snapshot.
        self.ledger = observer.ledger if observer is not None else NULL_LEDGER
        self.spans = observer.spans if observer is not None else NULL_SPANS
        self._epc_query = parse_query(
            _PER_POD_QUERY.format(
                measurement=MEASUREMENT_EPC, window=window_seconds
            )
        )
        self._memory_query = parse_query(
            _PER_POD_QUERY.format(
                measurement=MEASUREMENT_MEMORY, window=window_seconds
            )
        )

    def _window_maxima(
        self, measurement: str, query, now: float
    ) -> List[Tuple[Optional[str], Optional[str], float]]:
        """Per-series ``(nodename, pod_name, max)`` over the window."""
        allow_fast_path = self.allow_query_cache
        if self.cache is not None and self.allow_query_cache:
            maxima = self.cache.window_maxima(measurement, now)
            if maxima is not None:
                return maxima
            # The cache just declined this (measurement, now); don't
            # let execute_query's fast path ask it again (it would
            # decline identically, double-counting the fallback).
            allow_fast_path = False
        return [
            (row.get("nodename"), row.get("pod_name"), row.get("usage", 0.0))
            for row in execute_query(
                query, self.db, now,
                allow_fast_path=allow_fast_path,
            )
        ]

    def _measured_usage(
        self, now: float
    ) -> Dict[str, Dict[str, Tuple[int, int]]]:
        """Measured ``(memory_bytes, epc_pages)`` nested by node, pod.

        Runs once per pass over every live series, so the reduction
        stays on plain ints — :meth:`build_views` folds the pairs into
        its per-node vectors.  Each measurement yields one row per
        ``(node, pod)`` group, so plain assignment per measurement is a
        correct accumulation.  The nesting (node -> pod -> sample)
        spares the view builder one tuple-key allocation per admitted
        pod per pass.
        """
        measured: Dict[str, Dict[str, Tuple[int, int]]] = {}
        skipped = 0
        for node, pod, usage in self._window_maxima(
            MEASUREMENT_MEMORY, self._memory_query, now
        ):
            if node is None or pod is None:
                skipped += 1
                continue
            node_measured = measured.get(node)
            if node_measured is None:
                node_measured = measured[node] = {}
            node_measured[pod] = (int(usage), 0)
        for node, pod, usage in self._window_maxima(
            MEASUREMENT_EPC, self._epc_query, now
        ):
            if node is None or pod is None:
                skipped += 1
                continue
            node_measured = measured.get(node)
            if node_measured is None:
                node_measured = measured[node] = {}
            entry = node_measured.get(pod)
            node_measured[pod] = (entry[0] if entry else 0, int(usage))
        if skipped:
            # Malformed rows persist in the window across passes; warn
            # on first sight only so the scheduling loop cannot flood
            # the log, then keep the running count at debug level.
            level = (
                logging.WARNING
                if self.malformed_rows_skipped == 0
                else logging.DEBUG
            )
            self.malformed_rows_skipped += skipped
            logger.log(
                level,
                "dropped %d monitoring row(s) missing nodename/pod_name "
                "tags at t=%.1f (%d total)",
                skipped, now, self.malformed_rows_skipped,
            )
        return measured

    # -- skip-clean passes -------------------------------------------------

    def _state_fingerprint(self, now: float) -> Optional[Tuple]:
        """O(nodes) token identifying the inputs of :meth:`build_views`.

        Two equal, non-``None`` fingerprints guarantee byte-identical
        views: the aggregate cache's content version covers every
        monitoring write that could alter a window maximum, its
        stability horizon covers expiry-by-time-passage, and the kubelet
        commitment versions cover the admitted-pod sets.  ``None``
        means "cannot prove anything" (no cache, cache fell back, or
        the window has drifted past the stability horizon) and forces a
        rebuild.
        """
        cache = self.cache
        if cache is None or not self.allow_query_cache:
            return None
        stable = min(
            cache.stable_until(MEASUREMENT_MEMORY),
            cache.stable_until(MEASUREMENT_EPC),
        )
        if now > stable:
            # The horizon lapsed, most often because steady-state
            # writes kept refreshing unchanged maxima; advance it with
            # one cheap walk (rows that really changed bump the
            # version, failing the comparison below as they must).
            cache.revalidate(MEASUREMENT_MEMORY, now)
            cache.revalidate(MEASUREMENT_EPC, now)
            stable = min(
                cache.stable_until(MEASUREMENT_MEMORY),
                cache.stable_until(MEASUREMENT_EPC),
            )
            if now > stable:
                return None
        return (
            cache.content_version,
            tuple(
                (kubelet.node.name, kubelet.commitment_version)
                for kubelet in self.kubelets
            ),
        )

    def state_unchanged(self, now: float) -> bool:
        """Whether views built at *now* would equal the previous pass's.

        The event-driven replay uses this to skip whole passes: if no
        cluster event fired and the measured state is provably
        unchanged, the pass would recompute the previous pass's exact
        all-deferred outcome.
        """
        if self._last_views is None:
            return False
        fingerprint = self._state_fingerprint(now)
        return (
            fingerprint is not None
            and fingerprint == self._last_fingerprint
        )

    @staticmethod
    def _clone_views(views: Sequence[NodeView]) -> List[NodeView]:
        """Fresh NodeView objects over the same (immutable) vectors.

        Strategies mutate views only by rebinding ``used``/``committed``
        (see :meth:`NodeView.reserve`), so sharing the vectors is safe
        while the retained originals stay pristine.
        """
        return [
            NodeView(
                name=view.name,
                sgx_capable=view.sgx_capable,
                capacity=view.capacity,
                used=view.used,
                committed=view.committed,
            )
            for view in views
        ]

    def build_views(self, now: float) -> List[NodeView]:
        """One :class:`NodeView` per node, in Kubelet registration order.

        Each admitted pod contributes its measured usage when the window
        holds a sample for it, and its declared requests otherwise (pods
        younger than one probe period would be invisible to a purely
        measured view — this is the reservation that prevents stampedes
        between a bind and its first sample).

        With :attr:`reuse_clean_snapshots`, a pass whose fingerprint
        matches the previous pass's reuses the retained views (the
        malformed-row counter then reflects rebuilt passes only).
        """
        ledger = self.ledger
        if self.reuse_clean_snapshots and self.state_unchanged(now):
            self.snapshots_reused += 1
            if ledger.enabled:
                ledger.emit(now, "cache_rebuild", reused=True)
            assert self._last_views is not None
            return self._clone_views(self._last_views)
        if ledger.enabled:
            ledger.emit(now, "cache_rebuild", reused=False)
        spans = self.spans
        span_start = spans.begin()
        measured = self._measured_usage(now)
        empty: Dict[str, Tuple[int, int]] = {}
        views: List[NodeView] = []
        for kubelet in self.kubelets:
            node = kubelet.node
            node_name = node.name
            node_measured = measured.get(node_name, empty)
            # Accumulate on plain ints: the per-pod vector adds were
            # the hottest allocation site of the pass, and integer
            # accumulation is exactly the same sum.
            cpu = memory = epc = 0
            for record in kubelet.admitted_records():
                sample = node_measured.get(record.pod_name)
                # CPU is not measured; carry the declared value.  The
                # record denormalises the request components so this
                # loop never dereferences the pod at all.
                cpu += record.req_cpu
                if sample is not None:
                    memory += sample[0]
                    epc += sample[1]
                else:
                    memory += record.req_mem
                    epc += record.req_epc
            views.append(
                NodeView(
                    name=node_name,
                    sgx_capable=kubelet.advertised_epc_pages() > 0,
                    capacity=node.capacity,
                    used=ResourceVector._unchecked(cpu, memory, epc),
                    committed=kubelet.committed_requests(),
                )
            )
        if self.reuse_clean_snapshots:
            # Fingerprint AFTER the build: the snapshot above refreshed
            # the cache's stability horizon for the window at *now*.
            self._last_views = self._clone_views(views)
            self._last_fingerprint = self._state_fingerprint(now)
        spans.end(span_start, "view_rebuild", now)
        return views


class Scheduler(abc.ABC):
    """Shared FCFS scheduling pass; strategies pick the node.

    Parameters
    ----------
    use_measured:
        When ``True`` (the paper's system), feasibility is judged against
        the measured view; when ``False``, against declared commitments
        only (the Kubernetes-default baseline and an ablation toggle).
    strict_fcfs:
        When ``True``, a pod that cannot be placed blocks all younger
        pods (head-of-line blocking).  Defaults to the Kubernetes-like
        behaviour of skipping unschedulable pods while keeping FCFS
        *priority*.
    preserve_sgx_nodes:
        The paper's node-preservation rule: standard jobs only land on
        SGX nodes when no other node fits (Section IV).  Exposed as a
        toggle for the ablation benchmark.
    indexed:
        When ``True``, the pass batches the pending queue against the
        incremental :class:`~repro.scheduler.index.NodeCandidateIndex`
        instead of re-scanning every node for every pod.  Selections
        are bit-for-bit identical to the default full-scan oracle; the
        toggle exists for A/B benchmarking and because the oracle is
        the reference the equivalence suite trusts.
    """

    name = "abstract"

    # ``name`` stays a class attribute (strategies override it), so it
    # must not appear in the slot tuple.
    __slots__ = (
        "use_measured", "strict_fcfs", "preserve_sgx_nodes", "indexed",
        "_index_statics_cache", "last_selection_stats", "last_index",
        "ledger",
    )

    def __init__(
        self,
        use_measured: bool = True,
        strict_fcfs: bool = False,
        preserve_sgx_nodes: bool = True,
        indexed: bool = False,
    ):
        self.use_measured = use_measured
        self.strict_fcfs = strict_fcfs
        self.preserve_sgx_nodes = preserve_sgx_nodes
        self.indexed = indexed
        #: Membership statics reused across passes until node churn.
        self._index_statics_cache: Dict = {}
        #: Counters of the most recent indexed pass (``None`` after an
        #: oracle pass); the orchestrator copies this into PassResult.
        self.last_selection_stats: Optional[SelectionStats] = None
        #: The candidate index of the most recent indexed pass
        #: (``None`` after an oracle pass).  The orchestrator's
        #: preemption step keeps it consistent — O(log n) per
        #: un-placement — while evictions mutate the pass's views.
        self.last_index: Optional[NodeCandidateIndex] = None
        #: The run's decision ledger.  The orchestrator rebinds this at
        #: the top of every pass (cell schedulers share the cluster's
        #: ledger that way); standalone schedulers keep the null one.
        self.ledger = NULL_LEDGER

    def schedule(
        self, pending: Sequence[Pod], views: Sequence[NodeView], now: float
    ) -> SchedulingOutcome:
        """Run one pass over *pending* (oldest first) against *views*."""
        if self.indexed:
            return self._schedule_indexed(pending, views, now)
        self.last_selection_stats = None
        self.last_index = None
        ledger = self.ledger
        outcome = SchedulingOutcome()
        views = list(views)
        if not self.use_measured:
            for view in views:
                view.used = view.committed
        for pod in pending:
            if not can_ever_fit(pod, views):
                outcome.unschedulable.append(pod)
                continue
            candidates = feasible_candidates(pod, views)
            if self.preserve_sgx_nodes:
                candidates = prefer_non_sgx(pod, candidates)
            if not candidates:
                reason = self._wait_reason(pod, views)
                outcome.defer(pod, reason)
                if ledger.enabled:
                    ledger.emit(now, "deferral", pod=pod.name, reason=reason)
                if self.strict_fcfs:
                    remaining = list(pending)
                    tail = remaining[remaining.index(pod) + 1:]
                    for blocked in tail:
                        outcome.defer(blocked, "head_of_line")
                        if ledger.enabled:
                            ledger.emit(
                                now, "deferral",
                                pod=blocked.name, reason="head_of_line",
                            )
                    break
                continue
            chosen = self._select(pod, candidates, views)
            if chosen is None:
                reason = self._wait_reason(pod, views)
                outcome.defer(pod, reason)
                if ledger.enabled:
                    ledger.emit(now, "deferral", pod=pod.name, reason=reason)
                continue
            if not pod.spec.resources.requests.fits_within(chosen.available):
                raise SchedulingError(
                    f"{self.name} selected saturated node {chosen.name} "
                    f"for pod {pod.name}"
                )
            chosen.reserve(pod.spec.resources.requests)
            outcome.assignments.append(
                Assignment(pod=pod, node_name=chosen.name)
            )
            if ledger.enabled:
                ledger.emit(
                    now, "placement",
                    pod=pod.name, node=chosen.name,
                    runner_ups=len(candidates) - 1,
                )
        return outcome

    def _schedule_indexed(
        self, pending: Sequence[Pod], views: Sequence[NodeView], now: float
    ) -> SchedulingOutcome:
        """The batched pass: one index, incremental updates per placement.

        Mirrors :meth:`schedule` step for step — same unschedulable
        test, same deferral semantics (including the strict-FCFS tail),
        same saturation sanity check, same ``reserve`` mutation order —
        but answers each step from the candidate index.  For the
        built-in strategies a ``None`` selection can only mean "no
        feasible candidate", which is exactly the oracle's
        empty-candidates branch, so the outcomes coincide bit for bit.
        """
        outcome = SchedulingOutcome()
        ledger = self.ledger
        views = list(views)
        if not self.use_measured:
            for view in views:
                view.used = view.committed
        stats = SelectionStats(pods=len(pending))
        index = NodeCandidateIndex(
            views, statics_cache=self._index_statics_cache, stats=stats
        )
        self.last_selection_stats = stats
        self.last_index = index
        for pod in pending:
            if not index.can_ever_fit(pod):
                outcome.unschedulable.append(pod)
                continue
            had_candidates, chosen = self._select_indexed(pod, index)
            if not had_candidates:
                reason = self._wait_reason_indexed(pod, index)
                outcome.defer(pod, reason)
                if ledger.enabled:
                    ledger.emit(now, "deferral", pod=pod.name, reason=reason)
                if self.strict_fcfs:
                    remaining = list(pending)
                    tail = remaining[remaining.index(pod) + 1:]
                    for blocked in tail:
                        outcome.defer(blocked, "head_of_line")
                        if ledger.enabled:
                            ledger.emit(
                                now, "deferral",
                                pod=blocked.name, reason="head_of_line",
                            )
                    break
                continue
            if chosen is None:
                reason = self._wait_reason_indexed(pod, index)
                outcome.defer(pod, reason)
                if ledger.enabled:
                    ledger.emit(now, "deferral", pod=pod.name, reason=reason)
                continue
            if not pod.spec.resources.requests.fits_within(chosen.available):
                raise SchedulingError(
                    f"{self.name} selected saturated node {chosen.name} "
                    f"for pod {pod.name}"
                )
            chosen.reserve(pod.spec.resources.requests)
            index.note_reserved(chosen)
            stats.placements += 1
            outcome.assignments.append(
                Assignment(pod=pod, node_name=chosen.name)
            )
            if ledger.enabled:
                # The indexed fast paths never materialise the full
                # candidate list; -1 marks the count as unavailable.
                ledger.emit(
                    now, "placement",
                    pod=pod.name, node=chosen.name, runner_ups=-1,
                )
        stats.wait_reasons = dict(outcome.wait_reasons)
        return outcome

    # -- deferral classification (observability, both paths) -------------

    @staticmethod
    def _wait_reason(pod: Pod, views: Sequence[NodeView]) -> str:
        """Oracle-path deferral reason: scan the eligible views.

        O(nodes) per deferral — the oracle pass is already linear in
        the nodes for every pod, so classification does not change its
        complexity.
        """
        cpu_max = memory_max = epc_max = -1
        for view in views:
            if pod.requires_sgx and not view.sgx_capable:
                continue
            available = view.available
            if available.cpu_millicores > cpu_max:
                cpu_max = available.cpu_millicores
            if available.memory_bytes > memory_max:
                memory_max = available.memory_bytes
            if available.epc_pages > epc_max:
                epc_max = available.epc_pages
        return classify_wait(
            pod.spec.resources.requests, cpu_max, memory_max, epc_max
        )

    @staticmethod
    def _wait_reason_indexed(pod: Pod, index: NodeCandidateIndex) -> str:
        """Indexed-path deferral reason, O(1) from the tree roots.

        A group root holds the component-wise maxima of its members'
        availability, which is exactly what the oracle's scan
        computes — the two paths classify identically by construction.
        """
        cpu_max, memory_max, epc_max = index.availability_maxima(pod)
        return classify_wait(
            pod.spec.resources.requests, cpu_max, memory_max, epc_max
        )

    def _select_indexed(
        self, pod: Pod, index: NodeCandidateIndex
    ) -> Tuple[bool, Optional[NodeView]]:
        """Indexed-path selection; strategies override for fast paths.

        Returns ``(had_candidates, chosen)``.  This default reproduces
        the oracle literally — materialise the candidate list (same
        membership, same input order) and delegate to :meth:`_select` —
        so any subclass is indexed-correct without opting in to a
        strategy-specific walk.
        """
        candidates = index.candidates(
            pod, self.preserve_sgx_nodes, in_input_order=True
        )
        if not candidates:
            return False, None
        return True, self._select(pod, candidates, index.views)

    @abc.abstractmethod
    def _select(
        self,
        pod: Pod,
        candidates: Sequence[NodeView],
        views: Sequence[NodeView],
    ) -> Optional[NodeView]:
        """Pick one of *candidates* for *pod*; ``None`` defers the pod."""
