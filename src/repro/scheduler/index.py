"""Indexed candidate selection: the batched scheduling fast path.

PR 1 made the per-pass cluster snapshot cheap and PR 2 skipped passes
that provably change nothing; the remaining hot path is the
O(pods × nodes) filter/score loop *inside* each pass.  This module
removes it: a :class:`NodeCandidateIndex` is built over the pass's
node views and kept consistent incrementally while the pending queue
is placed as one batch, so each pod consults sorted candidate indexes
instead of re-scanning every node:

* **capacity classes** — the distinct node capacities per hardware
  class, enough to answer ``can_ever_fit`` in O(classes) instead of
  O(nodes);
* **availability trees** (the memory-free / EPC-free / CPU-free
  indexes) — per hardware group, a segment tree over the name order
  whose nodes hold component-wise maxima of available resources.  The
  root answers "could anything here fit?" in O(1), first-fit descends
  to the leftmost admitting leaf in O(log nodes) instead of walking
  past every already-full node, and feasibility scans skip whole
  saturated subtrees.  Reservations update one leaf path in
  O(log nodes), so the maxima are always exact;
* **dominant-utilisation order** — group members ascending by node
  load, which lower-bounds every post-placement score and lets the
  least-requested baseline stop scoring as soon as no later candidate
  can win;
* **load cache** — each view's current load, so spread evaluates its
  stddev objective against cached floats instead of recomputing every
  node's load for every candidate.

The statics (sort orders, capacity classes, positions) depend only on
node *membership* — name, SGX capability, capacity — so the scheduler
caches them across passes and rebuilds them only on node churn, the
same reuse discipline as PR 2's snapshot fingerprints (a pass whose
views were served from the state service's clean-snapshot cache hits
this cache by construction).  The dynamic structures (availability
trees, loads) are refreshed incrementally after each in-batch
placement via :meth:`NodeCandidateIndex.note_reserved`.

Everything here is an *accelerator*, not a policy: candidate-set
membership and every score a strategy computes are bit-for-bit
identical to the full-scan oracle in :mod:`repro.scheduler.base`
(``Scheduler(indexed=False)``, the default), which remains the
reference the equivalence suite compares against.  The proofs lean on
one invariant the state service guarantees: view ``used``/``capacity``
components are non-negative, hence ``load_after(r) >= load`` for any
non-negative request ``r``.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..cluster.resources import ResourceVector
from ..orchestrator.pod import Pod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .base import NodeView

#: Membership signatures kept before the statics cache is dropped; node
#: churn is rare, so this only guards unbounded growth in pathological
#: add/remove loops.
_STATICS_CACHE_LIMIT = 16

#: Availability of a padded (non-existent) tree slot: admits nothing,
#: because requests are non-negative.
_NO_AVAILABILITY = (-1, -1, -1)


@dataclass(slots=True)
class SelectionStats:
    """Observability counters of one indexed scheduling pass."""

    #: Pods the pass considered.
    pods: int = 0
    #: Pods placed (mirrors ``len(outcome.assignments)``).
    placements: int = 0
    #: Index probes performed: segment-tree nodes visited during
    #: first-fit/scan descents plus candidates examined by score
    #: walks.  A relative measure of per-pass work across passes of
    #: the *same* strategy — not per-node feasibility evaluations, so
    #: not directly comparable to the oracle's ``pods × nodes`` or
    #: across strategies.
    feasibility_checks: int = 0
    #: Group lookups answered "nothing fits" straight from a tree root.
    bound_skips: int = 0
    #: Load-ordered score walks stopped early by the lower bound.
    score_cutoffs: int = 0
    #: Whether the membership statics were served from the cache.
    statics_reused: bool = False
    #: Deferral reasons of the pass (copied from the outcome): why the
    #: deferred pods waited, keyed by
    #: :data:`repro.scheduler.base.WAIT_REASONS`.
    wait_reasons: Dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class _IndexStatics:
    """Membership-derived structures, reusable across passes."""

    non_sgx_order: Tuple[int, ...]
    sgx_order: Tuple[int, ...]
    #: Distinct capacities of SGX-capable nodes / of all nodes, for
    #: O(classes) ``can_ever_fit``.
    sgx_capacities: Tuple[ResourceVector, ...]
    all_capacities: Tuple[ResourceVector, ...]
    position: Dict[str, int]


def _build_statics(views: Sequence["NodeView"]) -> _IndexStatics:
    by_name = sorted(range(len(views)), key=lambda i: views[i].name)
    return _IndexStatics(
        non_sgx_order=tuple(
            i for i in by_name if not views[i].sgx_capable
        ),
        sgx_order=tuple(i for i in by_name if views[i].sgx_capable),
        sgx_capacities=tuple(
            dict.fromkeys(
                view.capacity for view in views if view.sgx_capable
            )
        ),
        all_capacities=tuple(
            dict.fromkeys(view.capacity for view in views)
        ),
        position={view.name: i for i, view in enumerate(views)},
    )


class _GroupIndex:
    """Per-hardware-group indexes over the group's views (name order).

    The availability tree is a classic segment tree whose leaves are
    the members' ``available`` vectors (as int triples) in name order
    and whose inner nodes hold component-wise maxima.  A subtree whose
    maxima reject a request in any dimension provably contains no fit;
    a *leaf* whose triple admits the request provably is one, because a
    leaf's maxima are exactly its availability.  Both facts together
    make the descents below return precisely what the oracle's linear
    scans return.
    """

    __slots__ = ("views", "stats", "_leaf_base", "_tree", "_slot",
                 "_by_load", "_load_of")

    def __init__(self, views: List["NodeView"], stats: SelectionStats):
        self.views = views
        self.stats = stats
        self._slot = {view.name: i for i, view in enumerate(views)}
        leaf_base = 1
        while leaf_base < max(1, len(views)):
            leaf_base <<= 1
        self._leaf_base = leaf_base
        tree = [_NO_AVAILABILITY] * (2 * leaf_base)
        for i, view in enumerate(views):
            tree[leaf_base + i] = self._avail_of(view)
        for i in range(leaf_base - 1, 0, -1):
            tree[i] = self._merge(tree[2 * i], tree[2 * i + 1])
        self._tree = tree
        # Dominant-utilisation order, built on first use (binpack's
        # first-fit never needs it).
        self._by_load: Optional[List[Tuple[float, str]]] = None
        self._load_of: Optional[Dict[str, float]] = None

    # -- availability tree ------------------------------------------------

    @staticmethod
    def _avail_of(view: "NodeView") -> Tuple[int, int, int]:
        # Inlined ``view.available`` components: leaf refreshes run per
        # placement and need the triple, not a throwaway vector.
        capacity = view.capacity
        used = view.used
        return (
            max(0, capacity.cpu_millicores - used.cpu_millicores),
            max(0, capacity.memory_bytes - used.memory_bytes),
            max(0, capacity.epc_pages - used.epc_pages),
        )

    @staticmethod
    def _merge(
        a: Tuple[int, int, int], b: Tuple[int, int, int]
    ) -> Tuple[int, int, int]:
        return (
            a[0] if a[0] >= b[0] else b[0],
            a[1] if a[1] >= b[1] else b[1],
            a[2] if a[2] >= b[2] else b[2],
        )

    @staticmethod
    def _admits(
        bound: Tuple[int, int, int], requests: ResourceVector
    ) -> bool:
        """Necessary per-dimension fit condition; exact at leaves.

        Equivalent to ``requests.fits_within(view.available)`` when
        *bound* is a leaf triple: availability components are already
        clamped non-negative, so the comparisons coincide.
        """
        return (
            requests.cpu_millicores <= bound[0]
            and requests.memory_bytes <= bound[1]
            and requests.epc_pages <= bound[2]
        )

    def cannot_fit(self, requests: ResourceVector) -> bool:
        """Provably no member can host *requests* right now (O(1))."""
        return not self._admits(self._tree[1], requests)

    @property
    def root(self) -> Tuple[int, int, int]:
        """Component-wise availability maxima over the group (O(1)).

        ``(-1, -1, -1)`` for an empty group — the padded-slot triple,
        which admits nothing because requests are non-negative.
        """
        return self._tree[1]

    def first_fit(self, requests: ResourceVector) -> Optional["NodeView"]:
        """The first member in name order *requests* fits on.

        Left-first descent with backtracking: an inner node's maxima
        are only a necessary condition (each dimension's maximum may
        come from a different child), so a subtree that admits the
        request may still hold no fit — but one that rejects it never
        does, and a *leaf* that admits is exact.  Near-logarithmic per
        placement in practice instead of walking past every
        already-full node.
        """
        return self._first(1, requests)

    def _first(
        self, node: int, requests: ResourceVector
    ) -> Optional["NodeView"]:
        self.stats.feasibility_checks += 1
        if not self._admits(self._tree[node], requests):
            return None
        if node >= self._leaf_base:
            return self.views[node - self._leaf_base]
        found = self._first(2 * node, requests)
        if found is not None:
            return found
        return self._first(2 * node + 1, requests)

    def scan_feasible(self, requests: ResourceVector) -> List["NodeView"]:
        """All members *requests* fits on, in name order.

        Subtrees whose maxima reject the request are skipped whole, so
        a saturated group costs O(1) and a partly saturated one is
        output-sensitive rather than O(members).
        """
        found: List["NodeView"] = []
        self._collect(1, requests, found)
        return found

    def _collect(
        self, node: int, requests: ResourceVector, found: List["NodeView"]
    ) -> None:
        self.stats.feasibility_checks += 1
        if not self._admits(self._tree[node], requests):
            return
        if node >= self._leaf_base:
            found.append(self.views[node - self._leaf_base])
            return
        self._collect(2 * node, requests, found)
        self._collect(2 * node + 1, requests, found)

    # -- dominant-utilisation order --------------------------------------

    def _ensure_loads(self) -> None:
        if self._by_load is None:
            self._load_of = {
                view.name: view.load for view in self.views
            }
            self._by_load = sorted(
                (load, name) for name, load in self._load_of.items()
            )

    def iter_by_load(self) -> Iterator[Tuple[float, "NodeView"]]:
        """Members ascending by ``(load, name)``.

        The load value yielded equals ``view.load`` bit-for-bit (it is
        cached from the identical computation), so it lower-bounds any
        ``view.load_after(requests)`` for non-negative requests.
        """
        self._ensure_loads()
        assert self._by_load is not None
        for load, name in self._by_load:
            yield load, self.views[self._slot[name]]

    # -- incremental maintenance -----------------------------------------

    def note_reserved(self, view: "NodeView") -> None:
        """Refresh this member's index entries after a reservation.

        The refresh recomputes the leaf from the view, so it is
        direction-agnostic: an eviction (availability *increased*)
        updates the same O(log members) leaf path and the same load
        slot — :meth:`note_released` below is the readable alias the
        preemption step calls.
        """
        node = self._leaf_base + self._slot[view.name]
        tree = self._tree
        tree[node] = self._avail_of(view)
        node >>= 1
        while node:
            tree[node] = self._merge(tree[2 * node], tree[2 * node + 1])
            node >>= 1
        if self._by_load is None:
            return
        assert self._load_of is not None
        old = self._load_of[view.name]
        new = view.used.dominant_finite_utilization(view.capacity)
        if new == old:
            return
        position = bisect_left(self._by_load, (old, view.name))
        del self._by_load[position]
        insort(self._by_load, (new, view.name))
        self._load_of[view.name] = new

    def note_released(self, view: "NodeView") -> None:
        """Refresh this member's entries after an in-pass eviction."""
        self.note_reserved(view)


class NodeCandidateIndex:
    """Per-pass candidate indexes over one batch's node views.

    Build once per scheduling pass (membership statics come from
    *statics_cache* when the node set is unchanged), consult per pod,
    and call :meth:`note_reserved` after every in-batch placement so
    the dynamic structures track the views' mutation.
    """

    __slots__ = (
        "views", "stats", "_statics", "non_sgx", "sgx", "_loads",
    )

    def __init__(
        self,
        views: Sequence["NodeView"],
        statics_cache: Optional[dict] = None,
        stats: Optional[SelectionStats] = None,
    ):
        self.views = list(views)
        self.stats = stats if stats is not None else SelectionStats()
        signature = tuple(
            (view.name, view.sgx_capable, view.capacity)
            for view in self.views
        )
        statics = (
            statics_cache.get(signature)
            if statics_cache is not None
            else None
        )
        if statics is None:
            statics = _build_statics(self.views)
            if statics_cache is not None:
                if len(statics_cache) >= _STATICS_CACHE_LIMIT:
                    statics_cache.clear()
                statics_cache[signature] = statics
        else:
            self.stats.statics_reused = True
        self._statics = statics
        self.non_sgx = _GroupIndex(
            [self.views[i] for i in statics.non_sgx_order], self.stats
        )
        self.sgx = _GroupIndex(
            [self.views[i] for i in statics.sgx_order], self.stats
        )
        #: Per-view load cache aligned with :attr:`views` (spread's
        #: working list); built on first use.
        self._loads: Optional[List[float]] = None

    # -- membership-level queries ----------------------------------------

    def can_ever_fit(self, pod: Pod) -> bool:
        """Oracle-equivalent ``can_ever_fit`` in O(capacity classes)."""
        statics = self._statics
        capacities = (
            statics.sgx_capacities
            if pod.requires_sgx
            else statics.all_capacities
        )
        requests = pod.spec.resources.requests
        return any(
            requests.fits_within(capacity) for capacity in capacities
        )

    def position_of(self, view: "NodeView") -> int:
        """This view's index in the pass's input order."""
        return self._statics.position[view.name]

    def availability_maxima(self, pod: Pod) -> Tuple[int, int, int]:
        """Per-dimension free maxima over *pod*'s eligible nodes, O(1).

        Straight off the group roots: the SGX group's for enclave
        pods, the component-wise merge of both groups' for standard
        pods.  Equals what a linear scan of the eligible views'
        ``available`` vectors would report (-1 per dimension when no
        node is eligible), which is how the oracle's deferral
        classifier computes the same answer.
        """
        if pod.requires_sgx:
            return self.sgx.root
        return _GroupIndex._merge(self.non_sgx.root, self.sgx.root)

    def group_sequence(self, pod: Pod, preserve: bool):
        """The groups to try, in the paper's preference order.

        SGX pods only ever see the SGX group; standard pods see the
        non-SGX group first and fall through to SGX nodes only when the
        preservation rule allows nothing else.  ``None`` means the two
        groups form one undifferentiated pool (the ablation with node
        preservation off).
        """
        if pod.requires_sgx:
            return (self.sgx,)
        if preserve:
            return (self.non_sgx, self.sgx)
        return None

    # -- candidate retrieval ---------------------------------------------

    def candidates(
        self, pod: Pod, preserve: bool, in_input_order: bool = False
    ) -> List["NodeView"]:
        """The pod's feasible candidates, oracle-identical membership.

        Equals ``prefer_non_sgx(feasible_nodes(pod, views))`` when
        *preserve* is true and plain ``feasible_nodes`` membership
        otherwise.  Order is name order per group unless
        *in_input_order* asks for the oracle's literal input order
        (only needed by order-sensitive custom strategies).
        """
        requests = pod.spec.resources.requests
        sequence = self.group_sequence(pod, preserve)
        if sequence is None:
            sequence = (self.non_sgx, self.sgx)
            found: List["NodeView"] = []
            for group in sequence:
                found.extend(self._scan_group(group, requests))
        else:
            found = []
            for group in sequence:
                found = self._scan_group(group, requests)
                if found:
                    break
        if in_input_order and len(found) > 1:
            found.sort(key=self.position_of)
        return found

    def _scan_group(self, group, requests) -> List["NodeView"]:
        if group.cannot_fit(requests):
            self.stats.bound_skips += 1
            return []
        return group.scan_feasible(requests)

    def first_fit(self, pod: Pod, preserve: bool) -> Optional["NodeView"]:
        """Binpack's selection: first fit over the consistent order.

        Oracle-equivalent because candidate keys are unique per name:
        sorting the feasible set by ``(sgx_capable, name)`` and taking
        the head equals descending each group's availability tree in
        preference order — and, for the merged ablation pool, taking
        the name-wise earlier of the two group winners.
        """
        requests = pod.spec.resources.requests
        sequence = self.group_sequence(pod, preserve)
        if sequence is None:
            best: Optional["NodeView"] = None
            for group in (self.non_sgx, self.sgx):
                if group.cannot_fit(requests):
                    self.stats.bound_skips += 1
                    continue
                view = group.first_fit(requests)
                if view is not None and (
                    best is None or view.name < best.name
                ):
                    best = view
            return best
        for group in sequence:
            if group.cannot_fit(requests):
                self.stats.bound_skips += 1
                continue
            view = group.first_fit(requests)
            if view is not None:
                return view
        return None

    # -- load cache (spread's working list) ------------------------------

    def working_loads(self) -> List[float]:
        """Current loads aligned with :attr:`views`, as a shared list.

        Each entry equals the corresponding ``view.load`` bit-for-bit.
        Callers may substitute single entries while scoring candidates
        but must restore them before returning; the list is reused
        across pods and kept fresh by :meth:`note_reserved`.
        """
        if self._loads is None:
            self._loads = [view.load for view in self.views]
        return self._loads

    # -- incremental maintenance -----------------------------------------

    def note_reserved(self, view: "NodeView") -> None:
        """Track an in-batch placement on *view*."""
        group = self.sgx if view.sgx_capable else self.non_sgx
        group.note_reserved(view)
        if self._loads is not None:
            self._loads[self.position_of(view)] = (
                view.used.dominant_finite_utilization(view.capacity)
            )

    def note_released(self, view: "NodeView") -> None:
        """Track an in-pass eviction on *view*: O(log n) un-placement.

        The preemption step calls this after
        :meth:`~repro.scheduler.base.NodeView.release` so the
        availability trees, load order and load cache stay exact while
        victims leave mid-pass — the same incremental discipline
        placements follow, in the opposite direction.
        """
        self.note_reserved(view)
