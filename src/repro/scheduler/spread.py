"""Spread placement strategy.

Section IV: "the main goal of the spread strategy is to even out the load
across all nodes.  It works by choosing job-node combinations that yield
the smallest standard deviation of load across the nodes.  Like binpack,
it only resorts to SGX-enabled nodes for non-SGX jobs when no other
choice is possible."

Node load is the dominant utilisation ratio across the dimensions the
node possesses (see :attr:`~repro.scheduler.base.NodeView.load`), which
makes heterogeneous machines comparable: a standard node is as loaded as
its busiest dimension, an SGX node additionally counts its EPC.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..orchestrator.pod import Pod
from ..registry import register_scheduler
from .base import NodeView, Scheduler
from .index import NodeCandidateIndex


def _stddev(values: List[float]) -> float:
    """Population standard deviation (the metric the paper minimises)."""
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


@register_scheduler("spread")
class SpreadScheduler(Scheduler):
    """Minimise the standard deviation of node loads after placement."""

    name = "sgx-aware-spread"

    def _select_indexed(
        self, pod: Pod, index: NodeCandidateIndex
    ) -> Tuple[bool, Optional[NodeView]]:
        """Score candidates against the index's cached load list.

        The oracle recomputes every node's load for every candidate;
        here the base loads come from the index (kept fresh between
        batch placements), and each candidate substitutes its own
        post-placement load into the shared working list.  The list
        passed to :func:`_stddev` holds the identical values in the
        identical positions, so every key — and hence the argmin, which
        is unique because names are — matches the oracle bit for bit.
        """
        candidates = index.candidates(pod, self.preserve_sgx_nodes)
        if not candidates:
            return False, None
        requests = pod.spec.resources.requests
        loads = index.working_loads()
        best: Optional[NodeView] = None
        best_key = None
        for candidate in candidates:
            position = index.position_of(candidate)
            saved = loads[position]
            loads[position] = candidate.load_after(requests)
            key = (
                _stddev(loads), candidate.sgx_capable, candidate.name
            )
            loads[position] = saved
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        return True, best

    def _select(
        self,
        pod: Pod,
        candidates: Sequence[NodeView],
        views: Sequence[NodeView],
    ) -> Optional[NodeView]:
        requests = pod.spec.resources.requests
        # Base loads once per pod; each candidate substitutes its own
        # post-placement load into its position.  The list handed to
        # ``_stddev`` holds the identical values in the identical
        # positions the per-candidate rebuild produced, at O(V + C)
        # load computations instead of O(V * C).
        loads = [view.load for view in views]
        position = {id(view): i for i, view in enumerate(views)}
        best: Optional[NodeView] = None
        best_key = None
        for candidate in candidates:
            index = position[id(candidate)]
            saved = loads[index]
            loads[index] = candidate.load_after(requests)
            # Tie-break deterministically: prefer non-SGX, then by name,
            # so runs are reproducible across dict orderings.
            key = (_stddev(loads), candidate.sgx_capable, candidate.name)
            loads[index] = saved
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        return best
