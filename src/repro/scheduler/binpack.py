"""Binpack placement strategy.

Section IV: "When binpack is in use, the scheduler always tries to fit as
many jobs as possible on the same node.  As soon as its resources become
insufficient, the scheduler advances to the next node in the pool.  The
order of the nodes stays consistent by always sorting them in the same
way.  In the case of a standard job, we sort SGX-enabled nodes at the end
of this list, to preserve their resources for SGX-enabled jobs."

The strategy is therefore first-fit over a fixed node order; the
``prefer_non_sgx`` step in the base pass already guarantees SGX nodes are
only touched by standard jobs when nothing else fits, and the sort here
keeps the order consistent within each group.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..orchestrator.pod import Pod
from ..registry import register_scheduler
from .base import NodeView, Scheduler
from .index import NodeCandidateIndex


@register_scheduler("binpack")
class BinpackScheduler(Scheduler):
    """First-fit over a consistent node order, SGX nodes sorted last."""

    name = "sgx-aware-binpack"

    def _select_indexed(
        self, pod: Pod, index: NodeCandidateIndex
    ) -> Tuple[bool, Optional[NodeView]]:
        """First fit straight off the index's precomputed name orders.

        Every feasible candidate fits by definition, so "no fit found"
        and "no candidates" are the same event — the walk needs neither
        the candidate list nor the per-pod sort the oracle pays for.
        """
        chosen = index.first_fit(pod, self.preserve_sgx_nodes)
        return chosen is not None, chosen

    def _select(
        self,
        pod: Pod,
        candidates: Sequence[NodeView],
        views: Sequence[NodeView],
    ) -> Optional[NodeView]:
        ordered = sorted(
            candidates,
            key=lambda view: (
                view.sgx_capable if self.preserve_sgx_nodes else False,
                view.name,
            ),
        )
        for view in ordered:
            if pod.spec.resources.requests.fits_within(view.available):
                return view
        return None
