"""Binpack placement strategy.

Section IV: "When binpack is in use, the scheduler always tries to fit as
many jobs as possible on the same node.  As soon as its resources become
insufficient, the scheduler advances to the next node in the pool.  The
order of the nodes stays consistent by always sorting them in the same
way.  In the case of a standard job, we sort SGX-enabled nodes at the end
of this list, to preserve their resources for SGX-enabled jobs."

The strategy is therefore first-fit over a fixed node order; the
``prefer_non_sgx`` step in the base pass already guarantees SGX nodes are
only touched by standard jobs when nothing else fits, and the sort here
keeps the order consistent within each group.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..orchestrator.pod import Pod
from ..registry import register_scheduler
from .base import NodeView, Scheduler
from .index import NodeCandidateIndex


@register_scheduler("binpack")
class BinpackScheduler(Scheduler):
    """First-fit over a consistent node order, SGX nodes sorted last."""

    name = "sgx-aware-binpack"

    __slots__ = ()

    def _select_indexed(
        self, pod: Pod, index: NodeCandidateIndex
    ) -> Tuple[bool, Optional[NodeView]]:
        """First fit straight off the index's precomputed name orders.

        Every feasible candidate fits by definition, so "no fit found"
        and "no candidates" are the same event — the walk needs neither
        the candidate list nor the per-pod sort the oracle pays for.
        """
        chosen = index.first_fit(pod, self.preserve_sgx_nodes)
        return chosen is not None, chosen

    def _select(
        self,
        pod: Pod,
        candidates: Sequence[NodeView],
        views: Sequence[NodeView],
    ) -> Optional[NodeView]:
        # First fit over the consistent order == the minimum-keyed
        # fitting candidate; a single min-scan replaces the historical
        # per-pod sort (node names are unique, so the minimum — and
        # hence the selection — is exactly the sorted walk's).
        preserve = self.preserve_sgx_nodes
        requests = pod.spec.resources.requests
        req_cpu = requests.cpu_millicores
        req_mem = requests.memory_bytes
        req_epc = requests.epc_pages
        best: Optional[NodeView] = None
        best_key = None
        for view in candidates:
            # Component-wise ``requests.fits_within(view.available)``
            # without materialising the available vector per candidate:
            # a zero request always fits (available floors at zero), a
            # positive one needs headroom in that dimension.
            cap = view.capacity
            used = view.used
            if (
                req_cpu > cap.cpu_millicores - used.cpu_millicores
                and req_cpu != 0
            ):
                continue
            if (
                req_mem > cap.memory_bytes - used.memory_bytes
                and req_mem != 0
            ):
                continue
            if req_epc > cap.epc_pages - used.epc_pages and req_epc != 0:
                continue
            key = (view.sgx_capable if preserve else False, view.name)
            if best_key is None or key < best_key:
                best_key = key
                best = view
        return best
