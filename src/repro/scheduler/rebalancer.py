"""EPC contention rebalancer: migration put to scheduling use.

Section V-E motivates the per-process EPC ioctl with exactly this:
"This metric is helpful to identify processes that should be preempted
and possibly migrated, a feature especially useful in scenarios of high
contention."  The conclusion then lists enclave migration as planned
future work.  This module closes the loop: it watches for over-
committed EPCs (which the paging model punishes with up to 1000x
slowdowns), picks victim pods off the contended node using the driver's
per-process occupancy metric, and live-migrates them to the SGX node
with the most free pages.

The rebalancer is deliberately conservative: it only acts on over-
committed nodes, only moves a pod when the whole enclave fits in the
target's *free* pages, and moves the smallest enclaves first (cheapest
transfer, highest chance of fitting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import OrchestrationError
from ..orchestrator.controller import Orchestrator
from ..orchestrator.pod import Pod


@dataclass(frozen=True)
class MigrationAction:
    """One executed rebalancing migration."""

    pod_name: str
    source_node: str
    target_node: str
    pages_moved: int
    downtime_seconds: float


@dataclass(frozen=True)
class FailedMigration:
    """A migration whose target-side restore failed.

    The source enclave is destroyed by the checkpoint protocol before
    the target admits, so the original pod is gone (marked failed); the
    rebalancer resubmits its spec as *replacement* so no work is lost.
    Drivers holding per-pod runtime state (the replay runner's running-
    job table, its finish events) must purge the old pod's entries.
    """

    pod_name: str
    #: Uid of the destroyed pod — spec names need not be unique (the
    #: replacement reuses this one), so per-pod state must key on it.
    pod_uid: str
    source_node: str
    target_node: str
    replacement: Pod


@dataclass
class RebalanceReport:
    """What one rebalancing pass did."""

    actions: List[MigrationAction] = field(default_factory=list)
    #: Migrations that failed at restore; their pods were resubmitted.
    failed: List[FailedMigration] = field(default_factory=list)
    #: Nodes that were over-committed but could not be relieved.
    unrelieved_nodes: List[str] = field(default_factory=list)


class EpcRebalancer:
    """Relieves over-committed EPCs by migrating the smallest enclaves.

    Parameters
    ----------
    orchestrator:
        The control plane to act on.
    max_migrations_per_pass:
        Safety valve against migration storms.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        max_migrations_per_pass: int = 4,
    ):
        self.orchestrator = orchestrator
        self.max_migrations_per_pass = max_migrations_per_pass

    # -- observation -------------------------------------------------------

    def overcommitted_nodes(self) -> List[str]:
        """SGX nodes whose EPC allocations exceed the usable pages."""
        names = []
        for node in self.orchestrator.cluster.sgx_nodes:
            assert node.epc is not None
            if node.epc.overcommitted:
                names.append(node.name)
        return names

    def _victims(self, node_name: str) -> List[Tuple[int, Pod]]:
        """``(pages, pod)`` running on *node_name*, smallest first.

        Uses the driver's per-process occupancy ioctl — the paper's
        stated mechanism for identifying migration candidates.  The
        measured page count is what the move must fit into the target:
        an enclave grown past its declared size (SGX2 EAUG) occupies
        its *measured* pages, not ``spec.workload.epc_pages``.
        """
        kubelet = self.orchestrator.kubelets[node_name]
        driver = kubelet.node.driver
        assert driver is not None
        candidates = []
        for pod in kubelet.admitted_pods():
            if not pod.requires_sgx and not (
                pod.spec.workload and pod.spec.workload.uses_sgx
            ):
                continue
            if pod.phase.value != "Running":
                continue
            record = kubelet._records.get(pod.uid)
            if record is None or record.pid is None:
                continue
            pages = driver.process_epc_pages(record.pid)
            if pages > 0:
                candidates.append((pages, pod))
        candidates.sort(key=lambda item: (item[0], item[1].uid))
        return candidates

    def _best_target(self, pages_needed: int, exclude: str) -> Optional[str]:
        """The SGX node with the most free pages that can host the move."""
        best_name = None
        best_free = -1
        for node in self.orchestrator.cluster.sgx_nodes:
            if node.name == exclude:
                continue
            free = node.free_epc_pages()
            if free >= pages_needed and free > best_free:
                best_free = free
                best_name = node.name
        return best_name

    # -- action ------------------------------------------------------------

    def rebalance(self, now: float) -> RebalanceReport:
        """One pass: relieve every over-committed node if possible."""
        report = RebalanceReport()
        budget = self.max_migrations_per_pass
        for node_name in self.overcommitted_nodes():
            if budget <= 0:
                # Budget spent on earlier nodes: stop scanning victims
                # entirely — a pass must never exceed its safety valve.
                report.unrelieved_nodes.append(node_name)
                continue
            node = self.orchestrator.cluster.node(node_name)
            assert node.epc is not None
            relieved = False
            for pages, pod in self._victims(node_name):
                if budget <= 0 or not node.epc.overcommitted:
                    break
                target = self._best_target(pages, exclude=node_name)
                if target is None:
                    continue
                budget -= 1
                try:
                    downtime = self.orchestrator.migrate_pod(
                        pod, target, now
                    )
                except OrchestrationError:
                    if not pod.phase.is_terminal:
                        # Failed before the checkpoint (precondition
                        # raise): the pod still runs on the source,
                        # untouched.  Nothing to repair.
                        continue
                    # The checkpoint already destroyed the source-side
                    # enclave, so the pod is failed-and-gone; resubmit
                    # its spec so the work is retried rather than
                    # silently lost.  The source's pages did free, so
                    # residency still needs rebalancing.
                    replacement = self.orchestrator.submit(pod.spec, now)
                    report.failed.append(
                        FailedMigration(
                            pod_name=pod.name,
                            pod_uid=pod.uid,
                            source_node=node_name,
                            target_node=target,
                            replacement=replacement,
                        )
                    )
                    ledger = self.orchestrator.ledger
                    if ledger.enabled:
                        ledger.emit(
                            now, "migration_failed",
                            pod=pod.name, source=node_name,
                            target=target,
                            replacement=replacement.name,
                        )
                    node.epc.rebalance_residency()
                    continue
                relieved = True
                report.actions.append(
                    MigrationAction(
                        pod_name=pod.name,
                        source_node=node_name,
                        target_node=target,
                        pages_moved=pages,
                        downtime_seconds=downtime,
                    )
                )
                ledger = self.orchestrator.ledger
                if ledger.enabled:
                    ledger.emit(
                        now, "migration",
                        pod=pod.name, source=node_name, target=target,
                        pages=pages, downtime_s=downtime,
                    )
                node.epc.rebalance_residency()
            if node.epc.overcommitted and not relieved:
                report.unrelieved_nodes.append(node_name)
        return report
