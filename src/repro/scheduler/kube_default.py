"""Baseline: the stock Kubernetes scheduler.

Section IV observes that existing orchestrators "rely on statically-
provided information given by the users upon deployment", which "can be
malformed or non-conforming to the real usage of the containers, and
henceforth leading to over- or under-allocations".

This baseline reproduces that behaviour: feasibility and scoring use
*declared requests only* (``use_measured=False``), and nodes are scored
with a least-requested spreading heuristic in the spirit of Kubernetes'
``LeastRequestedPriority``.  It still understands the device-plugin EPC
resource (a stock scheduler counts extended resources), so the comparison
against the SGX-aware schedulers isolates the value of *measured usage*,
not of EPC awareness per se.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..orchestrator.pod import Pod
from ..registry import register_scheduler
from .base import NodeView, Scheduler
from .index import NodeCandidateIndex


class KubeDefaultScheduler(Scheduler):
    """Declared-requests-only scheduling with least-requested scoring."""

    name = "kube-default"

    def __init__(self, strict_fcfs: bool = False, indexed: bool = False):
        super().__init__(
            use_measured=False, strict_fcfs=strict_fcfs, indexed=indexed
        )

    def _select_indexed(
        self, pod: Pod, index: NodeCandidateIndex
    ) -> Tuple[bool, Optional[NodeView]]:
        """Least-requested walk over the dominant-utilisation order.

        A node's current load lower-bounds its post-placement load for
        non-negative requests, so walking candidates ascending by
        ``(load, name)`` lets the scan stop as soon as the next
        candidate's load strictly exceeds the best score found: no
        later candidate's key can compare smaller.  Ties on the score
        still fall through to the oracle's ``(sgx, name)``
        tie-breakers, which is why the cutoff must be strict.
        """
        sequence = index.group_sequence(pod, self.preserve_sgx_nodes)
        if sequence is None:
            # Preservation off: both groups form one scoring pool; the
            # generic oracle-shaped path stays exact without a merge.
            return super()._select_indexed(pod, index)
        requests = pod.spec.resources.requests
        for group in sequence:
            if group.cannot_fit(requests):
                index.stats.bound_skips += 1
                continue
            best: Optional[NodeView] = None
            best_key = None
            for load, view in group.iter_by_load():
                if best_key is not None and load > best_key[0]:
                    index.stats.score_cutoffs += 1
                    break
                index.stats.feasibility_checks += 1
                if not requests.fits_within(view.available):
                    continue
                key = (
                    view.load_after(requests),
                    view.sgx_capable,
                    view.name,
                )
                if best_key is None or key < best_key:
                    best_key = key
                    best = view
            if best is not None:
                return True, best
        return False, None

    def _select(
        self,
        pod: Pod,
        candidates: Sequence[NodeView],
        views: Sequence[NodeView],
    ) -> Optional[NodeView]:
        requests = pod.spec.resources.requests

        def score(view: NodeView) -> tuple:
            # Lower post-placement load is better (more headroom), which
            # is LeastRequestedPriority inverted into a minimisation.
            return (view.load_after(requests), view.sgx_capable, view.name)

        return min(candidates, key=score, default=None)


@register_scheduler("kube-default")
def _kube_default_factory(
    use_measured: bool = False,
    strict_fcfs: bool = False,
    preserve_sgx_nodes: bool = True,
    indexed: bool = False,
) -> KubeDefaultScheduler:
    """Registry factory: the baseline ignores the SGX-aware knobs.

    ``use_measured`` and ``preserve_sgx_nodes`` are accepted and
    dropped — the stock scheduler is *defined* by declared-requests
    feasibility, so a scenario cannot accidentally turn the baseline
    into a measured-usage scheduler by flipping a shared toggle.
    """
    return KubeDefaultScheduler(strict_fcfs=strict_fcfs, indexed=indexed)
