"""Baseline: the stock Kubernetes scheduler.

Section IV observes that existing orchestrators "rely on statically-
provided information given by the users upon deployment", which "can be
malformed or non-conforming to the real usage of the containers, and
henceforth leading to over- or under-allocations".

This baseline reproduces that behaviour: feasibility and scoring use
*declared requests only* (``use_measured=False``), and nodes are scored
with a least-requested spreading heuristic in the spirit of Kubernetes'
``LeastRequestedPriority``.  It still understands the device-plugin EPC
resource (a stock scheduler counts extended resources), so the comparison
against the SGX-aware schedulers isolates the value of *measured usage*,
not of EPC awareness per se.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..orchestrator.pod import Pod
from .base import NodeView, Scheduler


class KubeDefaultScheduler(Scheduler):
    """Declared-requests-only scheduling with least-requested scoring."""

    name = "kube-default"

    def __init__(self, strict_fcfs: bool = False):
        super().__init__(use_measured=False, strict_fcfs=strict_fcfs)

    def _select(
        self,
        pod: Pod,
        candidates: Sequence[NodeView],
        views: Sequence[NodeView],
    ) -> Optional[NodeView]:
        requests = pod.spec.resources.requests

        def score(view: NodeView) -> tuple:
            # Lower post-placement load is better (more headroom), which
            # is LeastRequestedPriority inverted into a minimisation.
            return (view.load_after(requests), view.sgx_capable, view.name)

        return min(candidates, key=score, default=None)
