"""SGX-aware scheduling: the paper's primary contribution.

The scheduler combines two kinds of data (Section IV): the *declared*
resource requests of pending jobs, and *measured* usage fetched from the
time-series database with sliding-window queries.  Infeasible job-node
combinations are filtered out (hardware compatibility, saturation), then
a placement policy picks among the survivors:

* :class:`~repro.scheduler.binpack.BinpackScheduler` — fill nodes in a
  consistent order, SGX nodes last for standard jobs;
* :class:`~repro.scheduler.spread.SpreadScheduler` — minimise the
  standard deviation of node loads;
* :class:`~repro.scheduler.kube_default.KubeDefaultScheduler` — the
  baseline: Kubernetes' declared-requests-only behaviour.
"""

from .base import (
    Assignment,
    ClusterStateService,
    NodeView,
    Scheduler,
    SchedulingOutcome,
)
from .binpack import BinpackScheduler
from .filtering import FilterReason, feasible_candidates, feasible_nodes
from .index import NodeCandidateIndex, SelectionStats
from .kube_default import KubeDefaultScheduler
from .spread import SpreadScheduler

__all__ = [
    "Assignment",
    "BinpackScheduler",
    "ClusterStateService",
    "FilterReason",
    "KubeDefaultScheduler",
    "NodeCandidateIndex",
    "NodeView",
    "Scheduler",
    "SchedulingOutcome",
    "SelectionStats",
    "SpreadScheduler",
    "feasible_candidates",
    "feasible_nodes",
]
