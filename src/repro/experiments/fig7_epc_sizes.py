"""Fig. 7 — pending-queue time series for simulated EPC sizes.

The paper simulates the trace under EPC sizes of 32, 64, 128 and 256 MiB
and plots the total memory requested by pending pods over time.  The
observed makespans are ~4 h 47 min, 2 h 47 min, 1 h 22 min and 1 h: the
256 MiB run shows no contention at all (the batch completes in the trace
hour), while halving the EPC roughly doubles the drain time.

Jobs whose enclave cannot fit even an idle node (possible at 32 MiB,
where the usable EPC is ~23.4 MiB but enclaves reach ~46.75 MiB) are
rejected as permanently unschedulable; the queue drains to zero, as in
the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..api import Scenario, Sweep
from ..simulation.metrics import QueueSample
from ..trace.schema import Trace
from ..units import fmt_duration, mib
from .common import DEFAULT_RUN_SEED, default_trace, format_table

#: Simulated EPC sizes (total PRM bytes), as in the figure's legend.
EPC_SIZES_MIB = (32, 64, 128, 256)


@dataclass
class Fig7Run:
    """One EPC size's replay."""

    epc_mib: int
    makespan_seconds: float
    queue_series: List[QueueSample]
    completed: int
    rejected: int

    def peak_pending_mib(self) -> float:
        """Largest EPC backlog observed (the curve's peak)."""
        if not self.queue_series:
            return 0.0
        return max(s.pending_epc_mib for s in self.queue_series)


@dataclass
class Fig7Result:
    """The EPC-size sweep."""

    runs: Dict[int, Fig7Run]

    def makespans(self) -> Dict[int, float]:
        """Makespan seconds per EPC size."""
        return {
            size: run.makespan_seconds for size, run in self.runs.items()
        }


def run_fig7(
    trace: Trace = None,
    seed: int = DEFAULT_RUN_SEED,
    sizes_mib=EPC_SIZES_MIB,
) -> Fig7Result:
    """Replay the all-SGX trace under each simulated EPC size."""
    if trace is None:
        trace = default_trace()
    sweep = Sweep(
        Scenario(
            scheduler="binpack", sgx_fraction=1.0, seed=seed, trace=trace
        ),
        grid={"epc_total_bytes": [mib(size) for size in sizes_mib]},
        name="fig7",
    )
    runs: Dict[int, Fig7Run] = {}
    for size, result in zip(sizes_mib, sweep.run(), strict=True):
        metrics = result.metrics
        runs[size] = Fig7Run(
            epc_mib=size,
            makespan_seconds=metrics.makespan_seconds,
            queue_series=metrics.queue_series,
            completed=len(metrics.succeeded),
            rejected=len(metrics.failed),
        )
    return Fig7Result(runs=runs)


def format_fig7(result: Fig7Result) -> str:
    """The table the bench prints: makespan and backlog per EPC size."""
    return format_table(
        [
            "EPC [MiB]",
            "makespan",
            "peak pending [MiB]",
            "completed",
            "rejected",
        ],
        [
            (
                size,
                fmt_duration(run.makespan_seconds),
                run.peak_pending_mib(),
                run.completed,
                run.rejected,
            )
            for size, run in sorted(result.runs.items())
        ],
    )
