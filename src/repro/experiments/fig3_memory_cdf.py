"""Fig. 3 — Google Borg trace: distribution of maximal memory usage.

The paper plots the CDF of per-job maximal memory usage as a fraction of
the largest machine; the x-axis tops out at 0.5 and roughly 80 % of jobs
sit below 0.1.  This driver reproduces the CDF over the full-trace
marginal and reports it at a fixed grid of fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..trace.borg import BorgTraceGenerator
from ..trace.stats import cdf_at
from .common import DEFAULT_TRACE_SEED, format_table

#: Grid of max-memory fractions at which the CDF is reported.
FRACTION_GRID = (0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5)


@dataclass
class Fig3Result:
    """CDF of maximal memory usage."""

    points: List[Tuple[float, float]]  # (fraction, CDF %)
    sample_count: int

    @property
    def share_below_tenth(self) -> float:
        """CDF at 0.1, the paper's visually dominant feature."""
        for fraction, share in self.points:
            if fraction == 0.1:
                return share
        raise ValueError("grid does not include 0.1")

    @property
    def max_fraction_covered(self) -> float:
        """CDF at 0.5 — should be 100 % (nothing exceeds half a machine)."""
        return self.points[-1][1]


def run_fig3(
    seed: int = DEFAULT_TRACE_SEED, n_samples: int = 50_000
) -> Fig3Result:
    """Compute Fig. 3's CDF from the trace generator's marginals."""
    _, max_memory = BorgTraceGenerator(seed=seed).marginal_samples(n_samples)
    samples = max_memory.tolist()
    points = [
        (fraction, cdf_at(samples, fraction)) for fraction in FRACTION_GRID
    ]
    return Fig3Result(points=points, sample_count=len(samples))


def format_fig3(result: Fig3Result) -> str:
    """The table the bench prints: CDF % at each memory fraction."""
    return format_table(
        ["max mem [fraction]", "CDF [%]"],
        [(f"{fraction:.2f}", share) for fraction, share in result.points],
    )
