"""Fig. 10 — aggregate turnaround times versus the trace's useful time.

The paper sums the turnaround (submission to death) of all jobs for four
single-type runs — {binpack, spread} x {standard-only, SGX-only} — and
compares against the trace's total useful duration (the dotted bar).
Reported findings: binpack beats spread; under binpack, SGX jobs need
slightly less than twice the time of standard jobs; the trace bar lower-
bounds everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..api import Scenario, Sweep
from ..trace.schema import Trace
from .common import DEFAULT_RUN_SEED, default_trace, format_table

RUN_MATRIX = (
    ("binpack", "standard", 0.0),
    ("binpack", "sgx", 1.0),
    ("spread", "standard", 0.0),
    ("spread", "sgx", 1.0),
)


@dataclass
class Fig10Result:
    """Total turnaround hours per run, plus the trace bar."""

    turnaround_hours: Dict[str, float]  # "<strategy>/<kind>" -> hours
    trace_hours: float

    def get(self, strategy: str, kind: str) -> float:
        """Total turnaround hours of one run."""
        return self.turnaround_hours[f"{strategy}/{kind}"]

    def sgx_to_standard_ratio(self, strategy: str) -> float:
        """How much longer SGX jobs take than standard ones."""
        return self.get(strategy, "sgx") / self.get(strategy, "standard")


def run_fig10(
    trace: Trace = None, seed: int = DEFAULT_RUN_SEED
) -> Fig10Result:
    """Run the four single-type replays and sum turnarounds."""
    if trace is None:
        trace = default_trace()
    sweep = Sweep(
        Scenario(seed=seed, trace=trace),
        variations=[
            {
                "name": f"{strategy}/{kind}",
                "scheduler": strategy,
                "sgx_fraction": fraction,
            }
            for strategy, kind, fraction in RUN_MATRIX
        ],
        name="fig10",
    )
    hours: Dict[str, float] = {}
    for result in sweep.run():
        hours[result.scenario.name] = (
            result.metrics.total_turnaround_hours()
        )
    return Fig10Result(
        turnaround_hours=hours,
        trace_hours=trace.total_duration_seconds / 3600.0,
    )


def format_fig10(result: Fig10Result) -> str:
    """The table the bench prints: the figure's bars in hours."""
    rows = [
        (key, hours)
        for key, hours in sorted(result.turnaround_hours.items())
    ]
    rows.append(("trace (useful duration)", result.trace_hours))
    return format_table(["run", "total turnaround [h]"], rows)
