"""Fig. 8 — CDF of waiting times for varying SGX job shares.

The paper replays the trace with 0 %, 25 %, 50 %, 75 % and 100 % of jobs
designated SGX-enabled, under the binpack strategy.  Findings: the
no-SGX run waits little; 25-50 % mixes sit close to it ("incorporating a
reasonable number of SGX jobs has close to zero impact"); the pure-SGX
run goes off the chart with a 4696 s longest wait.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..api import Scenario, Sweep
from ..trace.schema import Trace
from ..trace.stats import cdf_at, mean
from .common import DEFAULT_RUN_SEED, default_trace, format_table

#: SGX job shares on the figure's legend.
SGX_FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Waiting-time grid (seconds) at which CDFs are reported.
WAIT_GRID = (5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1200.0, 2000.0)


@dataclass
class Fig8Run:
    """One SGX share's replay."""

    sgx_fraction: float
    waiting_times: List[float]
    max_wait: float
    mean_wait: float

    def cdf_points(self) -> List[Tuple[float, float]]:
        """(wait s, CDF %) along the grid."""
        return [(w, cdf_at(self.waiting_times, w)) for w in WAIT_GRID]


@dataclass
class Fig8Result:
    """The SGX-share sweep."""

    runs: Dict[float, Fig8Run]

    def run_at(self, fraction: float) -> Fig8Run:
        """The run for one SGX share."""
        return self.runs[fraction]


def run_fig8(
    trace: Trace = None,
    seed: int = DEFAULT_RUN_SEED,
    fractions=SGX_FRACTIONS,
) -> Fig8Result:
    """Replay the trace at each SGX share under binpack."""
    if trace is None:
        trace = default_trace()
    sweep = Sweep(
        Scenario(scheduler="binpack", seed=seed, trace=trace),
        grid={"sgx_fraction": list(fractions)},
        name="fig8",
    )
    runs: Dict[float, Fig8Run] = {}
    for fraction, result in zip(fractions, sweep.run(), strict=True):
        waits = result.metrics.waiting_times()
        runs[fraction] = Fig8Run(
            sgx_fraction=fraction,
            waiting_times=waits,
            max_wait=max(waits) if waits else 0.0,
            mean_wait=mean(waits) if waits else 0.0,
        )
    return Fig8Result(runs=runs)


def format_fig8(result: Fig8Result) -> str:
    """The table the bench prints: CDF % per wait threshold and share."""
    fractions = sorted(result.runs)
    headers = ["wait [s]"] + [f"{int(f * 100)}% SGX" for f in fractions]
    rows = []
    for wait in WAIT_GRID:
        rows.append(
            [f"{wait:.0f}"]
            + [
                cdf_at(result.runs[f].waiting_times, wait)
                for f in fractions
            ]
        )
    rows.append(
        ["max wait"] + [result.runs[f].max_wait for f in fractions]
    )
    return format_table(headers, rows)
