"""Per-figure experiment drivers.

One module per table/figure of the paper's evaluation (Section VI).
Each exposes a ``run_*`` function returning a structured result with the
same rows/series the paper plots, plus a ``format_*`` helper printing it
as a text table.  The benchmark harness under ``benchmarks/`` is a thin
wrapper around these drivers.
"""

from .common import default_trace, format_table
from .fig10_turnaround import run_fig10
from .fig11_limits import run_fig11
from .fig3_memory_cdf import run_fig3
from .fig4_duration_cdf import run_fig4
from .fig5_concurrency import run_fig5
from .fig6_startup import run_fig6
from .fig7_epc_sizes import run_fig7
from .fig8_waiting_cdf import run_fig8
from .fig9_strategies import run_fig9

__all__ = [
    "default_trace",
    "format_table",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
]
