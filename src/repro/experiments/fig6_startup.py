"""Fig. 6 — startup time of SGX processes for varying EPC sizes.

The paper averages 60 runs per requested EPC size and decomposes startup
into PSW service startup (~100 ms, flat) and memory allocation (two
linear trends: 1.6 ms/MiB below the usable EPC, then a ~200 ms fixed
penalty plus 4.5 ms/MiB).  Standard processes start in under 1 ms and are
omitted.

The latency *model* is deterministic; like any measurement the paper's
numbers carry noise, so the driver replays 60 noisy observations per size
(seeded, multiplicative Gaussian) and reports mean and 95 % confidence
half-width — the figure's error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..sgx.perf import SgxPerfModel
from ..trace.stats import confidence_interval_95
from ..units import mib
from .common import format_table

#: Requested EPC sizes on the figure's y-axis.
EPC_SIZES_MIB = (0.0, 16.0, 32.0, 48.0, 64.0, 80.0, 93.5, 112.0, 128.0)

#: Runs per size, as in the paper.
RUNS_PER_SIZE = 60

#: Relative measurement noise (sigma) applied per observation.
MEASUREMENT_NOISE = 0.03


@dataclass
class Fig6Row:
    """One size's startup decomposition."""

    epc_mib: float
    psw_mean_s: float
    psw_ci95_s: float
    alloc_mean_s: float
    alloc_ci95_s: float

    @property
    def total_mean_s(self) -> float:
        """Mean end-to-end startup latency."""
        return self.psw_mean_s + self.alloc_mean_s


@dataclass
class Fig6Result:
    """The startup curve."""

    rows: List[Fig6Row]

    def row_at(self, epc_mib: float) -> Fig6Row:
        """The row for a given requested size."""
        for row in self.rows:
            if abs(row.epc_mib - epc_mib) < 1e-9:
                return row
        raise ValueError(f"no row for {epc_mib} MiB")

    def alloc_slope_below_knee(self) -> float:
        """Fitted allocation seconds/MiB below the usable-EPC knee."""
        below = [r for r in self.rows if r.epc_mib <= 93.5 and r.epc_mib > 0]
        xs = [r.epc_mib for r in below]
        ys = [r.alloc_mean_s for r in below]
        return float(np.polyfit(xs, ys, 1)[0])

    def alloc_slope_above_knee(self) -> float:
        """Fitted allocation seconds/MiB above the knee."""
        above = [r for r in self.rows if r.epc_mib > 93.5]
        xs = [r.epc_mib for r in above]
        ys = [r.alloc_mean_s for r in above]
        return float(np.polyfit(xs, ys, 1)[0])


def run_fig6(
    seed: int = 0,
    sizes_mib=EPC_SIZES_MIB,
    runs: int = RUNS_PER_SIZE,
) -> Fig6Result:
    """Measure the startup curve with 60 noisy runs per size."""
    model = SgxPerfModel()
    rng = np.random.default_rng(seed)
    rows: List[Fig6Row] = []
    for size in sizes_mib:
        breakdown = model.startup(mib(size))
        psw_obs = breakdown.psw_seconds * (
            1.0 + rng.normal(0.0, MEASUREMENT_NOISE, size=runs)
        )
        alloc_obs = breakdown.allocation_seconds * (
            1.0 + rng.normal(0.0, MEASUREMENT_NOISE, size=runs)
        )
        psw_mean, psw_ci = confidence_interval_95(psw_obs.tolist())
        alloc_mean, alloc_ci = confidence_interval_95(alloc_obs.tolist())
        rows.append(
            Fig6Row(
                epc_mib=size,
                psw_mean_s=psw_mean,
                psw_ci95_s=psw_ci,
                alloc_mean_s=alloc_mean,
                alloc_ci95_s=alloc_ci,
            )
        )
    return Fig6Result(rows=rows)


def format_fig6(result: Fig6Result) -> str:
    """The table the bench prints: startup decomposition per EPC size."""
    return format_table(
        [
            "EPC [MiB]",
            "PSW [ms]",
            "+-95% [ms]",
            "alloc [ms]",
            "+-95% [ms]",
            "total [ms]",
        ],
        [
            (
                f"{row.epc_mib:.1f}",
                row.psw_mean_s * 1000.0,
                row.psw_ci95_s * 1000.0,
                row.alloc_mean_s * 1000.0,
                row.alloc_ci95_s * 1000.0,
                row.total_mean_s * 1000.0,
            )
            for row in result.rows
        ],
    )
