"""Extension experiment — hybrid trusted/untrusted jobs.

The paper's conclusion plans support for "hybrid processes running
trusted and untrusted code"; its evaluation machines make the trade
interesting: the SGX workers carry 93.5 MiB of usable EPC but only
8 GiB of RAM.  This experiment sweeps the *untrusted memory share* of a
hybrid job population and measures which resource binds: as the
untrusted working set grows, RAM on the SGX nodes saturates first and
EPC capacity strands — quantifying why the paper assumes jobs run
"entirely in enclaves" and what changes once they do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..cluster.topology import paper_cluster
from ..orchestrator.controller import Orchestrator
from ..orchestrator.pod import Pod
from ..registry import SCHEDULERS, WORKLOADS
from ..simulation.engine import SimulationEngine
from ..units import gib
from .common import format_table

#: Untrusted-memory sizes swept (bytes per job), as RAM/EPC ratios.
MEMORY_SHARES_GIB = (0.0625, 0.5, 1.0, 2.0, 4.0)


@dataclass
class HybridRun:
    """One memory share's outcome."""

    memory_gib: float
    makespan_seconds: float
    mean_wait_seconds: float
    #: Peak EPC utilisation achieved across SGX nodes (0..1).
    peak_epc_utilization: float
    #: Peak RAM utilisation achieved across SGX nodes (0..1).
    peak_memory_utilization: float

    @property
    def binding_resource(self) -> str:
        """Which dimension limited packing at the peak."""
        return (
            "memory"
            if self.peak_memory_utilization > self.peak_epc_utilization
            else "epc"
        )


@dataclass
class ExtHybridResult:
    """The sweep over untrusted-memory shares."""

    runs: Dict[float, HybridRun]


class _HybridRun:
    """Mini event-driven run of one hybrid job population."""

    def __init__(self, memory_bytes: int, n_jobs: int, seed: int):
        self.cluster = paper_cluster()
        self.orchestrator = Orchestrator(self.cluster)
        self.scheduler = SCHEDULERS.get("binpack")()
        self.engine = SimulationEngine()
        # The population comes from the registered hybrid workload, the
        # same plans a Scenario(workload="hybrid") replays.
        plans = WORKLOADS.get("hybrid")(
            self.cluster,
            None,
            seed=seed,
            n_jobs=n_jobs,
            memory_bytes=memory_bytes,
        )
        self.specs = [(plan.submit_time, plan.spec) for plan in plans]
        self.durations: Dict[str, float] = {
            plan.spec.name: plan.spec.workload.duration_seconds
            for plan in plans
        }
        self.unsubmitted = n_jobs
        self.running = 0
        self.peak_epc = 0.0
        self.peak_mem = 0.0

    def _active(self) -> bool:
        return (
            self.unsubmitted > 0
            or self.running > 0
            or len(self.orchestrator.queue) > 0
        )

    def _observe_peaks(self) -> None:
        for node in self.cluster.sgx_nodes:
            assert node.epc is not None
            epc_util = node.used_epc_pages() / node.epc.total_pages
            mem_util = (
                node.used_memory_bytes() / node.spec.memory_bytes
            )
            self.peak_epc = max(self.peak_epc, epc_util)
            self.peak_mem = max(self.peak_mem, mem_util)

    def _metrics_tick(self) -> None:
        self.orchestrator.collect_metrics(self.engine.now)
        self._observe_peaks()
        if self._active():
            self.engine.schedule_in(10.0, self._metrics_tick)

    def _scheduler_tick(self) -> None:
        result = self.orchestrator.scheduling_pass(
            self.scheduler, self.engine.now
        )
        for pod, startup in result.launched:
            self.running += 1
            self.engine.schedule_in(startup, lambda p=pod: self._start(p))
        if self._active():
            self.engine.schedule_in(5.0, self._scheduler_tick)

    def _start(self, pod: Pod) -> None:
        self.orchestrator.start_pod(pod, self.engine.now)
        self._observe_peaks()
        self.engine.schedule_in(
            self.durations[pod.name], lambda: self._finish(pod)
        )

    def _finish(self, pod: Pod) -> None:
        self.running -= 1
        self.orchestrator.complete_pod(pod, self.engine.now)

    def _submit(self, spec) -> None:
        self.unsubmitted -= 1
        self.orchestrator.submit(spec, self.engine.now)

    def run(self, memory_gib: float) -> HybridRun:
        for submit_time, spec in self.specs:
            self.engine.schedule_at(
                submit_time, lambda s=spec: self._submit(s)
            )
        self.engine.schedule_at(0.0, self._metrics_tick)
        self.engine.schedule_at(2.5, self._scheduler_tick)
        self.engine.run(until=24 * 3600.0)
        pods = self.orchestrator.all_pods
        waits = [
            p.waiting_seconds for p in pods if p.waiting_seconds is not None
        ]
        return HybridRun(
            memory_gib=memory_gib,
            makespan_seconds=max(
                (p.finished_at for p in pods if p.finished_at), default=0.0
            ),
            mean_wait_seconds=sum(waits) / len(waits) if waits else 0.0,
            peak_epc_utilization=self.peak_epc,
            peak_memory_utilization=self.peak_mem,
        )


def run_ext_hybrid(
    n_jobs: int = 60, seed: int = 0, shares_gib=MEMORY_SHARES_GIB
) -> ExtHybridResult:
    """Sweep the untrusted-memory share of a hybrid job population."""
    runs: Dict[float, HybridRun] = {}
    for share in shares_gib:
        runner = _HybridRun(
            memory_bytes=int(gib(share)), n_jobs=n_jobs, seed=seed
        )
        runs[share] = runner.run(share)
    return ExtHybridResult(runs=runs)


def format_ext_hybrid(result: ExtHybridResult) -> str:
    """The table the bench prints: binding resource per memory share."""
    rows: List = []
    for share, run in sorted(result.runs.items()):
        rows.append(
            (
                f"{share:g} GiB",
                run.makespan_seconds,
                run.mean_wait_seconds,
                run.peak_epc_utilization * 100.0,
                run.peak_memory_utilization * 100.0,
                run.binding_resource,
            )
        )
    return format_table(
        [
            "untrusted mem/job",
            "makespan [s]",
            "mean wait [s]",
            "peak EPC [%]",
            "peak RAM [%]",
            "binds",
        ],
        rows,
    )
