"""Shared plumbing for the per-figure experiment drivers.

The table formatter and the default seeds now live with the scenario
layer (:mod:`repro.api.format`, :mod:`repro.constants`); this module
re-exports them so driver code keeps one import site.
"""

from __future__ import annotations

from ..api.format import format_table
from ..constants import DEFAULT_RUN_SEED, DEFAULT_TRACE_SEED
from ..trace.adapters import resolve_trace
from ..trace.schema import Trace

__all__ = [
    "DEFAULT_RUN_SEED",
    "DEFAULT_TRACE_SEED",
    "default_trace",
    "format_table",
]


def default_trace(seed: int = DEFAULT_TRACE_SEED) -> Trace:
    """The evaluation workload shared by all figure drivers.

    Resolved through the trace-adapter registry — the same path
    ``Scenario(trace="borg-synth:seed=N")`` takes — so the figures
    and ad-hoc scenarios can never drift apart on trace synthesis.
    """
    return resolve_trace(f"borg-synth:seed={seed}")
