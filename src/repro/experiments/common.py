"""Shared plumbing for the per-figure experiment drivers."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from ..trace.borg import synthetic_scaled_trace
from ..trace.schema import Trace

#: Seed used by every driver unless overridden: one trace, many runs,
#: exactly like the paper replaying one scaled trace under many configs.
DEFAULT_TRACE_SEED = 42

#: Seed for SGX-designation and other per-run randomness.
DEFAULT_RUN_SEED = 1


def default_trace(seed: int = DEFAULT_TRACE_SEED) -> Trace:
    """The evaluation workload shared by all figure drivers."""
    return synthetic_scaled_trace(seed=seed)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as a fixed-width text table (the bench output format)."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append(
            [
                f"{cell:.2f}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(line[col]) for line in materialized)
        for col in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(materialized):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
