"""Fig. 4 — Google Borg trace: distribution of job duration.

All jobs in the paper's trace last at most 300 s; the CDF rises smoothly
across [0, 300].  Reported at a fixed grid of durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..trace.borg import BorgTraceGenerator
from ..trace.stats import cdf_at
from .common import DEFAULT_TRACE_SEED, format_table

#: Grid of durations (seconds) at which the CDF is reported.
DURATION_GRID = (30.0, 60.0, 90.0, 120.0, 150.0, 180.0, 240.0, 300.0)


@dataclass
class Fig4Result:
    """CDF of job duration."""

    points: List[Tuple[float, float]]  # (seconds, CDF %)
    sample_count: int
    max_duration: float

    @property
    def all_within_cap(self) -> bool:
        """Whether no job exceeds the 300 s cap (the figure's x-range)."""
        return self.max_duration <= 300.0 and self.points[-1][1] >= 99.999


def run_fig4(
    seed: int = DEFAULT_TRACE_SEED, n_samples: int = 50_000
) -> Fig4Result:
    """Compute Fig. 4's CDF from the trace generator's marginals."""
    durations, _ = BorgTraceGenerator(seed=seed).marginal_samples(n_samples)
    samples = durations.tolist()
    points = [
        (duration, cdf_at(samples, duration)) for duration in DURATION_GRID
    ]
    return Fig4Result(
        points=points,
        sample_count=len(samples),
        max_duration=max(samples),
    )


def format_fig4(result: Fig4Result) -> str:
    """The table the bench prints: CDF % at each duration."""
    return format_table(
        ["duration [s]", "CDF [%]"],
        [(f"{duration:.0f}", share) for duration, share in result.points],
    )
