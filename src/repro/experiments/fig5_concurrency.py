"""Fig. 5 — concurrently running jobs during the trace's first 24 h.

The paper shows a 125 k-145 k band of concurrently running jobs and
highlights the [6480 s, 10080 s) evaluation slice, chosen as the least
job-intensive hour of the shown interval that still loads the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..constants import TRACE_SLICE_END_SECONDS, TRACE_SLICE_START_SECONDS
from ..trace.borg import BorgTraceGenerator
from .common import DEFAULT_TRACE_SEED, format_table


@dataclass
class Fig5Result:
    """Concurrency series over the first day of the trace."""

    series: List[Tuple[float, float]]  # (time s, running jobs)
    slice_start: float
    slice_end: float

    @property
    def band(self) -> Tuple[float, float]:
        """(min, max) concurrency over the day."""
        values = [v for _, v in self.series]
        return min(values), max(values)

    def slice_mean(self) -> float:
        """Mean concurrency inside the evaluation slice."""
        values = [
            v
            for t, v in self.series
            if self.slice_start <= t < self.slice_end
        ]
        return sum(values) / len(values)

    def day_mean(self) -> float:
        """Mean concurrency over the whole day."""
        values = [v for _, v in self.series]
        return sum(values) / len(values)


def run_fig5(
    seed: int = DEFAULT_TRACE_SEED, step_seconds: float = 600.0
) -> Fig5Result:
    """Compute the first-24 h concurrency series."""
    generator = BorgTraceGenerator(seed=seed)
    series = generator.concurrency_series(
        hours=24.0, step_seconds=step_seconds
    )
    return Fig5Result(
        series=series,
        slice_start=float(TRACE_SLICE_START_SECONDS),
        slice_end=float(TRACE_SLICE_END_SECONDS),
    )


def format_fig5(result: Fig5Result, every: int = 6) -> str:
    """Hourly concurrency table with the evaluation slice marked."""
    rows = []
    for index, (t, value) in enumerate(result.series):
        if index % every:
            continue
        marker = (
            "<- eval slice"
            if result.slice_start <= t < result.slice_end
            else ""
        )
        rows.append((f"{t / 3600.0:5.1f}", f"{value / 1000.0:7.1f}k", marker))
    return format_table(["time [h]", "total jobs", ""], rows)
