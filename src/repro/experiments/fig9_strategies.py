"""Fig. 9 — waiting times vs requested memory, spread vs binpack.

One replay with a 50/50 standard/SGX split per strategy; jobs are binned
by their declared memory request (EPC for SGX jobs, standard memory
otherwise) and the mean waiting time with a 95 % confidence interval is
reported per bin — the paper's bar plot with error bars.  The paper
observes spread consistently worse than binpack, and binpack handling
the bigger requests better.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..api import Scenario, Sweep
from ..trace.schema import Trace
from ..units import pages_to_mib
from .common import DEFAULT_RUN_SEED, default_trace, format_table

STRATEGIES = ("spread", "binpack")

#: Bins per job population, as in the figure's x-axis.
BIN_COUNT = 6


@dataclass
class Fig9Series:
    """One (strategy, job kind) series of per-bin mean waits."""

    strategy: str
    sgx: bool
    bins: List[Dict[str, float]]

    def overall_mean_wait(self) -> float:
        """Mean waiting time pooled over all bins (count-weighted)."""
        total = sum(b["mean_wait"] * b["count"] for b in self.bins)
        count = sum(b["count"] for b in self.bins)
        return total / count if count else 0.0


@dataclass
class Fig9Result:
    """All four series of the figure."""

    series: Dict[str, Fig9Series]  # key: "<strategy>/<sgx|standard>"

    def get(self, strategy: str, sgx: bool) -> Fig9Series:
        """One series by strategy and job kind."""
        kind = "sgx" if sgx else "standard"
        return self.series[f"{strategy}/{kind}"]


def run_fig9(
    trace: Trace = None, seed: int = DEFAULT_RUN_SEED
) -> Fig9Result:
    """Replay the 50/50 mix under both strategies and bin the waits."""
    if trace is None:
        trace = default_trace()
    sweep = Sweep(
        Scenario(sgx_fraction=0.5, seed=seed, trace=trace),
        grid={"scheduler": list(STRATEGIES)},
        name="fig9",
    )
    series: Dict[str, Fig9Series] = {}
    for strategy, result in zip(STRATEGIES, sweep.run(), strict=True):
        for sgx in (True, False):
            kind = "sgx" if sgx else "standard"
            series[f"{strategy}/{kind}"] = Fig9Series(
                strategy=strategy,
                sgx=sgx,
                bins=result.metrics.waiting_by_memory_bin(
                    bin_count=BIN_COUNT, sgx=sgx
                ),
            )
    return Fig9Result(series=series)


def format_fig9(result: Fig9Result) -> str:
    """The table the bench prints: per-bin mean waits with 95 % CIs."""
    rows = []
    for key in sorted(result.series):
        entry = result.series[key]
        for bin_row in entry.bins:
            if entry.sgx:
                low = pages_to_mib(int(bin_row["bin_low"]))
                high = pages_to_mib(int(bin_row["bin_high"]))
                request = f"{low:.0f}-{high:.0f} MiB EPC"
            else:
                low = bin_row["bin_low"] / 2**30
                high = bin_row["bin_high"] / 2**30
                request = f"{low:.1f}-{high:.1f} GiB"
            rows.append(
                (
                    key,
                    request,
                    bin_row["mean_wait"],
                    bin_row["ci95"],
                    int(bin_row["count"]),
                )
            )
    return format_table(
        ["series", "request bin", "mean wait [s]", "+-95% [s]", "jobs"],
        rows,
    )
