"""Fig. 11 — waiting times under malicious containers, with/without limits.

Section VI-F deploys one malicious container per SGX node: each declares
a 1-page EPC request/limit but actually occupies 25 % or 50 % of the
node's EPC.  Four runs are compared:

* limits disabled, trace jobs only (the reference);
* limits disabled, malicious at 25 % EPC;
* limits disabled, malicious at 50 % EPC — honest jobs wait longest;
* limits **enabled**, malicious at 50 % — enforcement kills the
  malicious pods at launch, and also the trace's own 44 over-allocators,
  which is why this run beats even the reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..api import Scenario, Sweep
from ..trace.schema import Trace
from ..trace.stats import cdf_at, mean
from ..workload.malicious import MaliciousConfig
from .common import DEFAULT_RUN_SEED, default_trace, format_table

#: SGX share used by the Fig. 11 runs (the trace replay of Sec. VI-B).
SGX_FRACTION = 0.5

#: Waiting-time grid (seconds) at which CDFs are reported.
WAIT_GRID = (5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1200.0, 2000.0)

#: The figure's four runs: (label, limits enforced, malicious occupancy).
RUN_MATRIX: Tuple[Tuple[str, bool, float], ...] = (
    ("limits-disabled/trace-only", False, 0.0),
    ("limits-disabled/25%-epc", False, 0.25),
    ("limits-disabled/50%-epc", False, 0.5),
    ("limits-enabled/50%-epc", True, 0.5),
)


@dataclass
class Fig11Run:
    """One configuration's replay."""

    label: str
    limits_enforced: bool
    malicious_occupancy: float
    honest_waits: List[float]
    killed_pods: int

    @property
    def mean_wait(self) -> float:
        """Mean waiting time of honest jobs that ran."""
        return mean(self.honest_waits) if self.honest_waits else 0.0

    @property
    def max_wait(self) -> float:
        """Longest wait of an honest job."""
        return max(self.honest_waits) if self.honest_waits else 0.0

    def cdf_points(self) -> List[Tuple[float, float]]:
        """(wait s, CDF %) along the grid."""
        return [(w, cdf_at(self.honest_waits, w)) for w in WAIT_GRID]


@dataclass
class Fig11Result:
    """All four runs."""

    runs: Dict[str, Fig11Run]

    def get(self, label: str) -> Fig11Run:
        """One run by its figure label."""
        return self.runs[label]


def run_fig11(
    trace: Trace = None, seed: int = DEFAULT_RUN_SEED
) -> Fig11Result:
    """Replay the four malicious/limits configurations."""
    if trace is None:
        trace = default_trace()
    sweep = Sweep(
        Scenario(
            scheduler="binpack",
            sgx_fraction=SGX_FRACTION,
            seed=seed,
            trace=trace,
        ),
        variations=[
            {
                "name": label,
                "enforce_epc_limits": enforce,
                "epc_allow_overcommit": not enforce,
                "malicious": (
                    MaliciousConfig(epc_occupancy=occupancy)
                    if occupancy
                    else None
                ),
            }
            for label, enforce, occupancy in RUN_MATRIX
        ],
        name="fig11",
    )
    runs: Dict[str, Fig11Run] = {}
    for (label, enforce, occupancy), result in zip(
        RUN_MATRIX, sweep.run(), strict=True
    ):
        honest = [
            pod
            for pod in result.metrics.succeeded
            if pod.spec.labels.get("origin") != "malicious"
        ]
        runs[label] = Fig11Run(
            label=label,
            limits_enforced=enforce,
            malicious_occupancy=occupancy,
            honest_waits=result.metrics.waiting_times(honest),
            killed_pods=len(result.metrics.failed),
        )
    return Fig11Result(runs=runs)


def format_fig11(result: Fig11Result) -> str:
    """The table the bench prints: CDF % per threshold and run."""
    labels = [label for label, _, _ in RUN_MATRIX]
    headers = ["wait [s]"] + labels
    rows = []
    for wait in WAIT_GRID:
        rows.append(
            [f"{wait:.0f}"]
            + [cdf_at(result.runs[lb].honest_waits, wait) for lb in labels]
        )
    rows.append(["mean wait"] + [result.runs[lb].mean_wait for lb in labels])
    rows.append(["killed"] + [result.runs[lb].killed_pods for lb in labels])
    return format_table(headers, rows)
