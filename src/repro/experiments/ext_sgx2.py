"""Extension experiment — SGX 2 dynamic memory (Section VI-G).

The paper predicts that SGX 2's dynamic EPC allocation "can really
improve resource utilization on shared infrastructures" and that its
measured-usage scheduler exploits it out of the box.  This experiment
quantifies that prediction on the paper's own cluster inventory.

Workload: bursty enclave jobs that hold a small *baseline* working set
for most of their runtime and a large *peak* only during a short burst.

* On **SGX 1** hardware, all enclave memory is committed at build time,
  so every job occupies its peak for its entire life.
* On **SGX 2** hardware, jobs commit the baseline, grow to the peak at
  burst time (EAUG, gated by the ported per-pod limit check) and shrink
  back afterwards.  The scheduler — unchanged — sees the lower measured
  usage through the same probes and packs more jobs per node.  A job
  whose growth does not fit retries until enough pages free up,
  stalling its burst (the EDMM analogue of waiting for memory).

Reported: makespan, mean waiting time and growth-stall totals for both
modes.  The SGX 2 run finishes the batch strictly earlier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..cluster.resources import ResourceVector
from ..cluster.topology import paper_cluster
from ..errors import EpcExhaustedError
from ..orchestrator.api import (
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
)
from ..orchestrator.controller import Orchestrator
from ..orchestrator.pod import Pod
from ..registry import SCHEDULERS
from ..simulation.engine import SimulationEngine
from .common import format_table

#: Growth-retry period when the EPC cannot satisfy an EAUG (seconds).
GROW_RETRY_SECONDS = 2.0


@dataclass(frozen=True)
class BurstyJob:
    """One bursty enclave job."""

    name: str
    submit_time: float
    duration: float
    baseline_pages: int
    peak_pages: int
    #: Fraction of the runtime at which the burst begins.
    burst_start_fraction: float
    #: Burst length as a fraction of the runtime.
    burst_length_fraction: float

    @property
    def burst_pages(self) -> int:
        """Pages added at burst time."""
        return self.peak_pages - self.baseline_pages


def generate_bursty_jobs(
    n_jobs: int = 80,
    seed: int = 0,
    window_seconds: float = 1800.0,
) -> List[BurstyJob]:
    """A seeded batch of bursty jobs sized for the paper's SGX nodes."""
    rng = np.random.default_rng(seed)
    submit_times = np.sort(rng.uniform(0.0, window_seconds, size=n_jobs))
    jobs = []
    for index in range(n_jobs):
        baseline = int(rng.integers(400, 1500))
        peak = int(rng.integers(8000, 14_000))
        jobs.append(
            BurstyJob(
                name=f"bursty-{index}",
                submit_time=float(submit_times[index]),
                duration=float(rng.uniform(90.0, 240.0)),
                baseline_pages=baseline,
                peak_pages=peak,
                burst_start_fraction=float(rng.uniform(0.2, 0.5)),
                burst_length_fraction=float(rng.uniform(0.15, 0.3)),
            )
        )
    return jobs


@dataclass
class ModeResult:
    """Outcome of one hardware mode's run."""

    sgx_version: int
    makespan_seconds: float
    mean_wait_seconds: float
    total_stall_seconds: float
    completed: int


@dataclass
class ExtSgx2Result:
    """Both modes, same workload."""

    sgx1: ModeResult
    sgx2: ModeResult

    @property
    def makespan_speedup(self) -> float:
        """How much earlier SGX 2 finishes the batch."""
        return self.sgx1.makespan_seconds / self.sgx2.makespan_seconds


class _BurstyRun:
    """Mini event-driven run of the bursty workload on one mode."""

    def __init__(self, jobs: List[BurstyJob], sgx_version: int):
        self.jobs = jobs
        self.sgx_version = sgx_version
        self.cluster = paper_cluster(sgx_version=sgx_version)
        self.orchestrator = Orchestrator(self.cluster)
        self.scheduler = SCHEDULERS.get("binpack")()
        self.engine = SimulationEngine()
        self.by_pod_name: Dict[str, BurstyJob] = {j.name: j for j in jobs}
        self.stall_seconds: Dict[str, float] = {}
        self.unsubmitted = len(jobs)
        self.running = 0

    def _spec(self, job: BurstyJob) -> PodSpec:
        committed = (
            job.peak_pages if self.sgx_version == 1 else job.baseline_pages
        )
        return PodSpec(
            name=job.name,
            resources=ResourceRequirements(
                # Declared request/limit is the peak in both modes: the
                # user must still advertise the most they will own.
                requests=ResourceVector(epc_pages=job.peak_pages)
            ),
            workload=WorkloadProfile(
                duration_seconds=job.duration, epc_pages=committed
            ),
        )

    # -- event handlers ------------------------------------------------

    def _active(self) -> bool:
        return (
            self.unsubmitted > 0
            or self.running > 0
            or len(self.orchestrator.queue) > 0
        )

    def _submit(self, job: BurstyJob) -> None:
        self.unsubmitted -= 1
        self.orchestrator.submit(self._spec(job), self.engine.now)

    def _metrics_tick(self) -> None:
        self.orchestrator.collect_metrics(self.engine.now)
        if self._active():
            self.engine.schedule_in(10.0, self._metrics_tick)

    def _scheduler_tick(self) -> None:
        result = self.orchestrator.scheduling_pass(
            self.scheduler, self.engine.now
        )
        for pod, startup in result.launched:
            self.running += 1
            self.engine.schedule_in(startup, lambda p=pod: self._start(p))
        if self._active():
            self.engine.schedule_in(5.0, self._scheduler_tick)

    def _start(self, pod: Pod) -> None:
        self.orchestrator.start_pod(pod, self.engine.now)
        job = self.by_pod_name[pod.name]
        if self.sgx_version >= 2:
            self.engine.schedule_in(
                job.burst_start_fraction * job.duration,
                lambda: self._try_grow(pod),
            )
        else:
            self.engine.schedule_in(
                job.duration, lambda: self._finish(pod)
            )

    def _try_grow(self, pod: Pod) -> None:
        """EAUG at burst time; retry while the EPC is full (stall)."""
        job = self.by_pod_name[pod.name]
        kubelet = self.orchestrator.kubelets[pod.node_name]
        try:
            kubelet.grow_pod_epc(pod, job.burst_pages)
        except EpcExhaustedError:
            self.stall_seconds[pod.name] = (
                self.stall_seconds.get(pod.name, 0.0) + GROW_RETRY_SECONDS
            )
            self.engine.schedule_in(
                GROW_RETRY_SECONDS, lambda: self._try_grow(pod)
            )
            return
        burst_len = job.burst_length_fraction * job.duration
        self.engine.schedule_in(burst_len, lambda: self._shrink(pod))

    def _shrink(self, pod: Pod) -> None:
        job = self.by_pod_name[pod.name]
        kubelet = self.orchestrator.kubelets[pod.node_name]
        kubelet.shrink_pod_epc(pod, job.burst_pages)
        tail = (
            1.0
            - job.burst_start_fraction
            - job.burst_length_fraction
        ) * job.duration
        self.engine.schedule_in(max(0.0, tail), lambda: self._finish(pod))

    def _finish(self, pod: Pod) -> None:
        self.running -= 1
        self.orchestrator.complete_pod(pod, self.engine.now)

    # -- main ------------------------------------------------------------

    def run(self) -> ModeResult:
        for job in self.jobs:
            self.engine.schedule_at(
                job.submit_time, lambda j=job: self._submit(j)
            )
        self.engine.schedule_at(0.0, self._metrics_tick)
        self.engine.schedule_at(2.5, self._scheduler_tick)
        self.engine.run(until=24 * 3600.0)
        pods = self.orchestrator.all_pods
        waits = [
            p.waiting_seconds for p in pods if p.waiting_seconds is not None
        ]
        return ModeResult(
            sgx_version=self.sgx_version,
            makespan_seconds=max(
                p.finished_at for p in pods if p.finished_at is not None
            ),
            mean_wait_seconds=sum(waits) / len(waits) if waits else 0.0,
            total_stall_seconds=sum(self.stall_seconds.values()),
            completed=sum(
                1 for p in pods if p.phase.value == "Succeeded"
            ),
        )


def run_ext_sgx2(
    n_jobs: int = 80, seed: int = 0
) -> ExtSgx2Result:
    """Run the bursty workload on SGX 1 and SGX 2 hardware."""
    jobs = generate_bursty_jobs(n_jobs=n_jobs, seed=seed)
    return ExtSgx2Result(
        sgx1=_BurstyRun(jobs, sgx_version=1).run(),
        sgx2=_BurstyRun(jobs, sgx_version=2).run(),
    )


def format_ext_sgx2(result: ExtSgx2Result) -> str:
    """The table the bench prints: SGX 1 vs SGX 2 on the same workload."""
    rows = []
    for mode in (result.sgx1, result.sgx2):
        rows.append(
            (
                f"SGX {mode.sgx_version}",
                mode.makespan_seconds,
                mode.mean_wait_seconds,
                mode.total_stall_seconds,
                mode.completed,
            )
        )
    return format_table(
        [
            "hardware",
            "makespan [s]",
            "mean wait [s]",
            "growth stalls [s]",
            "completed",
        ],
        rows,
    )
