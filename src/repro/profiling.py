"""Profiling harness for whole-replay hot-path work.

Two complementary views of one scenario run:

* **Deterministic top frames** — the run executes under
  :mod:`cProfile`; the report keeps the top-N frames by internal time
  (``tottime``), which is what the layer-by-layer allocation diet is
  steered by.
* **Collapsed stacks** — a background sampling thread snapshots the
  run's Python stack at a fixed interval and folds the samples into
  Brendan Gregg's collapsed format (``frame;frame;frame count``, one
  stack per line), directly consumable by ``flamegraph.pl`` and
  compatible viewers.

Both views come from a single run (the sampler observes the profiled
run), so sampled stacks carry cProfile's tracing overhead.  That skews
absolute times but not the *shape* of the flame graph, which is what
the collapsed output is for; the ``wall_seconds`` figure in the report
is measured around the traced run and should not be quoted as the
scenario's native speed — ``benchmarks/run_bench.py`` owns that number.

The CLI front-end is ``repro profile`` (see :mod:`repro.cli`), which
accepts every scenario flag ``repro run`` does and is wired into CI as
an uploaded artifact.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

#: Schema tag of :meth:`ProfileReport.to_json` documents.
PROFILE_SCHEMA = "repro.profile/v1"

#: Default number of frames kept in the top-frame table.
DEFAULT_TOP = 25

#: Default sampling interval (seconds) for collapsed stacks.
DEFAULT_SAMPLE_INTERVAL = 0.005

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class FrameStat:
    """One function's aggregate cost in the profiled run."""

    function: str
    file: str
    line: int
    ncalls: int
    primitive_calls: int
    tottime: float
    cumtime: float


def _frame_label(filename: str, name: str) -> str:
    """A short ``file.py:func`` label for stack frames."""
    return f"{os.path.basename(filename)}:{name}"


class _StackSampler(threading.Thread):
    """Samples one thread's Python stack into collapsed-stack counts.

    Purely observational: it never touches the sampled thread's state,
    so the simulated run's results (seeded RNG, event order) are
    bit-identical with and without sampling.
    """

    def __init__(self, target_ident: int, interval: float):
        super().__init__(name="repro-profile-sampler", daemon=True)
        self._target = target_ident
        self._interval = interval
        self._stop_event = threading.Event()
        self.counts: Dict[str, int] = {}
        self.samples = 0

    def run(self) -> None:  # pragma: no cover - timing-dependent thread
        wait = self._stop_event.wait
        while not wait(self._interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            stack: List[str] = []
            while frame is not None:
                code = frame.f_code
                stack.append(_frame_label(code.co_filename, code.co_name))
                frame = frame.f_back
            stack.reverse()
            key = ";".join(stack)
            self.counts[key] = self.counts.get(key, 0) + 1
            self.samples += 1

    def stop(self) -> None:
        self._stop_event.set()
        self.join()


@dataclass(frozen=True, slots=True)
class ProfileReport:
    """What one profiled run measured."""

    wall_seconds: float
    total_calls: int
    primitive_calls: int
    frames: Tuple[FrameStat, ...]
    #: Collapsed stack -> number of samples that hit it.
    collapsed: Dict[str, int]
    sample_count: int
    sample_interval: float

    def top_table(self, limit: Optional[int] = None) -> str:
        """The top-frame table, ``tottime``-descending."""
        frames = self.frames if limit is None else self.frames[:limit]
        header = (
            f"{'ncalls':>12s}  {'tottime':>9s}  {'percall':>9s}  "
            f"{'cumtime':>9s}  function"
        )
        lines = [header]
        for frame in frames:
            calls = (
                str(frame.ncalls)
                if frame.ncalls == frame.primitive_calls
                else f"{frame.ncalls}/{frame.primitive_calls}"
            )
            percall = (
                frame.tottime / frame.ncalls if frame.ncalls else 0.0
            )
            where = _frame_label(frame.file, frame.function)
            if frame.line:
                where += f":{frame.line}"
            lines.append(
                f"{calls:>12s}  {frame.tottime:9.4f}  {percall:9.6f}  "
                f"{frame.cumtime:9.4f}  {where}"
            )
        return "\n".join(lines)

    def collapsed_lines(self) -> List[str]:
        """``stack count`` lines in flamegraph.pl collapsed format.

        Sorted by descending count then stack text, so output is
        stable for a given sample set.
        """
        ordered = sorted(
            self.collapsed.items(), key=lambda item: (-item[1], item[0])
        )
        return [f"{stack} {count}" for stack, count in ordered]

    def to_dict(self) -> Dict[str, object]:
        """The report as a schema-tagged plain document."""
        return {
            "schema": PROFILE_SCHEMA,
            "wall_seconds": self.wall_seconds,
            "total_calls": self.total_calls,
            "primitive_calls": self.primitive_calls,
            "frames": [
                {
                    "function": frame.function,
                    "file": frame.file,
                    "line": frame.line,
                    "ncalls": frame.ncalls,
                    "primitive_calls": frame.primitive_calls,
                    "tottime": frame.tottime,
                    "cumtime": frame.cumtime,
                }
                for frame in self.frames
            ],
            "samples": {
                "count": self.sample_count,
                "interval_seconds": self.sample_interval,
                "stacks": [
                    {"stack": stack, "count": count}
                    for stack, count in sorted(
                        self.collapsed.items(),
                        key=lambda item: (-item[1], item[0]),
                    )
                ],
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a schema-tagged JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def write_collapsed(self, path: str) -> int:
        """Write the collapsed stacks to *path*; returns lines written.

        The file feeds straight into ``flamegraph.pl`` (or speedscope's
        collapsed importer).
        """
        lines = self.collapsed_lines()
        with open(path, "w", encoding="utf-8") as handle:
            for line in lines:
                handle.write(line + "\n")
        return len(lines)


def profile_call(
    fn: Callable[[], T],
    top: int = DEFAULT_TOP,
    sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
) -> Tuple[T, ProfileReport]:
    """Run *fn* under cProfile plus the stack sampler.

    Returns ``(fn's result, report)``.  *top* bounds the frame table;
    *sample_interval* <= 0 disables sampling (collapsed output empty).
    """
    sampler: Optional[_StackSampler] = None
    if sample_interval > 0:
        sampler = _StackSampler(threading.get_ident(), sample_interval)
        sampler.start()
    profiler = cProfile.Profile()
    start = time.perf_counter()
    try:
        profiler.enable()
        try:
            result = fn()
        finally:
            profiler.disable()
    finally:
        wall = time.perf_counter() - start
        if sampler is not None:
            sampler.stop()
    stats = pstats.Stats(profiler)
    entries = []
    total_calls = 0
    primitive_calls = 0
    for (filename, line, name), row in stats.stats.items():
        cc, nc, tt, ct, _callers = row
        total_calls += nc
        primitive_calls += cc
        entries.append(
            FrameStat(
                function=name,
                file=filename,
                line=line,
                ncalls=nc,
                primitive_calls=cc,
                tottime=tt,
                cumtime=ct,
            )
        )
    # tottime-descending; (file, line, name) breaks exact-time ties so
    # two runs of the same workload list frames in a stable order.
    entries.sort(
        key=lambda f: (-f.tottime, f.file, f.line, f.function)
    )
    report = ProfileReport(
        wall_seconds=wall,
        total_calls=total_calls,
        primitive_calls=primitive_calls,
        frames=tuple(entries[:top]),
        collapsed=dict(sampler.counts) if sampler is not None else {},
        sample_count=sampler.samples if sampler is not None else 0,
        sample_interval=sample_interval if sample_interval > 0 else 0.0,
    )
    return result, report


def profile_scenario(
    scenario,
    top: int = DEFAULT_TOP,
    sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
):
    """Profile one :class:`repro.api.Scenario` run.

    Returns ``(RunResult, ProfileReport)``.  The scenario executes
    exactly as :meth:`Scenario.run` would — profiling observes, never
    perturbs, so the result's :meth:`~repro.api.RunResult.signature`
    matches an unprofiled run bit for bit.
    """
    return profile_call(
        scenario.run, top=top, sample_interval=sample_interval
    )
