"""The decision ledger: every scheduling decision, one JSONL record.

The replay engines answer *what* happened (``RunResult`` counters,
bit-for-bit signatures); the ledger answers *why*.  Every decision the
control plane takes — a pass beginning, a placement, a deferral with
its wait reason, an eviction with its planner cost, a cross-cell
spillover, a trigger firing, a view-cache rebuild — is appended as one
compact record and streamed to a JSON-lines file:

* line 1 is the **header**: the ``repro.ledger/v1`` schema tag, the
  run's seed, a primitive snapshot of the replay config (so a diff can
  say *which knob* differed) and the declared event kinds;
* every further line is one **event**: ``{"t": sim_time, "i": seq,
  "kind": ..., **payload}`` with sorted keys, so two deterministic
  runs produce byte-identical files.

The schema is frozen in :data:`LEDGER_EVENT_KINDS`: every emit site
may only use a declared kind and that kind's declared payload fields,
and payload values must be primitives (pod *names*, node *names*,
counts, costs — never live ``Pod``/``NodeView`` objects).  The OBS001
static-analysis rule enforces both at lint time; :meth:`DecisionLedger.
emit` re-checks at run time so a drifting caller cannot silently write
undocumented records.

**The disabled path is allocation-free.**  Emit sites follow the
idiom::

    ledger = self.ledger
    if ledger.enabled:
        ledger.emit(now, "placement", pod=pod.name, node=chosen.name,
                    runner_ups=len(candidates) - 1)

:data:`NULL_LEDGER` answers ``enabled`` with a plain ``False`` class
attribute, so a disabled replay pays one attribute read per site and
never builds the keyword dict — the ``BENCH_wall.json`` numbers hold.
"""

from __future__ import annotations

import dataclasses
import json
import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import SimulationError

#: Schema tag written into every ledger header.
LEDGER_SCHEMA = "repro.ledger/v1"

#: The frozen ``repro.ledger/v1`` schema table: event kind -> the
#: payload fields that kind may carry (beyond the implicit ``t``
#: sim-time, ``i`` sequence number and ``kind`` discriminator).  Emit
#: sites must stay inside this table — OBS001 checks statically,
#: :meth:`DecisionLedger.emit` at run time.  ``runner_ups`` is ``-1``
#: when a pass ran on an indexed fast path that never materialises the
#: full candidate list; ``feasibility_checks``/``bound_skips``/
#: ``score_cutoffs``/``statics_reused`` are ``-1`` on oracle passes
#: (no :class:`~repro.scheduler.index.SelectionStats` collected).
LEDGER_EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    #: A scheduling pass started over a non-empty pending snapshot.
    "pass_begin": ("pending",),
    #: The pass finished: outcome counts plus the selection stats.
    "pass_end": (
        "placed", "deferred", "rejected", "requeued", "killed",
        "evicted", "preemptions", "feasibility_checks", "bound_skips",
        "score_cutoffs", "statics_reused",
    ),
    #: An event-driven wake-up proved clean and skipped its pass.
    "pass_skipped": (),
    #: The strategy bound a pod to a node.
    "placement": ("pod", "node", "runner_ups"),
    #: The pass left a pod pending, with its classified wait reason.
    "deferral": ("pod", "reason"),
    #: The pass rejected a pod as permanently unschedulable.
    "rejection": ("pod", "reason"),
    #: A launch failed transiently; the pod went back to the queue.
    "requeue": ("pod", "ready_at"),
    #: A launch failed terminally; the pod was killed at admission.
    "launch_killed": ("pod", "node", "reason"),
    #: The preemption planner's verdict for one deferred pod
    #: (``node`` is ``None`` / ``cost`` is ``-1.0`` when no eviction
    #: set helps).
    "preemption_plan": ("pod", "node", "victims", "cost"),
    #: A planned preemption executed: the pod placed by evicting.
    "preemption": ("pod", "node", "victims", "cost"),
    #: One victim killed (and resubmitted) by the preemption step.
    "eviction": ("victim", "node", "preemptor", "lost_work_s"),
    #: The EPC rebalancer live-migrated a pod.
    "migration": ("pod", "source", "target", "pages", "downtime_s"),
    #: A migration died at restore; the spec was resubmitted.
    "migration_failed": ("pod", "source", "target", "replacement"),
    #: The global dispatcher re-routed a pod to another cell.
    "spillover": ("pod", "from_cell", "to_cell", "cause"),
    #: A cluster event was published into the scheduling trigger.
    "trigger": ("event", "pod", "node"),
    #: The state service served node views (rebuilt or reused).
    "cache_rebuild": ("reused",),
    #: The replay converged; the run's headline counters.
    "run_end": (
        "makespan_s", "passes", "skipped", "preemptions", "evictions",
        "migrations", "spillovers",
    ),
}

#: Frozen-set mirror of the table for O(1) payload validation.
_KIND_FIELDS: Dict[str, frozenset] = {
    kind: frozenset(fields)
    for kind, fields in LEDGER_EVENT_KINDS.items()
}

#: One shared encoder — ``json.dumps`` with non-default arguments
#: builds a fresh ``JSONEncoder`` per call.  Used for the header line
#: and as the fallback for values the fast formatter below does not
#: special-case.
_encode = json.JSONEncoder(
    sort_keys=True, separators=(",", ":")
).encode

#: Printable ASCII minus ``"`` and ``\`` — strings of these need no
#: JSON escaping, which covers every generated pod/node/reason name.
_SAFE_STR = re.compile(r'^[ !#-\[\]-~]*$').match


def _json_value(value) -> str:
    """JSON-encode one primitive, byte-compatible with ``_encode``.

    ``repr`` of an int/float is exactly the json module's rendering
    (both use the shortest-repr float algorithm); anything unusual —
    escapes, non-primitives (which raise, as before) — falls back to
    the real encoder.
    """
    cls = value.__class__
    if cls is str:
        if _SAFE_STR(value):
            return '"' + value + '"'
        return _encode(value)
    if cls is bool:
        return "true" if value else "false"
    if cls is int or cls is float:
        return repr(value)
    if value is None:
        return "null"
    return _encode(value)


def _record_encoder(kind: str, fields: Tuple[str, ...]):
    """Compile a serialiser for one kind's records, keys pre-sorted.

    Every record of a kind has exactly the declared field set (emit
    validates), so its serialised shape is static up to the values:
    the keys, their sorted order and the ``kind`` literal are baked
    into a generated f-string function at import time, leaving only
    the value rendering on the flush path.  The sequence number is
    ledger-assigned and always an int, so it skips the value
    formatter entirely; key names ride in as default arguments
    because f-strings (before 3.12) cannot nest the quote style of
    their own delimiter.
    """
    keys = sorted({*fields, "t", "i", "kind"})
    consts = {}
    parts = []
    for pos, key in enumerate(keys):
        if key == "kind":
            parts.append(f'"kind":"{kind}"')
            continue
        name = f"_k{pos}"
        consts[name] = key
        if key == "i":
            parts.append(f'"i":{{record[{name}]}}')
        else:
            parts.append(f'"{key}":{{_value(record[{name}])}}')
    defaults = ", ".join(f'{name}="{key}"' for name, key in consts.items())
    source = (
        f"def _enc(record, _value=_json_value, {defaults}):\n"
        f"    return f'{{{{{','.join(parts)}}}}}'\n"
    )
    namespace = {"_json_value": _json_value}
    exec(source, namespace)
    return namespace["_enc"]


#: kind -> compiled record serialiser.
_ENCODERS = {
    kind: _record_encoder(kind, fields)
    for kind, fields in LEDGER_EVENT_KINDS.items()
}


def _encode_record(record: Dict[str, object]) -> str:
    return _ENCODERS[record["kind"]](record)


def config_signature(config) -> Dict[str, object]:
    """A primitive snapshot of a replay/scenario config dataclass.

    Primitive fields pass through; structured ones (option tuples,
    failure schedules, malicious configs) are captured as their
    deterministic ``repr``.  The ``observe`` field itself is skipped —
    two runs must not diff as divergent because one wrote its ledger
    to a different path.
    """
    signature: Dict[str, object] = {}
    for config_field in dataclasses.fields(config):
        name = config_field.name
        if name == "observe":
            continue
        value = getattr(config, name)
        if value is None or isinstance(value, (str, int, float, bool)):
            signature[name] = value
        else:
            signature[name] = repr(value)
    return signature


@dataclass(frozen=True, slots=True)
class ObserveConfig:
    """What one observed run should export, and where.

    Hashable and picklable (it rides on the frozen ``ReplayConfig`` /
    ``Scenario``); any ``None`` path disables that exporter, and with
    all three unset the replay keeps the null observer — the
    allocation-free disabled path.
    """

    #: JSONL decision-ledger output (``repro.ledger/v1``).
    ledger_path: Optional[str] = None
    #: Chrome trace-event JSON output (load in Perfetto / about:tracing).
    trace_path: Optional[str] = None
    #: Prometheus text-exposition snapshot of the run's metrics.
    metrics_path: Optional[str] = None
    #: Ledger records buffered before a stream flush.
    buffer_records: int = 4096

    def __post_init__(self) -> None:
        if (
            not isinstance(self.buffer_records, int)
            or isinstance(self.buffer_records, bool)
            or self.buffer_records < 1
        ):
            raise SimulationError(
                f"buffer_records must be >= 1: {self.buffer_records!r}"
            )

    @property
    def active(self) -> bool:
        """Whether any exporter is configured."""
        return (
            self.ledger_path is not None
            or self.trace_path is not None
            or self.metrics_path is not None
        )


class DecisionLedger:
    """Bounded-memory event buffer streaming to a JSONL file.

    Records are validated at emit time and serialised in batches
    (sorted keys, compact separators) at every ``buffer_records``-th
    event, so memory stays bounded however long the replay runs, the
    serialisation cost stays off the scheduler's hot loop, and the
    on-disk order is exactly emission order — sim-time ordered,
    sequence-tagged.
    """

    enabled = True

    __slots__ = ("path", "buffer_records", "_buffer", "_seq",
                 "_handle", "_counts")

    def __init__(self, path: str, buffer_records: int = 4096):
        self.path = path
        self.buffer_records = buffer_records
        self._buffer: list = []
        self._seq = 0
        self._handle = None
        self._counts: Dict[str, int] = {}

    def open(self, header: Dict[str, object]) -> None:
        """Open the output file and write the header line."""
        if self._handle is not None:
            raise SimulationError(f"ledger {self.path} already open")
        self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(
            json.dumps(header, sort_keys=True, separators=(",", ":"))
            + "\n"
        )

    def emit(self, now: float, kind: str, **payload) -> None:
        """Append one decision record (validated against the schema)."""
        fields = _KIND_FIELDS.get(kind)
        if fields is None:
            raise SimulationError(
                f"ledger event kind {kind!r} is not declared in "
                f"{LEDGER_SCHEMA}'s LEDGER_EVENT_KINDS"
            )
        if payload.keys() != fields:
            # Records of one kind always have one shape: emit sites
            # pass every declared field (with -1/None sentinels where
            # a count is unavailable), so diffs compare like to like.
            unexpected = sorted(payload.keys() - fields)
            missing = sorted(fields - payload.keys())
            raise SimulationError(
                f"ledger event {kind!r} payload mismatch: "
                f"unexpected {unexpected}, missing {missing}"
            )
        # The kwargs dict is ours; completing it in place saves a
        # copy per record on the emit hot path.  Serialisation is
        # deferred to the flush so its cache footprint lands in one
        # burst every ``buffer_records`` events instead of interleaved
        # with the scheduler's hot loop.
        payload["t"] = now
        payload["i"] = self._seq
        payload["kind"] = kind
        self._seq += 1
        buffer = self._buffer
        buffer.append(payload)
        if len(buffer) >= self.buffer_records:
            self._flush()

    def _flush(self) -> None:
        if self._handle is None:
            raise SimulationError(
                f"ledger {self.path} emitted to before open()"
            )
        if self._buffer:
            counts = self._counts
            for record in self._buffer:
                kind = record["kind"]
                counts[kind] = counts.get(kind, 0) + 1
            self._handle.write(
                "\n".join(map(_encode_record, self._buffer)) + "\n"
            )
            self._buffer.clear()

    def close(self) -> None:
        """Flush the tail and close the stream (idempotent)."""
        if self._handle is None:
            return
        self._flush()
        self._handle.close()
        self._handle = None

    @property
    def events_emitted(self) -> int:
        """Total events emitted so far."""
        return self._seq

    @property
    def counts(self) -> Dict[str, int]:
        """Events emitted so far, by kind (a defensive copy).

        Flushed records are tallied in batches; the unflushed tail is
        counted here, so the property is exact at any point.
        """
        counts = dict(self._counts)
        for record in self._buffer:
            kind = record["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        return counts


class NullLedger:
    """The disabled ledger: ``enabled`` is ``False``, everything no-ops.

    Emit sites guard on ``enabled`` and never call :meth:`emit`, so
    the disabled path costs one attribute read — but the methods exist
    and are harmless for callers that skip the guard.
    """

    enabled = False

    __slots__ = ()

    path = None

    def open(self, header: Dict[str, object]) -> None:
        return None

    def emit(self, now: float, kind: str, **payload) -> None:
        return None

    def close(self) -> None:
        return None

    @property
    def events_emitted(self) -> int:
        return 0

    @property
    def counts(self) -> Dict[str, int]:
        return {}


#: The shared disabled ledger every component starts with.
NULL_LEDGER = NullLedger()
