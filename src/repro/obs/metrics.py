"""Run metrics: a counter/gauge/histogram registry with Prometheus export.

One :class:`MetricsRegistry` per observed run, populated by the replay
at convergence from its deterministic counters (passes, placements,
preemptions, per-kind ledger volumes, pod phase totals, a waiting-time
histogram) and snapshotted to Prometheus text exposition format — the
same file shape a scrape of a real scheduler would produce, so
dashboards and ``promtool``-style tooling can consume a simulated run
unchanged.

Output is fully deterministic: metric families render sorted by name,
series sorted by label set, and every value comes from simulated-time
state — two identical runs write byte-identical snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Default waiting-time histogram buckets (seconds).
DEFAULT_BUCKETS = (1.0, 5.0, 15.0, 60.0, 300.0, 1800.0, 7200.0)

#: (name, sorted ``(label, value)`` pairs) — one time series.
_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Dict[str, str]) -> _SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(labels: Tuple[Tuple[str, str], ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(
        '{}="{}"'.format(k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in pairs
    )
    return "{" + body + "}"


def _render_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class _Histogram:
    """Cumulative-bucket histogram state for one series."""

    __slots__ = ("buckets", "bucket_counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]):
        self.buckets = buckets
        self.bucket_counts = [0] * len(buckets)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for position, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[position] += 1


class MetricsRegistry:
    """Accumulates counters, gauges and histograms for one run."""

    enabled = True

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self):
        self._counters: Dict[_SeriesKey, float] = {}
        self._gauges: Dict[_SeriesKey, float] = {}
        self._histograms: Dict[_SeriesKey, _Histogram] = {}

    def counter(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        key = _series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge series ``name{labels}`` to ``value``."""
        self._gauges[_series_key(name, labels)] = value

    def observe(self, name: str, value: float,
                buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                **labels) -> None:
        """Record one observation into the histogram ``name{labels}``."""
        key = _series_key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = _Histogram(buckets)
        histogram.observe(value)

    @property
    def series_count(self) -> int:
        """Distinct time series registered so far."""
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    def render(self) -> str:
        """The Prometheus text exposition snapshot."""
        lines: List[str] = []
        families: Dict[str, str] = {}
        for key in self._counters:
            families.setdefault(key[0], "counter")
        for key in self._gauges:
            families.setdefault(key[0], "gauge")
        for key in self._histograms:
            families.setdefault(key[0], "histogram")
        for name in sorted(families):
            family_type = families[name]
            lines.append(f"# TYPE {name} {family_type}")
            if family_type == "counter":
                series = self._counters
            elif family_type == "gauge":
                series = self._gauges
            else:
                series = None
            if series is not None:
                for key in sorted(k for k in series if k[0] == name):
                    labels = _render_labels(key[1])
                    lines.append(
                        f"{name}{labels} {_render_value(series[key])}"
                    )
                continue
            keys = sorted(k for k in self._histograms if k[0] == name)
            for key in keys:
                histogram = self._histograms[key]
                cumulative = 0
                for bound, count in zip(histogram.buckets,
                                        histogram.bucket_counts):
                    cumulative += count
                    labels = _render_labels(
                        key[1], ("le", _render_value(bound))
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                labels = _render_labels(key[1], ("le", "+Inf"))
                lines.append(f"{name}_bucket{labels} {histogram.count}")
                plain = _render_labels(key[1])
                lines.append(
                    f"{name}_sum{plain} {_render_value(histogram.total)}"
                )
                lines.append(f"{name}_count{plain} {histogram.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> str:
        """Write the snapshot to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
        return path


class NullMetrics:
    """The disabled registry: every method is a no-op."""

    enabled = False

    __slots__ = ()

    def counter(self, name: str, value: float = 1.0, **labels) -> None:
        return None

    def gauge(self, name: str, value: float, **labels) -> None:
        return None

    def observe(self, name: str, value: float,
                buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
                **labels) -> None:
        return None

    @property
    def series_count(self) -> int:
        return 0

    def render(self) -> str:
        return ""

    def write(self, path: str) -> Optional[str]:
        return None


#: The shared disabled metrics registry.
NULL_METRICS = NullMetrics()
