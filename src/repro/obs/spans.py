"""Span recording: Chrome trace-event JSON for Perfetto.

Spans measure the *replay machinery itself* — the whole replay, each
scheduling pass, each per-cell slice of a sharded pass, view rebuilds,
preemption planning, rebalance sweeps.  They are wall-time intervals
(``time.perf_counter``) annotated with the simulated time at which the
work happened, exported as complete-event (``"ph": "X"``) Chrome
trace-event JSON: open the file in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing`` and the replay's hot path renders as a flame
timeline.

Like the ledger, the disabled recorder is allocation-free: the begin/
end protocol passes positionally, :data:`NULL_SPANS` returns ``0.0``
from :meth:`begin` and drops :meth:`end`, so an unobserved replay pays
two empty method calls per pass and allocates nothing.  Wall-clock
reads live here — outside the simulated-time packages — on purpose:
span durations are diagnostic, never an input to any scheduling
decision, so determinism of the replay (and of the ledger) is
untouched.
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional

#: Trace-event category for all replay spans.
SPAN_CATEGORY = "replay"


class SpanRecorder:
    """Collects complete-event spans relative to its creation instant."""

    enabled = True

    __slots__ = ("_origin", "_events")

    def __init__(self):
        self._origin = time.perf_counter()
        self._events: List[Dict[str, object]] = []

    def begin(self) -> float:
        """Start a span; pass the returned token to :meth:`end`."""
        return time.perf_counter()

    def end(self, t0: float, name: str, sim_time: Optional[float] = None,
            cell: Optional[int] = None) -> None:
        """Close the span opened at ``t0`` under ``name``.

        ``sim_time`` tags the span with the simulated clock; ``cell``
        tags per-cell pass slices.  Positional-friendly so the null
        recorder's call sites never build keyword dicts.
        """
        now = time.perf_counter()
        args: Dict[str, object] = {}
        if sim_time is not None:
            args["sim_time"] = sim_time
        if cell is not None:
            args["cell"] = cell
        self._events.append({
            "name": name,
            "cat": SPAN_CATEGORY,
            "ph": "X",
            "pid": 1,
            "tid": 1,
            "ts": (t0 - self._origin) * 1e6,
            "dur": (now - t0) * 1e6,
            "args": args,
        })

    @property
    def span_count(self) -> int:
        """Spans recorded so far."""
        return len(self._events)

    def to_dict(self) -> Dict[str, object]:
        """The Chrome trace-event JSON object."""
        return {
            "traceEvents": self._events,
            "displayTimeUnit": "ms",
        }

    def write(self, path: str) -> str:
        """Write the trace JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")
        return path


class NullSpanRecorder:
    """The disabled recorder: ``begin``/``end`` cost one empty call."""

    enabled = False

    __slots__ = ()

    def begin(self) -> float:
        return 0.0

    def end(self, t0: float, name: str, sim_time: Optional[float] = None,
            cell: Optional[int] = None) -> None:
        return None

    @property
    def span_count(self) -> int:
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {"traceEvents": [], "displayTimeUnit": "ms"}

    def write(self, path: str) -> Optional[str]:
        return None


#: The shared disabled span recorder.
NULL_SPANS = NullSpanRecorder()
