"""Pod lifecycle reconstruction from a recorded decision ledger.

``repro explain --pod NAME --ledger run.jsonl`` answers the question
"why did this pod wait / land where it landed / die" by replaying the
ledger's records that mention the pod: submission trigger, every
deferral with its wait reason, the placement (node and how many
runner-up candidates it beat), requeues, preemptions it caused,
evictions and migrations it suffered, cell spillovers, and how it
finished.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import SimulationError
from .diff import LedgerFile

#: Payload fields whose value names the pod a record is about.
_POD_FIELDS = ("pod", "victim", "preemptor")


def pod_events(ledger: LedgerFile, pod: str) -> List[Dict[str, object]]:
    """All ledger records that mention ``pod``, in emission order."""
    matched: List[Dict[str, object]] = []
    for event in ledger.events:
        for pod_field in _POD_FIELDS:
            if event.get(pod_field) == pod:
                matched.append(event)
                break
    return matched


def explain_pod(ledger: LedgerFile, pod: str) -> Dict[str, object]:
    """Reconstruct one pod's lifecycle as a structured report.

    Raises :class:`~repro.errors.SimulationError` when the ledger
    never mentions the pod.
    """
    events = pod_events(ledger, pod)
    if not events:
        raise SimulationError(
            f"pod {pod!r} appears in no event of ledger {ledger.path!r}"
        )
    submitted_at: Optional[float] = None
    finished: Optional[Dict[str, object]] = None
    wait_reasons: Dict[str, int] = {}
    deferral_passes = 0
    placements: List[Dict[str, object]] = []
    requeues: List[Dict[str, object]] = []
    evictions: List[Dict[str, object]] = []
    preemptions: List[Dict[str, object]] = []
    migrations: List[Dict[str, object]] = []
    spillovers: List[Dict[str, object]] = []
    rejection: Optional[Dict[str, object]] = None
    for event in events:
        kind = event["kind"]
        if kind == "trigger":
            trigger_event = event.get("event")
            if trigger_event == "pod-submitted" and submitted_at is None:
                submitted_at = event["t"]
            elif trigger_event in ("pod-completed", "pod-killed"):
                finished = {
                    "t": event["t"],
                    "outcome": trigger_event,
                }
        elif kind == "deferral":
            deferral_passes += 1
            reason = event.get("reason") or "unknown"
            wait_reasons[reason] = wait_reasons.get(reason, 0) + 1
        elif kind == "placement":
            placements.append({
                "t": event["t"],
                "node": event.get("node"),
                "runner_ups": event.get("runner_ups"),
            })
        elif kind == "requeue":
            requeues.append({
                "t": event["t"],
                "ready_at": event.get("ready_at"),
            })
        elif kind == "eviction" and event.get("victim") == pod:
            evictions.append({
                "t": event["t"],
                "node": event.get("node"),
                "preemptor": event.get("preemptor"),
                "lost_work_s": event.get("lost_work_s"),
            })
        elif kind == "preemption" and event.get("pod") == pod:
            preemptions.append({
                "t": event["t"],
                "node": event.get("node"),
                "victims": event.get("victims"),
                "cost": event.get("cost"),
            })
        elif kind == "migration":
            migrations.append({
                "t": event["t"],
                "source": event.get("source"),
                "target": event.get("target"),
                "downtime_s": event.get("downtime_s"),
            })
        elif kind == "spillover":
            spillovers.append({
                "t": event["t"],
                "from_cell": event.get("from_cell"),
                "to_cell": event.get("to_cell"),
                "cause": event.get("cause"),
            })
        elif kind == "rejection":
            rejection = {"t": event["t"], "reason": event.get("reason")}
    return {
        "pod": pod,
        "ledger": ledger.path,
        "events": len(events),
        "submitted_at": submitted_at,
        "deferral_passes": deferral_passes,
        "wait_reasons": dict(sorted(wait_reasons.items())),
        "placements": placements,
        "requeues": requeues,
        "preemptions": preemptions,
        "evictions": evictions,
        "migrations": migrations,
        "spillovers": spillovers,
        "rejection": rejection,
        "finished": finished,
        "timeline": events,
    }


def format_explain(report: Dict[str, object]) -> str:
    """Render the lifecycle report as a readable narrative."""
    pod = report["pod"]
    lines = [f"pod {pod} — {report['events']} ledger events"]
    if report["submitted_at"] is not None:
        lines.append(f"  t={report['submitted_at']:g}: submitted")
    if report["deferral_passes"]:
        reasons = ", ".join(
            f"{reason} x{count}"
            for reason, count in report["wait_reasons"].items()
        )
        lines.append(
            f"  deferred in {report['deferral_passes']} pass(es): {reasons}"
        )
    for spill in report["spillovers"]:
        lines.append(
            f"  t={spill['t']:g}: spilled cell {spill['from_cell']} -> "
            f"{spill['to_cell']} ({spill['cause']})"
        )
    for placement in report["placements"]:
        runner_ups = placement["runner_ups"]
        if runner_ups is None or runner_ups < 0:
            against = "via indexed fast path"
        else:
            against = f"against {runner_ups} runner-up candidate(s)"
        lines.append(
            f"  t={placement['t']:g}: placed on {placement['node']} "
            f"{against}"
        )
    for requeue in report["requeues"]:
        lines.append(
            f"  t={requeue['t']:g}: launch failed, requeued "
            f"(ready at t={requeue['ready_at']:g})"
        )
    for preemption in report["preemptions"]:
        lines.append(
            f"  t={preemption['t']:g}: preempted {preemption['victims']} "
            f"victim(s) on {preemption['node']} "
            f"(cost {preemption['cost']:g})"
        )
    for eviction in report["evictions"]:
        lines.append(
            f"  t={eviction['t']:g}: evicted from {eviction['node']} "
            f"by {eviction['preemptor']} "
            f"(lost {eviction['lost_work_s']:g}s of work)"
        )
    for migration in report["migrations"]:
        lines.append(
            f"  t={migration['t']:g}: migrated {migration['source']} -> "
            f"{migration['target']} "
            f"(downtime {migration['downtime_s']:g}s)"
        )
    if report["rejection"] is not None:
        lines.append(
            f"  t={report['rejection']['t']:g}: rejected "
            f"({report['rejection']['reason']})"
        )
    if report["finished"] is not None:
        lines.append(
            f"  t={report['finished']['t']:g}: {report['finished']['outcome']}"
        )
    else:
        lines.append("  (no completion event recorded)")
    return "\n".join(lines)
