"""Ledger diffing: pinpoint the first decision two runs disagree on.

Modelled on failcore's ``Replayer`` report mode: walk two recorded
decision streams in lockstep, count hits (positions where both runs
took the identical decision) and diffs (positions where they did
not), and surface the *first divergence* with a few records of
context from each side — the moment one run's control plane first
chose differently, which is where a divergence hunt starts.

Headers are compared field-by-field as well: when two ledgers differ,
the header diff usually names the knob (seed, engine flag, preemption
policy) that explains *why* the decision streams split.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .ledger import LEDGER_SCHEMA


@dataclass(frozen=True)
class LedgerFile:
    """One parsed ledger: its header dict and ordered event records."""

    path: str
    header: Dict[str, object]
    events: List[Dict[str, object]]


def load_ledger(path: str) -> LedgerFile:
    """Parse a ``repro.ledger/v1`` JSONL file.

    Raises :class:`~repro.errors.SimulationError` when the file is
    missing, empty, not JSONL, or not a ledger.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as exc:
        raise SimulationError(f"cannot read ledger {path!r}: {exc}") from exc
    if not lines:
        raise SimulationError(f"ledger {path!r} is empty")
    try:
        records = [json.loads(line) for line in lines]
    except json.JSONDecodeError as exc:
        raise SimulationError(
            f"ledger {path!r} is not JSON lines: {exc}"
        ) from exc
    header = records[0]
    if not isinstance(header, dict) or header.get("schema") != LEDGER_SCHEMA:
        raise SimulationError(
            f"ledger {path!r} does not start with a {LEDGER_SCHEMA} header"
        )
    return LedgerFile(path=path, header=header, events=records[1:])


@dataclass(frozen=True)
class Divergence:
    """The first position where the two decision streams disagree."""

    #: 0-based event index of the divergence.
    index: int
    #: The left run's record at that index (``None`` when it ended).
    left: Optional[Dict[str, object]]
    #: The right run's record at that index (``None`` when it ended).
    right: Optional[Dict[str, object]]
    #: Up to ``context`` shared-prefix records preceding the split.
    context: List[Dict[str, object]] = field(default_factory=list)


@dataclass(frozen=True)
class LedgerDiff:
    """Failcore-style hit/diff statistics for two decision streams."""

    left_path: str
    right_path: str
    left_events: int
    right_events: int
    #: Lockstep positions where both records were identical.
    hits: int
    #: Lockstep positions where the records differed.
    diffs: int
    #: Tail records only the left / right run emitted.
    only_left: int
    only_right: int
    #: Header fields whose values differ: ``(key, left, right)``.
    header_diffs: List[Tuple[str, object, object]]
    first_divergence: Optional[Divergence]

    @property
    def identical(self) -> bool:
        """Whether the two decision streams match record-for-record."""
        return self.diffs == 0 and self.only_left == 0 and self.only_right == 0

    def to_dict(self) -> Dict[str, object]:
        first = None
        if self.first_divergence is not None:
            first = {
                "index": self.first_divergence.index,
                "left": self.first_divergence.left,
                "right": self.first_divergence.right,
                "context": self.first_divergence.context,
            }
        return {
            "schema": LEDGER_SCHEMA,
            "left": self.left_path,
            "right": self.right_path,
            "left_events": self.left_events,
            "right_events": self.right_events,
            "hits": self.hits,
            "diffs": self.diffs,
            "only_left": self.only_left,
            "only_right": self.only_right,
            "identical": self.identical,
            "header_diffs": [
                {"field": key, "left": left, "right": right}
                for key, left, right in self.header_diffs
            ],
            "first_divergence": first,
        }


def _header_diffs(
    left: Dict[str, object], right: Dict[str, object]
) -> List[Tuple[str, object, object]]:
    diffs: List[Tuple[str, object, object]] = []
    left_config = left.get("config") or {}
    right_config = right.get("config") or {}
    for key in sorted(set(left_config) | set(right_config)):
        a, b = left_config.get(key), right_config.get(key)
        if a != b:
            diffs.append((f"config.{key}", a, b))
    if left.get("seed") != right.get("seed"):
        diffs.append(("seed", left.get("seed"), right.get("seed")))
    return diffs


def diff_ledgers(
    left: LedgerFile, right: LedgerFile, context: int = 3
) -> LedgerDiff:
    """Walk both event streams in lockstep and report the statistics."""
    overlap = min(len(left.events), len(right.events))
    hits = diffs = 0
    first: Optional[Divergence] = None
    for index in range(overlap):
        if left.events[index] == right.events[index]:
            hits += 1
        else:
            diffs += 1
            if first is None:
                first = Divergence(
                    index=index,
                    left=left.events[index],
                    right=right.events[index],
                    context=left.events[max(0, index - context):index],
                )
    only_left = len(left.events) - overlap
    only_right = len(right.events) - overlap
    if first is None and (only_left or only_right):
        first = Divergence(
            index=overlap,
            left=left.events[overlap] if only_left else None,
            right=right.events[overlap] if only_right else None,
            context=left.events[max(0, overlap - context):overlap],
        )
    return LedgerDiff(
        left_path=left.path,
        right_path=right.path,
        left_events=len(left.events),
        right_events=len(right.events),
        hits=hits,
        diffs=diffs,
        only_left=only_left,
        only_right=only_right,
        header_diffs=_header_diffs(left.header, right.header),
        first_divergence=first,
    )


def _format_record(record: Optional[Dict[str, object]]) -> str:
    if record is None:
        return "<stream ended>"
    return json.dumps(record, sort_keys=True)


def format_diff(diff: LedgerDiff) -> str:
    """Human-readable report (mirrors the failcore report mode)."""
    lines = [
        f"ledger diff: {diff.left_path} vs {diff.right_path}",
        f"  events: {diff.left_events} vs {diff.right_events}",
        f"  hits: {diff.hits}  diffs: {diff.diffs}"
        f"  only-left: {diff.only_left}  only-right: {diff.only_right}",
    ]
    if diff.header_diffs:
        lines.append("  header differences:")
        for key, a, b in diff.header_diffs:
            lines.append(f"    {key}: {a!r} vs {b!r}")
    if diff.identical:
        lines.append("  decision streams are identical")
        return "\n".join(lines)
    first = diff.first_divergence
    lines.append(f"  first divergence at event index {first.index}:")
    for record in first.context:
        lines.append(f"    = {_format_record(record)}")
    lines.append(f"    < {_format_record(first.left)}")
    lines.append(f"    > {_format_record(first.right)}")
    return "\n".join(lines)
