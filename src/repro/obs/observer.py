"""The per-run observer bundle threaded through a replay.

A :class:`RunObserver` groups the three exporters — decision ledger,
span recorder, metrics registry — behind one object the replay hands
to the orchestrator, state service, trigger, schedulers, preemption
policy and rebalancer.  Each component keeps only the piece it emits
to and guards every emission on that piece's ``enabled`` flag.

An unobserved replay carries :data:`NULL_OBSERVER` instead: a single
shared object whose components are the null ledger / null spans /
null metrics, so the disabled path is one attribute read per decision
site and zero allocations.
"""

from __future__ import annotations

from typing import Optional

from .ledger import (
    LEDGER_EVENT_KINDS,
    LEDGER_SCHEMA,
    NULL_LEDGER,
    DecisionLedger,
    ObserveConfig,
    config_signature,
)
from .metrics import NULL_METRICS, MetricsRegistry
from .spans import NULL_SPANS, SpanRecorder


class RunObserver:
    """The live observer: real exporters for each configured path."""

    enabled = True

    __slots__ = ("config", "ledger", "spans", "metrics")

    def __init__(self, config: ObserveConfig):
        self.config = config
        if config.ledger_path is not None:
            self.ledger = DecisionLedger(
                config.ledger_path, config.buffer_records
            )
        else:
            self.ledger = NULL_LEDGER
        self.spans = SpanRecorder() if config.trace_path else NULL_SPANS
        self.metrics = (
            MetricsRegistry() if config.metrics_path else NULL_METRICS
        )


class NullObserver:
    """The disabled observer shared by every unobserved replay."""

    enabled = False

    __slots__ = ()

    config = None
    ledger = NULL_LEDGER
    spans = NULL_SPANS
    metrics = NULL_METRICS


#: The shared disabled observer.
NULL_OBSERVER = NullObserver()


def build_observer(observe: Optional[ObserveConfig], replay_config):
    """Build the observer for one replay and open its ledger.

    Returns :data:`NULL_OBSERVER` when observation is off.  When a
    ledger is configured its header line — schema tag, seed, primitive
    config signature and the declared kinds — is written immediately,
    so even a replay that dies mid-run leaves a self-describing file.
    """
    if observe is None or not observe.active:
        return NULL_OBSERVER
    observer = RunObserver(observe)
    ledger = observer.ledger
    if ledger.enabled:
        ledger.open({
            "schema": LEDGER_SCHEMA,
            "seed": replay_config.seed,
            "config": config_signature(replay_config),
            "kinds": sorted(LEDGER_EVENT_KINDS),
        })
    return observer
