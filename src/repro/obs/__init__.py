"""Deterministic observability: decision ledger, spans, metrics.

See :mod:`repro.obs.ledger` for the ``repro.ledger/v1`` schema, and
the ``repro record`` / ``repro diff`` / ``repro explain`` CLI commands
for the workflow built on top of it.
"""

from .diff import (
    Divergence,
    LedgerDiff,
    LedgerFile,
    diff_ledgers,
    format_diff,
    load_ledger,
)
from .explain import explain_pod, format_explain, pod_events
from .ledger import (
    LEDGER_EVENT_KINDS,
    LEDGER_SCHEMA,
    NULL_LEDGER,
    DecisionLedger,
    NullLedger,
    ObserveConfig,
    config_signature,
)
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)
from .observer import NULL_OBSERVER, NullObserver, RunObserver, build_observer
from .spans import NULL_SPANS, NullSpanRecorder, SpanRecorder

__all__ = [
    "DEFAULT_BUCKETS",
    "LEDGER_EVENT_KINDS",
    "LEDGER_SCHEMA",
    "NULL_LEDGER",
    "NULL_METRICS",
    "NULL_OBSERVER",
    "NULL_SPANS",
    "DecisionLedger",
    "Divergence",
    "LedgerDiff",
    "LedgerFile",
    "MetricsRegistry",
    "NullLedger",
    "NullMetrics",
    "NullObserver",
    "NullSpanRecorder",
    "ObserveConfig",
    "RunObserver",
    "SpanRecorder",
    "build_observer",
    "config_signature",
    "diff_ledgers",
    "explain_pod",
    "format_diff",
    "format_explain",
    "load_ledger",
    "pod_events",
]
