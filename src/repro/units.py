"""Unit conversion helpers used across the code base.

All sizes are carried internally either as *bytes* (``int``) or as *EPC
pages* (``int``, 4 KiB each), mirroring how the Intel SGX driver accounts
for protected memory.  All simulated durations are ``float`` seconds.

The helpers below keep call-sites readable (``mib(93.5)`` instead of
``int(93.5 * 1024 * 1024)``) and centralise the rounding rules so EPC
accounting never drifts by a partial page.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Size of one EPC page, fixed by the SGX architecture.
EPC_PAGE_BYTES = 4 * KIB


def kib(n: float) -> int:
    """Return *n* KiB expressed in bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Return *n* MiB expressed in bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Return *n* GiB expressed in bytes."""
    return int(n * GIB)


def bytes_to_mib(n: int) -> float:
    """Return *n* bytes expressed in (fractional) MiB."""
    return n / MIB


def bytes_to_gib(n: int) -> float:
    """Return *n* bytes expressed in (fractional) GiB."""
    return n / GIB


def pages(n_bytes: int) -> int:
    """Number of whole EPC pages needed to hold *n_bytes* (round up).

    Allocating any fraction of a page consumes the full page, exactly as
    the SGX driver does.
    """
    if n_bytes < 0:
        raise ValueError(f"negative size: {n_bytes}")
    return -(-n_bytes // EPC_PAGE_BYTES)


def pages_to_bytes(n_pages: int) -> int:
    """Return the byte size spanned by *n_pages* EPC pages."""
    if n_pages < 0:
        raise ValueError(f"negative page count: {n_pages}")
    return n_pages * EPC_PAGE_BYTES


def pages_to_mib(n_pages: int) -> float:
    """Return *n_pages* EPC pages expressed in (fractional) MiB."""
    return pages_to_bytes(n_pages) / MIB


def minutes(n: float) -> float:
    """Return *n* minutes in seconds."""
    return n * 60.0


def hours(n: float) -> float:
    """Return *n* hours in seconds."""
    return n * 3600.0


def fmt_bytes(n: int) -> str:
    """Human-readable rendering of a byte count (``12.0 MiB``)."""
    if n >= GIB:
        return f"{n / GIB:.1f} GiB"
    if n >= MIB:
        return f"{n / MIB:.1f} MiB"
    if n >= KIB:
        return f"{n / KIB:.1f} KiB"
    return f"{n} B"


def fmt_duration(seconds: float) -> str:
    """Human-readable rendering of a duration (``1h 22min``)."""
    seconds = float(seconds)
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    if seconds < 60:
        return f"{seconds:.1f}s"
    total_minutes, secs = divmod(int(round(seconds)), 60)
    hrs, mins = divmod(total_minutes, 60)
    if hrs == 0:
        return f"{mins}min {secs}s"
    return f"{hrs}h {mins:02d}min"
