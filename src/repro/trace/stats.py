"""Distribution utilities: CDFs and summary statistics.

Figures 3, 4 and 8/11 of the paper are all empirical CDF plots; these
helpers compute them in the exact form the benchmark harness prints.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

from ..errors import TraceError


def empirical_cdf(samples: Sequence[float]) -> List[Tuple[float, float]]:
    """The empirical CDF of *samples* as (value, percentile) steps.

    Percentiles are in 0..100 (the paper's y-axes); one point per
    distinct sample value, at the proportion of samples ``<=`` it.
    """
    if not samples:
        raise TraceError("cannot build a CDF from no samples")
    ordered = sorted(samples)
    total = len(ordered)
    points: List[Tuple[float, float]] = []
    for index, value in enumerate(ordered, start=1):
        if index < total and ordered[index] == value:
            continue  # keep only the last (highest percentile) duplicate
        points.append((value, 100.0 * index / total))
    return points


def cdf_at(samples: Sequence[float], value: float) -> float:
    """Percentage of *samples* that are ``<= value``."""
    if not samples:
        raise TraceError("cannot evaluate a CDF with no samples")
    ordered = sorted(samples)
    return 100.0 * bisect.bisect_right(ordered, value) / len(ordered)


def percentile(samples: Sequence[float], pct: float) -> float:
    """The *pct*-th percentile (0..100) by linear interpolation."""
    if not samples:
        raise TraceError("cannot take a percentile of no samples")
    if not 0.0 <= pct <= 100.0:
        raise TraceError(f"percentile out of range: {pct}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = pct / 100.0 * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean."""
    if not samples:
        raise TraceError("cannot average no samples")
    return sum(samples) / len(samples)


def confidence_interval_95(samples: Sequence[float]) -> Tuple[float, float]:
    """Mean and 95 % confidence half-width (normal approximation).

    The paper's error bars (Figs. 6, 9) use 95 % confidence intervals;
    this mirrors them.  Returns ``(mean, half_width)``; the half-width is
    0 for fewer than two samples.
    """
    m = mean(samples)
    n = len(samples)
    if n < 2:
        return m, 0.0
    variance = sum((x - m) ** 2 for x in samples) / (n - 1)
    half_width = 1.96 * (variance / n) ** 0.5
    return m, half_width
