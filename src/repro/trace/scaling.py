"""Trace down-scaling: the two reductions of Section VI-B.

Google's cluster has ~12 500 machines; the paper's has 4 workers.  The
trace is scaled down along two dimensions before replay:

* **Time reduction** — keep only the 1-hour slice [6480 s, 10080 s) of
  the first day (:func:`slice_window`), long enough to stabilise the
  system because no job exceeds 300 s;
* **Frequency reduction** — keep every 1200th job
  (:func:`sample_stride`), leaving enough jobs to cause contention
  without flooding the cluster.

These operate on any :class:`~repro.trace.schema.Trace`, whether loaded
from the public CSVs or synthesised.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..constants import (
    TRACE_SAMPLING_STRIDE,
    TRACE_SLICE_END_SECONDS,
    TRACE_SLICE_START_SECONDS,
)
from ..errors import TraceError
from .schema import JobRecord, Trace


def iter_window(
    jobs: Iterable[JobRecord],
    start_seconds: float,
    end_seconds: float,
) -> Iterator[JobRecord]:
    """Stream of the jobs *submitted* within ``[start, end)``.

    A generator, so the streaming trace adapters can clip a multi-GB
    file's record stream without materialising the rows outside the
    window; :func:`slice_window` is this over a whole :class:`Trace`.
    """
    if end_seconds <= start_seconds:
        raise TraceError(
            f"empty window: [{start_seconds}, {end_seconds})"
        )
    for job in jobs:
        if start_seconds <= job.submit_time < end_seconds:
            yield job


def iter_stride(
    jobs: Iterable[JobRecord], stride: int, offset: int = 0
) -> Iterator[JobRecord]:
    """Every *stride*-th record of a job stream, starting at *offset*.

    The streaming counterpart of :func:`sample_stride`: frequency
    reduction applied on the fly, holding no more than one record.
    """
    if stride <= 0:
        raise TraceError(f"stride must be positive, got {stride}")
    if offset < 0:
        raise TraceError(f"offset must be non-negative, got {offset}")
    for index, job in enumerate(jobs):
        if index >= offset and (index - offset) % stride == 0:
            yield job


def slice_window(
    trace: Trace,
    start_seconds: float = TRACE_SLICE_START_SECONDS,
    end_seconds: float = TRACE_SLICE_END_SECONDS,
) -> Trace:
    """Jobs *submitted* within ``[start, end)``, original timestamps kept."""
    return Trace(iter_window(trace, start_seconds, end_seconds))


def sample_stride(
    trace: Trace, stride: int = TRACE_SAMPLING_STRIDE, offset: int = 0
) -> Trace:
    """Every *stride*-th job of *trace*, starting at *offset*."""
    return Trace(iter_stride(trace.jobs, stride, offset))


def renumber_from_zero(trace: Trace) -> Trace:
    """Shift submit times so the first submission happens at t=0."""
    jobs = trace.jobs
    if not jobs:
        return Trace()
    origin = jobs[0].submit_time
    return Trace(job.shifted(-origin) for job in jobs)


def scale_pipeline(
    trace: Trace,
    start_seconds: float = TRACE_SLICE_START_SECONDS,
    end_seconds: float = TRACE_SLICE_END_SECONDS,
    stride: int = TRACE_SAMPLING_STRIDE,
) -> Trace:
    """The paper's full pipeline: slice, stride-sample, renumber."""
    return renumber_from_zero(
        sample_stride(
            slice_window(trace, start_seconds, end_seconds), stride
        )
    )
