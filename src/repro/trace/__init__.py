"""Google Borg trace substrate.

The paper evaluates against the 2011 Google Borg trace, down-scaled along
two dimensions (Section VI-B): a 1-hour time slice ([6480 s, 10080 s) of
the first day) and frequency sampling (every 1200th job), yielding 663
jobs of which 44 allocate more memory than they advertise.

The public trace itself is not redistributable here, so this package
provides both a loader for the public CSV schema
(:mod:`repro.trace.loader`) and a calibrated synthetic generator
(:mod:`repro.trace.borg`) reproducing the published marginals: the
duration CDF of Fig. 4, the max-memory CDF of Fig. 3 and the concurrency
band of Fig. 5.  All evaluation numbers in the paper are functions of
these marginals at the scaled size, which is what the substitution
preserves.

Beyond the paper's workload, :mod:`repro.trace.adapters` turns the
package into an ecosystem: any workload — public Google 2019 /
Alibaba 2018 / Azure dumps, parameterised synthetic stress shapes, or
a third-party plugin — is addressable through one spec string
(``"google2019:path=ev.jsonl,window=1h,sample=0.05"``) resolved via
:func:`resolve_trace`.
"""

from .adapters import resolve_trace, trace_catalogue
from .borg import BorgTraceGenerator, synthetic_scaled_trace
from .loader import load_borg_csv
from .scaling import renumber_from_zero, sample_stride, slice_window
from .schema import JobRecord, Trace
from .spec import TraceSpec, format_trace_spec, make_trace_spec, parse_trace_spec
from .stats import cdf_at, empirical_cdf

__all__ = [
    "BorgTraceGenerator",
    "JobRecord",
    "Trace",
    "TraceSpec",
    "cdf_at",
    "empirical_cdf",
    "format_trace_spec",
    "load_borg_csv",
    "make_trace_spec",
    "parse_trace_spec",
    "renumber_from_zero",
    "resolve_trace",
    "sample_stride",
    "slice_window",
    "synthetic_scaled_trace",
    "trace_catalogue",
]
