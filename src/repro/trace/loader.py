"""Loader for the public Google cluster-usage trace format.

The 2011 trace ships as CSV tables (Reiss et al., "Google cluster-usage
traces: format + schema").  The paper joins the *job events* and *task
usage* tables to extract four per-job metrics; users who have downloaded
the public trace can produce a four-column CSV in that shape and load it
here, then push it through :func:`repro.trace.scaling.scale_pipeline`.

Expected columns (header optional, comma-separated)::

    job_id, submit_time_seconds, duration_seconds,
    assigned_memory_fraction, max_memory_fraction
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from ..errors import TraceError
from .schema import JobRecord, Trace

_COLUMNS = 5


def load_borg_csv(path: Union[str, Path]) -> Trace:
    """Load a prepared Borg-trace CSV into a :class:`Trace`.

    Lines starting with ``#`` and a header row (detected by a non-numeric
    first field) are skipped.  Raises :class:`~repro.errors.TraceError`
    on malformed rows so silent data corruption cannot skew experiments.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    jobs = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for line_number, row in enumerate(reader, start=1):
            if not row or row[0].lstrip().startswith("#"):
                continue
            if line_number == 1 and not _is_numeric(row[0]):
                continue  # header
            if len(row) != _COLUMNS:
                raise TraceError(
                    f"{path}:{line_number}: expected {_COLUMNS} columns, "
                    f"got {len(row)}"
                )
            try:
                jobs.append(
                    JobRecord(
                        job_id=int(row[0]),
                        submit_time=float(row[1]),
                        duration=float(row[2]),
                        assigned_memory=float(row[3]),
                        max_memory=float(row[4]),
                    )
                )
            except (ValueError, TraceError) as exc:
                raise TraceError(
                    f"{path}:{line_number}: bad job record: {exc}"
                ) from exc
    return Trace(jobs)


def dump_borg_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write a :class:`Trace` in the loadable CSV shape (round-trips)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "job_id",
                "submit_time_seconds",
                "duration_seconds",
                "assigned_memory_fraction",
                "max_memory_fraction",
            ]
        )
        for job in trace:
            writer.writerow(
                [
                    job.job_id,
                    f"{job.submit_time:.6f}",
                    f"{job.duration:.6f}",
                    f"{job.assigned_memory:.8f}",
                    f"{job.max_memory:.8f}",
                ]
            )


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
