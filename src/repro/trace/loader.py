"""Loader for the public Google cluster-usage trace format.

The 2011 trace ships as CSV tables (Reiss et al., "Google cluster-usage
traces: format + schema").  The paper joins the *job events* and *task
usage* tables to extract four per-job metrics; users who have downloaded
the public trace can produce a four-column CSV in that shape and load it
here, then push it through :func:`repro.trace.scaling.scale_pipeline` —
or replay it directly via ``Scenario(trace="borg-csv:path=...")``.

Expected columns (header optional, comma-separated)::

    job_id, submit_time_seconds, duration_seconds,
    assigned_memory_fraction, max_memory_fraction

:func:`iter_borg_csv` is the streaming core: records come off the file
one at a time, so the adapter layer can window/downsample a large file
without ever materialising it whole.  :func:`load_borg_csv` keeps its
historical signature as a thin wrapper.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, Union

from ..errors import TraceError
from .schema import JobRecord, Trace
from .stream import csv_rows, row_error

_COLUMNS = 5


def iter_borg_csv(path: Union[str, Path]) -> Iterator[JobRecord]:
    """Stream a prepared Borg-trace CSV as :class:`JobRecord` values.

    Lines starting with ``#`` and a header row (detected by a
    non-numeric first field) are skipped.  Raises
    :class:`~repro.errors.TraceError` with ``path:line`` context on
    malformed rows so silent data corruption cannot skew experiments.
    """
    for line_number, row in csv_rows(path, columns=_COLUMNS):
        try:
            yield JobRecord(
                job_id=int(row[0]),
                submit_time=float(row[1]),
                duration=float(row[2]),
                assigned_memory=float(row[3]),
                max_memory=float(row[4]),
            )
        except (ValueError, TraceError) as exc:
            raise row_error(
                path, line_number, f"bad job record: {exc}"
            ) from exc


def load_borg_csv(path: Union[str, Path]) -> Trace:
    """Load a prepared Borg-trace CSV into a :class:`Trace`.

    Streams the file through :func:`iter_borg_csv` — the rows are
    never held twice, only the resulting records.
    """
    return Trace(iter_borg_csv(path))


def dump_borg_csv(trace: Trace, path: Union[str, Path]) -> None:
    """Write a :class:`Trace` in the loadable CSV shape (round-trips)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "job_id",
                "submit_time_seconds",
                "duration_seconds",
                "assigned_memory_fraction",
                "max_memory_fraction",
            ]
        )
        for job in trace:
            writer.writerow(
                [
                    job.job_id,
                    f"{job.submit_time:.6f}",
                    f"{job.duration:.6f}",
                    f"{job.assigned_memory:.8f}",
                    f"{job.max_memory:.8f}",
                ]
            )
