"""Parameterised synthetic trace generators.

Four arrival shapes the paper never ran, all built on the calibrated
Borg marginals (:class:`~repro.trace.borg.BorgTraceGenerator`'s
duration/memory samplers) so their *per-job* statistics stay
paper-faithful while the *arrival process* stresses the scheduler in
new ways:

* ``synth-diurnal`` — day/night modulated Poisson arrivals;
* ``synth-bursty`` — flash crowds: narrow bursts over a background;
* ``synth-heavytail`` — log-normal (heavy-tailed) durations;
* ``synth-ramp`` — an autoscaling ramp: arrival rate grows linearly.

Every draw comes from one seeded :class:`numpy.random.Generator`; the
same spec (same options, same seed) always yields the identical
trace, which the determinism suite asserts for every adapter here.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ...errors import TraceError
from ...registry import register_trace
from ..borg import BorgTraceGenerator
from ..schema import JobRecord, Trace
from ..spec import SpecOptions, TraceSpec
from .borg import default_overallocators

#: Default submission span: the paper's 1-hour slice.
_DEFAULT_WINDOW = 3600.0
#: Default job count: the paper's scaled slice.
_DEFAULT_JOBS = 663


def _common_knobs(options: SpecOptions):
    """The ``jobs``/``window``/``overallocators`` triple every
    generator shares (defaults: the paper's 663 jobs over 1 h with
    the 44-of-663 over-allocator share)."""
    jobs = options.integer("jobs", _DEFAULT_JOBS, minimum=1)
    window = options.duration("window", _DEFAULT_WINDOW)
    if window is None or window <= 0:
        raise TraceError(
            f"trace spec option 'window' must be positive, "
            f"got {window!r}"
        )
    overallocators = options.integer(
        "overallocators", default_overallocators(jobs), minimum=0
    )
    if overallocators > jobs:
        raise TraceError(
            f"trace spec option 'overallocators' ({overallocators}) "
            f"must be <= jobs ({jobs})"
        )
    return jobs, window, overallocators


def _assemble(
    seed: int,
    jobs: int,
    overallocators: int,
    submit_times: np.ndarray,
    durations: Optional[np.ndarray] = None,
) -> Trace:
    """Submit times + Borg marginals -> a :class:`Trace`.

    The marginal draws happen *after* the arrival draws on the same
    generator, so two shapes with the same seed still differ — the
    arrival process is part of the stream position.
    """
    generator = BorgTraceGenerator(seed=seed)
    rng = np.random.default_rng(seed)
    submit_times = np.sort(submit_times)
    if durations is None:
        durations = generator.sample_durations(rng, jobs)
    max_memory = generator.sample_max_memory(rng, jobs)
    assigned = generator.sample_assigned_memory(
        rng, max_memory, overallocators
    )
    return Trace(
        JobRecord(
            job_id=index,
            submit_time=float(submit_times[index]),
            duration=float(durations[index]),
            assigned_memory=float(assigned[index]),
            max_memory=float(max_memory[index]),
        )
        for index in range(jobs)
    )


def _thinned_arrivals(
    rng: np.random.Generator,
    n: int,
    window: float,
    intensity: Callable[[np.ndarray], np.ndarray],
    peak: float,
) -> np.ndarray:
    """*n* arrivals of an inhomogeneous Poisson process by thinning.

    Candidates are drawn uniformly and accepted with probability
    ``intensity(t) / peak`` until *n* survive — exact, deterministic
    under the seeded *rng*, and O(n) memory.
    """
    accepted: list = []
    while len(accepted) < n:
        batch = max(64, 2 * (n - len(accepted)))
        candidates = rng.uniform(0.0, window, size=batch)
        keep = rng.uniform(0.0, peak, size=batch) < intensity(candidates)
        accepted.extend(candidates[keep].tolist())
    return np.asarray(accepted[:n])


@register_trace("synth-diurnal")
def build_synth_diurnal(spec: TraceSpec, seed: int) -> Trace:
    """Day/night modulated arrivals (an inhomogeneous Poisson stream).

    Options: ``seed``, ``jobs``, ``window`` (default 24h here — a
    diurnal cycle needs a day), ``overallocators``, ``period``
    (default 24h), ``amplitude`` (modulation depth in [0, 1),
    default 0.6).
    """
    options = spec.reader("seed")
    jobs = options.integer("jobs", _DEFAULT_JOBS, minimum=1)
    window = options.duration("window", 86_400.0)
    overallocators = options.integer(
        "overallocators", default_overallocators(jobs), minimum=0
    )
    period = options.duration("period", 86_400.0)
    amplitude = options.fraction("amplitude", 0.6)
    options.finish()
    if window is None or window <= 0:
        raise TraceError(
            f"trace spec option 'window' must be positive, got {window!r}"
        )
    if period is None or period <= 0:
        raise TraceError(
            f"trace spec option 'period' must be positive, got {period!r}"
        )
    if overallocators > jobs:
        raise TraceError(
            f"trace spec option 'overallocators' ({overallocators}) "
            f"must be <= jobs ({jobs})"
        )
    if amplitude is None or not 0.0 <= amplitude < 1.0:
        raise TraceError(
            f"trace spec option 'amplitude' must be in [0, 1), "
            f"got {amplitude!r}"
        )
    rng = np.random.default_rng(seed)

    def intensity(t: np.ndarray) -> np.ndarray:
        # Peak at mid-period (midday), trough at t=0 (midnight).
        return 1.0 - amplitude * np.cos(2.0 * np.pi * t / period)

    submit = _thinned_arrivals(
        rng, jobs, window, intensity, peak=1.0 + amplitude
    )
    return _assemble(seed, jobs, overallocators, submit)


build_synth_diurnal.summary = (
    "day/night modulated Poisson arrivals over the Borg marginals"
)
build_synth_diurnal.spec_example = (
    "synth-diurnal:seed=3,jobs=800,amplitude=0.8"
)
build_synth_diurnal.needs_path = False


@register_trace("synth-bursty")
def build_synth_bursty(spec: TraceSpec, seed: int) -> Trace:
    """Flash crowds: narrow submission bursts over a uniform background.

    Options: ``seed``, ``jobs``, ``window``, ``overallocators``,
    ``bursts`` (default 3), ``burst_width`` (std-dev of each burst,
    default window/200), ``base_fraction`` (share of jobs in the
    background, default 0.5).
    """
    options = spec.reader("seed")
    jobs, window, overallocators = _common_knobs(options)
    bursts = options.integer("bursts", 3, minimum=1)
    burst_width = options.duration("burst_width", window / 200.0)
    base_fraction = options.fraction("base_fraction", 0.5)
    options.finish()
    if burst_width is None or burst_width <= 0:
        raise TraceError(
            f"trace spec option 'burst_width' must be positive, "
            f"got {burst_width!r}"
        )
    rng = np.random.default_rng(seed)
    base_jobs = int(round(jobs * (base_fraction or 0.0)))
    burst_jobs = jobs - base_jobs
    background = rng.uniform(0.0, window, size=base_jobs)
    centers = rng.uniform(0.0, window, size=bursts)
    assignment = rng.integers(0, bursts, size=burst_jobs)
    spikes = rng.normal(
        centers[assignment], burst_width, size=burst_jobs
    )
    # Clip into the window; boundary mass is part of the crowd.
    spikes = np.clip(spikes, 0.0, np.nextafter(window, 0.0))
    submit = np.concatenate([background, spikes])
    return _assemble(seed, jobs, overallocators, submit)


build_synth_bursty.summary = (
    "flash-crowd bursts over a uniform submission background"
)
build_synth_bursty.spec_example = (
    "synth-bursty:seed=3,jobs=500,bursts=4"
)
build_synth_bursty.needs_path = False


@register_trace("synth-heavytail")
def build_synth_heavytail(spec: TraceSpec, seed: int) -> Trace:
    """Heavy-tailed (log-normal) durations under Poisson arrivals.

    Options: ``seed``, ``jobs``, ``window``, ``overallocators``,
    ``median`` (median duration, default 60s), ``sigma`` (log-normal
    shape — the tail weight, default 1.6), ``max_duration`` (clip,
    default 4h).
    """
    options = spec.reader("seed")
    jobs, window, overallocators = _common_knobs(options)
    median = options.duration("median", 60.0)
    sigma = options.number("sigma", 1.6)
    max_duration = options.duration("max_duration", 4 * 3600.0)
    options.finish()
    if median is None or median <= 0:
        raise TraceError(
            f"trace spec option 'median' must be positive, "
            f"got {median!r}"
        )
    if sigma is None or sigma <= 0:
        raise TraceError(
            f"trace spec option 'sigma' must be positive, got {sigma!r}"
        )
    if max_duration is None or max_duration <= median:
        raise TraceError(
            f"trace spec option 'max_duration' must exceed the "
            f"median, got {max_duration!r}"
        )
    rng = np.random.default_rng(seed)
    submit = rng.uniform(0.0, window, size=jobs)
    durations = np.clip(
        median * rng.lognormal(0.0, sigma, size=jobs),
        1.0,
        max_duration,
    )
    return _assemble(
        seed, jobs, overallocators, submit, durations=durations
    )


build_synth_heavytail.summary = (
    "log-normal heavy-tailed durations under Poisson arrivals"
)
build_synth_heavytail.spec_example = (
    "synth-heavytail:seed=3,jobs=500,sigma=2"
)
build_synth_heavytail.needs_path = False


@register_trace("synth-ramp")
def build_synth_ramp(spec: TraceSpec, seed: int) -> Trace:
    """An autoscaling ramp: arrival rate grows linearly over the window.

    Options: ``seed``, ``jobs``, ``window``, ``overallocators``,
    ``factor`` (rate at the end of the window over the rate at the
    start, default 5; 1 degenerates to uniform arrivals).
    """
    options = spec.reader("seed")
    jobs, window, overallocators = _common_knobs(options)
    factor = options.number("factor", 5.0)
    options.finish()
    if factor is None or factor < 1.0:
        raise TraceError(
            f"trace spec option 'factor' must be >= 1, got {factor!r}"
        )
    rng = np.random.default_rng(seed)
    uniforms = rng.uniform(0.0, 1.0, size=jobs)
    slope = factor - 1.0
    if slope == 0.0:
        positions = uniforms
    else:
        # Inverse CDF of density f(x) = (1 + slope*x) / (1 + slope/2)
        # on [0, 1]: solve slope/2 * x^2 + x = u * (1 + slope/2).
        positions = (
            -1.0
            + np.sqrt(1.0 + 2.0 * slope * uniforms * (1.0 + slope / 2.0))
        ) / slope
    submit = positions * window
    return _assemble(seed, jobs, overallocators, submit)


build_synth_ramp.summary = (
    "autoscaling ramp: arrival rate grows linearly over the window"
)
build_synth_ramp.spec_example = "synth-ramp:seed=3,jobs=500,factor=8"
build_synth_ramp.needs_path = False
