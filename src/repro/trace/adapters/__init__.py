"""Pluggable trace adapters: one ``trace=`` spec, many workloads.

Every workload the simulator can replay — the paper's calibrated
synthetic Borg slice, the public Google/Alibaba/Azure dumps, the
parameterised synthetic stress shapes — is addressable through one
string grammar::

    Scenario(trace="borg-synth:seed=7,jobs=500").run()
    Scenario(trace="google2019:path=ev.jsonl,window=1h,sample=0.05")
    Scenario(trace="synth-bursty:seed=3,jobs=500")

A spec is ``name`` or ``name:key=value,key=value``
(:mod:`repro.trace.spec` owns the grammar).  The name selects an
adapter from the :data:`repro.registry.TRACES` registry; the options
parameterise it.  Third parties plug in with the same decorator the
built-ins use::

    from repro.registry import register_trace

    @register_trace("my-trace")
    def build_my_trace(spec, seed):
        options = spec.reader("seed")
        ...
        return Trace(...)

Adapters are called as ``factory(spec=TraceSpec, seed=int)`` where
``seed`` is the spec's ``seed`` option resolved against
``DEFAULT_TRACE_SEED`` — the TRACE001 static-analysis rule holds
registered factories to that signature.
"""

from __future__ import annotations

from typing import List, NamedTuple, Union

from ...constants import DEFAULT_TRACE_SEED
from ...errors import TraceError
from ...registry import TRACES, register_trace, trace_names
from ..schema import Trace
from ..spec import TraceSpec, parse_trace_spec


def resolve_trace(spec: Union[str, TraceSpec]) -> Trace:
    """Build the :class:`Trace` a spec (string or parsed) describes.

    The spec's ``seed`` option (default ``DEFAULT_TRACE_SEED``) is
    resolved here and passed to the adapter explicitly, so every
    adapter sees the same seeding convention.  Unknown names die with
    the sorted catalogue; bad option values die with the offending
    key.
    """
    if isinstance(spec, str):
        spec = parse_trace_spec(spec)
    factory = TRACES.get(spec.name)
    seed = spec.reader().integer("seed", DEFAULT_TRACE_SEED)
    trace = factory(spec=spec, seed=seed)
    if not isinstance(trace, Trace):
        raise TraceError(
            f"trace adapter {spec.name!r} returned "
            f"{type(trace).__name__}, expected Trace"
        )
    return trace


class TraceCatalogueEntry(NamedTuple):
    """One row of the ``repro traces`` listing."""

    name: str
    summary: str
    spec_example: str
    needs_path: bool


def trace_catalogue() -> List[TraceCatalogueEntry]:
    """All registered adapters with their self-descriptions, sorted.

    Adapters advertise themselves through three optional attributes
    on the factory — ``summary``, ``spec_example``, ``needs_path`` —
    which every built-in sets.
    """
    entries = []
    for name in trace_names():
        factory = TRACES.get(name)
        entries.append(
            TraceCatalogueEntry(
                name=name,
                summary=getattr(factory, "summary", ""),
                spec_example=getattr(factory, "spec_example", name),
                needs_path=bool(getattr(factory, "needs_path", False)),
            )
        )
    return entries


__all__ = [
    "TraceCatalogueEntry",
    "TRACES",
    "register_trace",
    "resolve_trace",
    "trace_catalogue",
    "trace_names",
]

# Import the built-in adapters last so their @register_trace calls see
# a fully initialised registry; the imports are for their side effects.
from . import borg as _borg  # noqa: E402,F401
from . import public as _public  # noqa: E402,F401
from . import synth as _synth  # noqa: E402,F401
