"""Adapters for the public cluster-trace formats.

Three public datasets cover workload shapes the paper never ran:

* **google2019** — Google Borg 2019 (ClusterData2019) collection
  events, as the JSONL the BigQuery export produces.  SUBMIT/FINISH
  event pairs are joined *streaming*: the reader holds only the
  in-flight collections (O(concurrency), not O(file)).
* **alibaba2018** — Alibaba cluster-trace-v2018 ``batch_task.csv``
  (task_name, instance_num, job_name, task_type, status, start_time,
  end_time, plan_cpu, plan_mem).
* **azure-packing** — Azure Public Dataset ``vmtable.csv`` VM-packing
  rows (created/deleted timestamps, core/memory buckets).

Each maps its native schema onto the four
:class:`~repro.trace.schema.JobRecord` metrics.  Memory becomes a
fraction of a reference machine (an option where the dataset leaves
it open).  Rows that are *unparseable* die with ``path:line``
context; rows that are parseable but incomplete for replay (missing
end time, non-terminal status, non-positive duration) are skipped —
public dumps legitimately contain them.

None of the datasets is redistributable here; download pointers live
in the README's Traces section.  All three adapters stream through
the shared ``start``/``window``/``sample``/``limit`` pipeline, so a
multi-GB file replays in bounded memory.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from ...errors import TraceError
from ...registry import register_trace
from ..schema import JobRecord, Trace
from ..spec import TraceSpec
from ..stream import csv_rows, jsonl_rows, row_error
from .common import apply_scaling, materialise, read_scaling

#: µs per second: the 2019 trace timestamps in microseconds.
_MICROS = 1_000_000.0


def _fraction_field(
    path: str, line_number: int, name: str, value: float
) -> float:
    if not 0.0 <= value <= 1.0:
        raise row_error(
            path,
            line_number,
            f"{name}={value:g} outside [0, 1]",
        )
    return value


def _iter_google2019(path: str) -> Iterator[JobRecord]:
    """Streaming SUBMIT/FINISH join over a collection-events JSONL."""
    #: collection_id -> (submit µs, assigned memory), in-flight only.
    pending: Dict[int, Tuple[float, float]] = {}
    job_id = 0
    for line_number, record in jsonl_rows(path):
        kind = str(record.get("type", "")).upper()
        try:
            collection = int(record["collection_id"])
            time_us = float(record["time"])
        except (KeyError, TypeError, ValueError) as exc:
            raise row_error(
                path,
                line_number,
                f"need integer collection_id and numeric time: {exc}",
            ) from None
        if kind == "SUBMIT":
            request = record.get("resource_request") or {}
            try:
                assigned = float(request.get("memory", 0.0))
            except (TypeError, ValueError):
                raise row_error(
                    path,
                    line_number,
                    "resource_request.memory is not numeric",
                ) from None
            _fraction_field(
                path, line_number, "resource_request.memory", assigned
            )
            pending[collection] = (time_us, assigned)
        elif kind == "FINISH":
            entry = pending.pop(collection, None)
            if entry is None:
                continue  # dump starts mid-trace; no SUBMIT seen
            submit_us, assigned = entry
            duration = (time_us - submit_us) / _MICROS
            if duration <= 0.0:
                continue  # instantaneous/garbled pair: not replayable
            usage = record.get("maximum_usage") or {}
            try:
                max_memory = float(usage.get("memory", assigned))
            except (TypeError, ValueError):
                raise row_error(
                    path,
                    line_number,
                    "maximum_usage.memory is not numeric",
                ) from None
            _fraction_field(
                path, line_number, "maximum_usage.memory", max_memory
            )
            yield JobRecord(
                job_id=job_id,
                submit_time=submit_us / _MICROS,
                duration=duration,
                assigned_memory=assigned,
                max_memory=max_memory,
            )
            job_id += 1
        # other event kinds (SCHEDULE, EVICT, ...) carry no new metric


@register_trace("google2019")
def build_google2019(spec: TraceSpec, seed: int) -> Trace:
    """Google Borg 2019 collection events (BigQuery JSONL export).

    Options: ``path`` (required), plus the shared
    ``start``/``window``/``sample``/``stride``/``limit`` scaling
    knobs.  Submit times are renumbered to t=0.
    """
    options = spec.reader("seed")
    path = options.path()
    scaling = read_scaling(options)
    options.finish()
    return materialise(
        apply_scaling(_iter_google2019(path), scaling), renumber=True
    )


build_google2019.summary = (
    "Google Borg 2019 collection-events JSONL (streaming join)"
)
build_google2019.spec_example = (
    "google2019:path=events.jsonl,window=1h,sample=0.05"
)
build_google2019.needs_path = True


_ALIBABA_COLUMNS = 9
#: batch_task.csv field indexes.
_ALI_STATUS, _ALI_START, _ALI_END, _ALI_MEM = 4, 5, 6, 8


def _iter_alibaba2018(path: str, usage_scale: float) -> Iterator[JobRecord]:
    job_id = 0
    for line_number, row in csv_rows(
        path, columns=_ALIBABA_COLUMNS, numeric_probe=_ALI_START
    ):
        if row[_ALI_STATUS] != "Terminated":
            continue  # Running/Waiting/Failed rows carry no duration
        start_text = row[_ALI_START].strip()
        end_text = row[_ALI_END].strip()
        mem_text = row[_ALI_MEM].strip()
        if not start_text or not end_text or not mem_text:
            continue  # the public dump has rows with empty fields
        try:
            start = float(start_text)
            end = float(end_text)
            plan_mem = float(mem_text)
        except ValueError as exc:
            raise row_error(
                path, line_number, f"non-numeric field: {exc}"
            ) from None
        duration = end - start
        if duration <= 0.0 or start < 0.0:
            continue
        if not 0.0 <= plan_mem <= 100.0:
            raise row_error(
                path,
                line_number,
                f"plan_mem={plan_mem:g} outside [0, 100]",
            )
        assigned = plan_mem / 100.0
        yield JobRecord(
            job_id=job_id,
            submit_time=start,
            duration=duration,
            assigned_memory=assigned,
            max_memory=min(assigned * usage_scale, 1.0),
        )
        job_id += 1


@register_trace("alibaba2018")
def build_alibaba2018(spec: TraceSpec, seed: int) -> Trace:
    """Alibaba cluster-trace-v2018 ``batch_task.csv``.

    Options: ``path`` (required), ``usage_scale`` (max-memory as a
    multiple of the plan, default 1.0 — the usage table ships
    separately), plus the shared scaling knobs.  Only ``Terminated``
    tasks replay; submit times are renumbered to t=0.
    """
    options = spec.reader("seed")
    path = options.path()
    usage_scale = options.number("usage_scale", 1.0)
    scaling = read_scaling(options)
    options.finish()
    if usage_scale is None or usage_scale <= 0:
        raise TraceError(
            f"trace spec option 'usage_scale' must be positive, "
            f"got {usage_scale!r}"
        )
    return materialise(
        apply_scaling(_iter_alibaba2018(path, usage_scale), scaling),
        renumber=True,
    )


build_alibaba2018.summary = (
    "Alibaba cluster-trace-v2018 batch_task.csv (Terminated tasks)"
)
build_alibaba2018.spec_example = (
    "alibaba2018:path=batch_task.csv,sample=0.01"
)
build_alibaba2018.needs_path = True


_AZURE_MIN_COLUMNS = 11
#: vmtable.csv field indexes (Azure Public Dataset V1).
_AZ_CREATED, _AZ_DELETED, _AZ_MEMORY = 3, 4, 10


def _iter_azure(
    path: str, machine_memory_gib: float, utilization: float
) -> Iterator[JobRecord]:
    job_id = 0
    for line_number, row in csv_rows(path, numeric_probe=_AZ_CREATED):
        if len(row) < _AZURE_MIN_COLUMNS:
            raise row_error(
                path,
                line_number,
                f"expected >= {_AZURE_MIN_COLUMNS} columns, "
                f"got {len(row)}",
            )
        created_text = row[_AZ_CREATED].strip()
        deleted_text = row[_AZ_DELETED].strip()
        # Buckets ship as numbers or as ">N" for the top bucket.
        memory_text = row[_AZ_MEMORY].strip().lstrip(">")
        if not created_text or not deleted_text or not memory_text:
            continue  # still-running VMs have no deletion timestamp
        try:
            created = float(created_text)
            deleted = float(deleted_text)
            memory_gib = float(memory_text)
        except ValueError as exc:
            raise row_error(
                path, line_number, f"non-numeric field: {exc}"
            ) from None
        duration = deleted - created
        if duration <= 0.0 or created < 0.0:
            continue
        assigned = min(memory_gib / machine_memory_gib, 1.0)
        yield JobRecord(
            job_id=job_id,
            submit_time=created,
            duration=duration,
            assigned_memory=assigned,
            max_memory=min(assigned * utilization, 1.0),
        )
        job_id += 1


@register_trace("azure-packing")
def build_azure_packing(spec: TraceSpec, seed: int) -> Trace:
    """Azure Public Dataset ``vmtable.csv`` VM-packing rows.

    Options: ``path`` (required), ``machine_memory_gib`` (reference
    machine normalising the memory buckets, default 64),
    ``utilization`` (used-memory fraction of the bucket, default 1.0
    — the packing trace declares buckets, not usage), plus the shared
    scaling knobs.  VMs never deleted are skipped; submit times are
    renumbered to t=0.
    """
    options = spec.reader("seed")
    path = options.path()
    machine_memory = options.number("machine_memory_gib", 64.0)
    utilization = options.fraction("utilization", 1.0)
    scaling = read_scaling(options)
    options.finish()
    if machine_memory is None or machine_memory <= 0:
        raise TraceError(
            f"trace spec option 'machine_memory_gib' must be "
            f"positive, got {machine_memory!r}"
        )
    return materialise(
        apply_scaling(
            _iter_azure(path, machine_memory, utilization or 1.0),
            scaling,
        ),
        renumber=True,
    )


build_azure_packing.summary = (
    "Azure Public Dataset vmtable.csv VM-packing rows"
)
build_azure_packing.spec_example = (
    "azure-packing:path=vmtable.csv,machine_memory_gib=64,window=6h"
)
build_azure_packing.needs_path = True
