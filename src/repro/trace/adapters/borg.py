"""Borg-shaped trace adapters: the paper's own workload, as specs.

``borg-synth`` is the calibrated synthetic generator behind every
figure (bit-for-bit identical to the deprecated
``Scenario(trace_seed=..., trace_jobs=...)`` knobs it replaces);
``borg-csv`` replays a prepared four-metric CSV — the shape
:func:`repro.trace.loader.load_borg_csv` documents — streamed through
the shared windowing/downsampling pipeline.
"""

from __future__ import annotations

from ...constants import (
    TRACE_OVERALLOCATOR_COUNT,
    TRACE_SCALED_JOB_COUNT,
)
from ...registry import register_trace
from ..borg import BorgTraceGenerator
from ..loader import iter_borg_csv
from ..schema import Trace
from ..spec import TraceSpec
from .common import apply_scaling, materialise, read_scaling


def default_overallocators(n_jobs: int) -> int:
    """The paper's over-allocator share (44 of 663) scaled to *n_jobs*."""
    return round(
        n_jobs * TRACE_OVERALLOCATOR_COUNT / TRACE_SCALED_JOB_COUNT
    )


@register_trace("borg-synth")
def build_borg_synth(spec: TraceSpec, seed: int) -> Trace:
    """The calibrated synthetic scaled Borg trace (the paper's workload).

    Options: ``seed`` (default 42), ``jobs`` (default 663, the scaled
    slice), ``overallocators`` (default: the paper's 44-of-663 share
    scaled with ``jobs``), ``window`` (submission span, default the
    1-hour slice; accepts duration suffixes, e.g. ``window=2h``).
    """
    options = spec.reader("seed")
    jobs = options.integer("jobs", None, minimum=1)
    overallocators = options.integer("overallocators", None, minimum=0)
    window = options.duration("window", None)
    options.finish()
    kwargs = {}
    if jobs is not None:
        kwargs["n_jobs"] = jobs
        kwargs["overallocators"] = default_overallocators(jobs)
    if overallocators is not None:
        kwargs["overallocators"] = overallocators
    if window is not None:
        kwargs["window_seconds"] = window
    return BorgTraceGenerator(seed=seed).scaled_trace(**kwargs)


build_borg_synth.summary = (
    "calibrated synthetic scaled Borg trace (the paper's workload)"
)
build_borg_synth.spec_example = "borg-synth:seed=7,jobs=500"
build_borg_synth.needs_path = False


@register_trace("borg-csv")
def build_borg_csv(spec: TraceSpec, seed: int) -> Trace:
    """A prepared Borg-shape CSV, streamed.

    Options: ``path`` (required), ``start``/``window`` (relative clip),
    ``sample`` (keep-fraction) or ``stride``, ``limit``, ``renumber``
    (default: only when any scaling option is active, so a plain
    ``borg-csv:path=...`` load equals ``load_borg_csv`` exactly).
    The ``seed`` option is accepted for spec uniformity but unused —
    the file is the randomness.
    """
    options = spec.reader("seed")
    path = options.path()
    scaling = read_scaling(options)
    renumber = options.flag("renumber", scaling.active)
    options.finish()
    return materialise(
        apply_scaling(iter_borg_csv(path), scaling), renumber
    )


build_borg_csv.summary = (
    "prepared Borg-shape CSV (job_id, submit, duration, assigned, max)"
)
build_borg_csv.spec_example = "borg-csv:path=trace.csv,window=1h"
build_borg_csv.needs_path = True
