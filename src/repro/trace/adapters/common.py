"""Shared machinery for the trace adapters.

File-backed adapters all answer the same four knobs — ``start``,
``window``, ``sample``/``stride`` and ``limit`` — by threading the
record stream through the windowing/downsampling combinators of
:mod:`repro.trace.scaling` before anything is materialised.  The
window is *relative to the first record's submit time* (``start=0``
is the beginning of the trace), which is the only sane reading for
public traces timestamped in epoch microseconds.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ...errors import TraceError
from ..scaling import iter_stride, renumber_from_zero
from ..schema import JobRecord, Trace
from ..spec import SpecOptions


@dataclass(frozen=True)
class StreamScaling:
    """The parsed scaling knobs of one file-backed spec."""

    start: Optional[float] = None
    window: Optional[float] = None
    stride: int = 1
    limit: Optional[int] = None

    @property
    def active(self) -> bool:
        return (
            self.start is not None
            or self.window is not None
            or self.stride != 1
            or self.limit is not None
        )


def read_scaling(options: SpecOptions) -> StreamScaling:
    """Claim and parse the shared scaling options.

    ``sample`` is a keep-fraction mapped onto the nearest stride
    (``sample=0.05`` keeps every 20th record — the paper's own
    frequency reduction, deterministic and streaming-friendly);
    ``stride`` names the stride directly.  Both together are a
    contradiction and die.
    """
    start = options.duration("start", None)
    window = options.duration("window", None)
    sample = options.fraction("sample", None)
    stride = options.integer("stride", None, minimum=1)
    limit = options.integer("limit", None, minimum=1)
    if sample is not None and stride is not None:
        raise TraceError(
            "trace spec options 'sample' and 'stride' both given; "
            "they set the same downsampling knob"
        )
    if sample is not None:
        if sample <= 0.0:
            raise TraceError(
                f"trace spec option 'sample' must be in (0, 1], "
                f"got {sample:g}"
            )
        stride = max(1, round(1.0 / sample))
    if start is not None and start < 0:
        raise TraceError(
            f"trace spec option 'start' must be >= 0, got {start:g}"
        )
    if window is not None and window <= 0:
        raise TraceError(
            f"trace spec option 'window' must be positive, "
            f"got {window:g}"
        )
    return StreamScaling(
        start=start, window=window, stride=stride or 1, limit=limit
    )


def iter_relative_window(
    records: Iterable[JobRecord], start: float, end: float
) -> Iterator[JobRecord]:
    """Records submitted within ``[start, end)`` of the trace's origin.

    The origin is the first record's submit time, captured on the fly
    — no extra pass over the file.  Records outside the window are
    dropped as they stream past, never materialised.
    """
    origin: Optional[float] = None
    for job in records:
        if origin is None:
            origin = job.submit_time
        offset = job.submit_time - origin
        if start <= offset < end:
            yield job


def apply_scaling(
    records: Iterable[JobRecord], scaling: StreamScaling
) -> Iterator[JobRecord]:
    """Window → downsample → limit, all streaming."""
    if scaling.start is not None or scaling.window is not None:
        start = scaling.start or 0.0
        end = (
            start + scaling.window
            if scaling.window is not None
            else float("inf")
        )
        records = iter_relative_window(records, start, end)
    if scaling.stride != 1:
        records = iter_stride(records, scaling.stride)
    if scaling.limit is not None:
        records = itertools.islice(records, scaling.limit)
    return iter(records)


def materialise(
    records: Iterable[JobRecord], renumber: bool
) -> Trace:
    """The kept records as a :class:`Trace`, renumbered to t=0 if asked."""
    trace = Trace(records)
    return renumber_from_zero(trace) if renumber else trace
