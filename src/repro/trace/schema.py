"""Trace data model.

A :class:`JobRecord` carries exactly the four metrics the paper extracts
from the Borg trace (Section VI-B): submission time, duration, *assigned*
memory (what the job declares to the orchestrator) and *maximal memory
usage* (what it actually consumes).  Memory is expressed as a fraction of
the largest machine in Google's cluster — the trace never discloses
absolute values — and is mapped to bytes only at materialisation time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List

from ..errors import TraceError


@dataclass(frozen=True)
class JobRecord:
    """One job of the (scaled or full) trace."""

    job_id: int
    submit_time: float
    duration: float
    #: Declared memory, fraction of the reference machine (0..1).
    assigned_memory: float
    #: Actual peak memory, fraction of the reference machine (0..1).
    max_memory: float

    def __post_init__(self):
        if self.submit_time < 0:
            raise TraceError(f"job {self.job_id}: negative submit time")
        if self.duration <= 0:
            raise TraceError(f"job {self.job_id}: non-positive duration")
        for name in ("assigned_memory", "max_memory"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise TraceError(
                    f"job {self.job_id}: {name}={value} outside [0, 1]"
                )

    @property
    def end_time(self) -> float:
        """Submission plus useful duration (ignores queueing)."""
        return self.submit_time + self.duration

    @property
    def overallocates(self) -> bool:
        """Whether the job uses more memory than it advertises.

        These are the 44-of-663 jobs that strict limit enforcement kills
        immediately after launch (Section VI-F).
        """
        return self.max_memory > self.assigned_memory

    def shifted(self, offset: float) -> "JobRecord":
        """Copy with the submit time shifted by *offset* seconds."""
        return replace(self, submit_time=self.submit_time + offset)


class Trace:
    """An ordered collection of job records.

    Construction validates the submit-time axis **once**: every
    submit time and duration must be finite.  :class:`JobRecord`'s own
    guards use comparisons, which NaN slips past (``NaN < 0`` is
    false) — and a NaN submit time would silently corrupt the sort
    that everything downstream (replay order, windowing, renumbering)
    relies on.  After the sort, submit times are monotone and the
    first record's non-negativity guarantee covers the rest.
    """

    def __init__(self, jobs: Iterable[JobRecord] = ()):
        self._jobs: List[JobRecord] = sorted(
            jobs, key=lambda j: (j.submit_time, j.job_id)
        )
        for job in self._jobs:
            if not (
                math.isfinite(job.submit_time)
                and math.isfinite(job.duration)
            ):
                raise TraceError(
                    f"job {job.job_id}: non-finite submit time "
                    f"({job.submit_time}) or duration ({job.duration})"
                )

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self._jobs)

    def __getitem__(self, index: int) -> JobRecord:
        return self._jobs[index]

    @property
    def jobs(self) -> List[JobRecord]:
        """All jobs, submission order."""
        return list(self._jobs)

    # -- aggregate properties ------------------------------------------------

    @property
    def span_seconds(self) -> float:
        """Time between first submission and last job end."""
        if not self._jobs:
            return 0.0
        return max(j.end_time for j in self._jobs) - self._jobs[0].submit_time

    @property
    def total_duration_seconds(self) -> float:
        """Sum of useful durations — Fig. 10's dotted "Trace" bar."""
        return sum(j.duration for j in self._jobs)

    @property
    def overallocator_count(self) -> int:
        """Jobs whose actual memory exceeds the declared amount."""
        return sum(1 for j in self._jobs if j.overallocates)

    def durations(self) -> List[float]:
        """All job durations (Fig. 4's sample)."""
        return [j.duration for j in self._jobs]

    def max_memories(self) -> List[float]:
        """All max-memory fractions (Fig. 3's sample)."""
        return [j.max_memory for j in self._jobs]

    def concurrency_at(self, time: float) -> int:
        """Jobs whose [submit, end) interval covers *time*."""
        return sum(
            1 for j in self._jobs if j.submit_time <= time < j.end_time
        )
