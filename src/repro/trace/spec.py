"""Trace spec grammar: ``"name:key=value,key=value"``.

One string names a trace source and parameterises it — the same move
the registries made for schedulers and workloads, except a trace needs
knobs (seed, path, window) so the name carries an option list::

    borg-synth:seed=7,jobs=500
    google2019:path=events.jsonl,window=1h,sample=0.05
    synth-bursty:seed=3,jobs=500,bursts=4

Grammar (strict, so a typo dies at :class:`~repro.api.Scenario`
construction, not mid-replay):

* *name* — lowercase ``[a-z0-9]`` words joined by single dashes;
* *options* — ``key=value`` pairs joined by commas after one colon;
  keys are ``[a-z][a-z0-9_]*``, values any non-empty text without
  commas (so paths work; a path containing a comma cannot be spelled
  in a spec — load it with the loader API instead);
* duplicate keys are rejected.

Values stay **raw strings** in the parsed :class:`TraceSpec`; adapters
coerce them through :class:`SpecOptions`, which also rejects unknown
keys with the accepted set.  ``parse_trace_spec`` and
``format_trace_spec`` round-trip exactly (options are kept sorted by
key, making the formatted form canonical).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple, Union

from ..errors import TraceError

_NAME_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")
_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*$")
#: Duration literal: a number with an optional s/m/h/d suffix.
_DURATION_RE = re.compile(
    r"^(?P<value>\d+(\.\d+)?|\.\d+)(?P<unit>[smhd]?)$"
)
_DURATION_SECONDS = {"": 1.0, "s": 1.0, "m": 60.0, "h": 3600.0,
                     "d": 86_400.0}


@dataclass(frozen=True)
class TraceSpec:
    """One parsed trace spec: adapter name plus raw string options."""

    name: str
    #: Sorted ``(key, raw value)`` pairs — hashable and canonical.
    options: Tuple[Tuple[str, str], ...] = ()

    def reader(self, *consumed: str) -> "SpecOptions":
        """A typed option reader with *consumed* keys pre-claimed.

        The resolver claims ``seed`` before calling the factory, so
        factories start with ``spec.reader("seed")``.
        """
        return SpecOptions(self, consumed=consumed)

    def __str__(self) -> str:
        return format_trace_spec(self)


def parse_trace_spec(text: str) -> TraceSpec:
    """Parse ``"name:key=value,..."`` into a :class:`TraceSpec`."""
    if not isinstance(text, str) or not text.strip():
        raise TraceError(f"empty trace spec: {text!r}")
    text = text.strip()
    name, colon, option_text = text.partition(":")
    if not _NAME_RE.match(name):
        raise TraceError(
            f"bad trace spec {text!r}: adapter name {name!r} must be "
            "lowercase words joined by dashes (e.g. 'borg-synth')"
        )
    if colon and not option_text.strip():
        raise TraceError(
            f"bad trace spec {text!r}: ':' must be followed by "
            "key=value options"
        )
    options: Dict[str, str] = {}
    if colon:
        for part in option_text.split(","):
            part = part.strip()
            key, equals, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            if not equals or not _KEY_RE.match(key) or not value:
                raise TraceError(
                    f"bad trace spec {text!r}: option {part!r} is not "
                    "key=value (keys are lowercase identifiers, "
                    "values non-empty)"
                )
            if key in options:
                raise TraceError(
                    f"bad trace spec {text!r}: duplicate option "
                    f"{key!r}"
                )
            options[key] = value
    return TraceSpec(name=name, options=tuple(sorted(options.items())))


def format_trace_spec(spec: TraceSpec) -> str:
    """The canonical string form; ``parse_trace_spec`` round-trips it."""
    if not spec.options:
        return spec.name
    options = ",".join(f"{key}={value}" for key, value in spec.options)
    return f"{spec.name}:{options}"


def make_trace_spec(
    name: str, options: Optional[Iterable[Tuple[str, object]]] = None
) -> str:
    """Build a canonical spec string from *name* and option pairs.

    The scenario layer uses this to rewrite the deprecated
    ``trace_seed``/``trace_jobs`` knobs into their ``borg-synth:...``
    equivalent; values are stringified with ``str`` (which round-trips
    ints exactly).
    """
    pairs = tuple(
        sorted((key, str(value)) for key, value in (options or ()))
    )
    return format_trace_spec(TraceSpec(name=name, options=pairs))


def parse_duration(text: Union[str, float, int]) -> float:
    """Seconds of a duration literal: ``90``, ``"90s"``, ``"1.5h"``.

    Suffixes: ``s`` seconds (default), ``m`` minutes, ``h`` hours,
    ``d`` days.
    """
    if isinstance(text, (int, float)) and not isinstance(text, bool):
        return float(text)
    match = _DURATION_RE.match(str(text).strip())
    if match is None:
        raise TraceError(
            f"bad duration {text!r}: expected a number with an "
            "optional s/m/h/d suffix (e.g. '90s', '1h')"
        )
    return float(match.group("value")) * _DURATION_SECONDS[
        match.group("unit")
    ]


class SpecOptions:
    """Typed access to a spec's raw options, with leftover detection.

    Adapters read each option through a typed getter (claiming it),
    then call :meth:`finish`; an option nobody claimed is a typo and
    dies with the accepted key set.  Every coercion error carries the
    spec and the offending option.
    """

    def __init__(
        self, spec: TraceSpec, consumed: Iterable[str] = ()
    ) -> None:
        self._spec = spec
        self._raw = dict(spec.options)
        self._claimed = set(consumed)

    # -- typed getters ------------------------------------------------------

    def string(self, key: str, default: Optional[str] = None):
        self._claimed.add(key)
        return self._raw.get(key, default)

    def path(self, key: str = "path") -> str:
        value = self.string(key)
        if value is None:
            raise self._error(key, "is required (a file path)")
        return value

    def integer(
        self,
        key: str,
        default: Optional[int] = None,
        minimum: Optional[int] = None,
    ) -> Optional[int]:
        raw = self.string(key)
        if raw is None:
            return default
        try:
            value = int(raw)
        except ValueError:
            raise self._error(key, f"must be an integer, got {raw!r}")
        if minimum is not None and value < minimum:
            raise self._error(key, f"must be >= {minimum}, got {value}")
        return value

    def number(
        self, key: str, default: Optional[float] = None
    ) -> Optional[float]:
        raw = self.string(key)
        if raw is None:
            return default
        try:
            return float(raw)
        except ValueError:
            raise self._error(key, f"must be a number, got {raw!r}")

    def fraction(
        self, key: str, default: Optional[float] = None
    ) -> Optional[float]:
        value = self.number(key, default)
        if value is not None and not 0.0 <= value <= 1.0:
            raise self._error(
                key, f"must be a fraction in [0, 1], got {value:g}"
            )
        return value

    def duration(
        self, key: str, default: Optional[float] = None
    ) -> Optional[float]:
        raw = self.string(key)
        if raw is None:
            return default
        try:
            return parse_duration(raw)
        except TraceError as exc:
            raise self._error(key, str(exc)) from None

    def flag(self, key: str, default: bool = False) -> bool:
        raw = self.string(key)
        if raw is None:
            return default
        lowered = raw.lower()
        if lowered in ("true", "yes", "1", "on"):
            return True
        if lowered in ("false", "no", "0", "off"):
            return False
        raise self._error(key, f"must be a boolean, got {raw!r}")

    # -- leftover detection -------------------------------------------------

    def finish(self) -> None:
        """Reject unclaimed options, naming the accepted key set."""
        unknown = sorted(set(self._raw) - self._claimed)
        if unknown:
            accepted = ", ".join(sorted(self._claimed)) or "<none>"
            raise TraceError(
                f"trace spec {format_trace_spec(self._spec)!r}: "
                f"unknown option(s) {', '.join(unknown)}; "
                f"accepted: {accepted}"
            )

    def _error(self, key: str, detail: str) -> TraceError:
        spec = format_trace_spec(self._spec)
        return TraceError(
            f"trace spec {spec!r}: option {key!r} {detail}"
        )
