"""Streaming file readers for the trace adapters.

Public cluster traces are multi-gigabyte files; the adapters must
replay them in bounded memory.  Everything here is a generator: rows
come off the file one at a time, flow through the windowing/sampling
combinators of :mod:`repro.trace.scaling`, and only the records the
replay keeps are ever materialised — peak memory is O(kept window),
not O(file).

Every malformed row dies with a :class:`~repro.errors.TraceError`
carrying ``path:line`` context, so a corrupt download points at the
offending line instead of skewing an experiment silently.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import TraceError

PathLike = Union[str, Path]


def row_error(
    path: PathLike, line_number: int, detail: object
) -> TraceError:
    """A malformed-row error with ``file:line`` context."""
    return TraceError(f"{path}:{line_number}: {detail}")


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def csv_rows(
    path: PathLike,
    columns: Optional[int] = None,
    numeric_probe: int = 0,
) -> Iterator[Tuple[int, List[str]]]:
    """``(line_number, row)`` stream of a trace CSV.

    Skips blank lines and ``#`` comments anywhere; skips a single
    header row, detected as the first data row whose *numeric_probe*-th
    field is not numeric (public formats put strings in some columns,
    so the probe column is the adapter's submit-time field).  When
    *columns* is given, rows with a different arity die with
    ``path:line`` context.
    """
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    first_data_row = True
    with path.open(newline="") as handle:
        for line_number, row in enumerate(csv.reader(handle), start=1):
            if not row or row[0].lstrip().startswith("#"):
                continue
            if first_data_row:
                first_data_row = False
                probe_ok = numeric_probe < len(row)
                if not probe_ok or not _is_numeric(row[numeric_probe]):
                    continue  # header
            if columns is not None and len(row) != columns:
                raise row_error(
                    path,
                    line_number,
                    f"expected {columns} columns, got {len(row)}",
                )
            yield line_number, row


def jsonl_rows(path: PathLike) -> Iterator[Tuple[int, Dict]]:
    """``(line_number, object)`` stream of a JSON-lines trace file."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            text = line.strip()
            if not text or text.startswith("#"):
                continue
            try:
                record = json.loads(text)
            except ValueError as exc:
                raise row_error(
                    path, line_number, f"bad JSON: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise row_error(
                    path,
                    line_number,
                    f"expected a JSON object, got {type(record).__name__}",
                )
            yield line_number, record
