"""Calibrated synthetic Google Borg trace generator.

The public 2011 trace is not redistributable inside this repository, so
experiments run on a synthetic trace drawn from distributions calibrated
to the marginals the paper publishes:

* **Job duration** (Fig. 4) — all jobs last at most 300 s, with a smooth
  CDF; modelled as ``300 * Beta(1.8, 1.2)`` (mean 180 s).
* **Max memory usage** (Fig. 3) — a fraction of the largest machine,
  capped at 0.5 with most jobs below 0.1; modelled as
  ``0.5 * Beta(0.6, 3.1)``.  Jointly with the duration model this puts
  the all-SGX replay at the EPC offered load that Fig. 7's measured
  drain times imply (about 1.35x capacity on 128 MiB hardware).
* **Assigned (declared) memory** — honest jobs declare slightly more
  than they use (a ``1 + Exp(0.25)`` inflation factor); a configurable
  number of jobs *under-declare* (``U(0.3, 0.9)`` deflation), matching
  the 44-of-663 over-allocators of Section VI-F.
* **Arrivals** — a Poisson process.  Sampling every 1200th job of a
  Poisson stream is itself a Poisson stream at 1/1200th the rate, so the
  scaled trace is generated directly at the thinned rate (663 jobs per
  hour) rather than materialising ~800 k jobs to discard 99.9 % of them.
* **Concurrency** (Fig. 5) — the 125 k-145 k band of concurrently
  *running* jobs is dominated by long-running services the paper never
  schedules; modelled as a service floor plus the batch load implied by
  Little's law under a diurnally modulated arrival rate with the dip the
  paper selects its slice from.

Every draw comes from a seeded :class:`numpy.random.Generator`; the same
seed always yields the same trace.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..constants import (
    TRACE_MAX_JOB_DURATION_SECONDS,
    TRACE_MAX_MEMORY_FRACTION,
    TRACE_OVERALLOCATOR_COUNT,
    TRACE_SCALED_JOB_COUNT,
    TRACE_SLICE_END_SECONDS,
    TRACE_SLICE_START_SECONDS,
)
from ..errors import TraceError
from .schema import JobRecord, Trace

#: Duration model: 300 * Beta(a, b) seconds (mean 180 s).  The mean is
#: calibrated jointly with the memory model so the all-SGX replay carries
#: the EPC offered load implied by Fig. 7's drain times (~1.35 at the
#: 128 MiB EPC of real hardware) while staying under Fig. 4's 300 s cap.
_DURATION_BETA = (1.8, 1.2)
#: Max-memory model: 0.5 * Beta(a, b) of the reference machine
#: (mean ~0.081, ~65 % of jobs below 0.1; Fig. 3's shape).
_MEMORY_BETA = (0.6, 3.1)
#: Honest declaration inflation: assigned = max * (1 + Exp(scale)).
_DECLARE_INFLATION_SCALE = 0.25
#: Under-declaration range for over-allocating jobs.
_UNDER_DECLARE_RANGE = (0.3, 0.9)


class BorgTraceGenerator:
    """Deterministic synthetic trace factory.

    Parameters
    ----------
    seed:
        Seed for all randomness; identical seeds give identical traces.
    max_duration:
        Duration cap (the paper's trace maxes at 300 s).
    max_memory_fraction:
        Cap on the max-memory fraction (0.5 in the paper's Fig. 3).
    service_floor:
        Long-running service jobs underpinning Fig. 5's concurrency band.
    """

    def __init__(
        self,
        seed: int = 0,
        max_duration: float = TRACE_MAX_JOB_DURATION_SECONDS,
        max_memory_fraction: float = TRACE_MAX_MEMORY_FRACTION,
        service_floor: int = 95_000,
    ):
        if max_duration <= 0:
            raise TraceError("max duration must be positive")
        if not 0 < max_memory_fraction <= 1:
            raise TraceError("max memory fraction must be in (0, 1]")
        self.seed = seed
        self.max_duration = max_duration
        self.max_memory_fraction = max_memory_fraction
        self.service_floor = service_floor

    # -- scaled trace (the evaluation workload) ------------------------------

    def scaled_trace(
        self,
        n_jobs: int = TRACE_SCALED_JOB_COUNT,
        overallocators: int = TRACE_OVERALLOCATOR_COUNT,
        window_seconds: Optional[float] = None,
    ) -> Trace:
        """The paper's evaluation workload: the sliced, stride-sampled trace.

        Generates *n_jobs* submissions over *window_seconds* (defaults to
        the 1-hour slice length), with exactly *overallocators* jobs that
        use more memory than they declare.  Submit times start at 0 — the
        slice is already renumbered, as the replay harness expects.
        """
        if n_jobs <= 0:
            raise TraceError(f"need a positive job count, got {n_jobs}")
        if not 0 <= overallocators <= n_jobs:
            raise TraceError(
                f"overallocators ({overallocators}) must be within "
                f"0..{n_jobs}"
            )
        if window_seconds is None:
            window_seconds = float(
                TRACE_SLICE_END_SECONDS - TRACE_SLICE_START_SECONDS
            )
        rng = np.random.default_rng(self.seed)
        # A Poisson process conditioned on its count is ordered uniforms.
        submit_times = np.sort(
            rng.uniform(0.0, window_seconds, size=n_jobs)
        )
        durations = self._durations(rng, n_jobs)
        max_memory = self._max_memory(rng, n_jobs)
        assigned = self._assigned_memory(
            rng, max_memory, overallocators
        )
        jobs = [
            JobRecord(
                job_id=index,
                submit_time=float(submit_times[index]),
                duration=float(durations[index]),
                assigned_memory=float(assigned[index]),
                max_memory=float(max_memory[index]),
            )
            for index in range(n_jobs)
        ]
        return Trace(jobs)

    # -- full-trace statistics (Figs. 3-5) -----------------------------------

    def marginal_samples(
        self, n_samples: int = 20_000
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(durations, max_memory) samples of the full-trace marginals.

        Figures 3 and 4 plot distributions over the whole trace; this
        draws a large i.i.d. sample of the same distributions the scaled
        trace uses.
        """
        rng = np.random.default_rng(self.seed + 1)
        return self._durations(rng, n_samples), self._max_memory(
            rng, n_samples
        )

    def arrival_rate(self, t_seconds: float) -> float:
        """Batch-job arrival rate (jobs/s) at trace time *t_seconds*.

        Diurnally modulated, with a local minimum inside the paper's
        evaluation slice — "this slice of trace, while being the less
        job-intensive in terms of concurrent jobs for the considered
        time interval, still injects an intensive load" (Section VI-B).
        """
        base = 221.0  # ~663 sampled jobs/hour * 1200 stride
        day_fraction = (t_seconds % 86_400.0) / 86_400.0
        # Minimum near t ~ 8280 s (the slice midpoint).
        modulation = 1.0 + 0.10 * math.cos(
            2.0 * math.pi * (day_fraction - 8_280.0 / 86_400.0) + math.pi
        )
        return base * modulation

    def concurrency_series(
        self, hours: float = 24.0, step_seconds: float = 600.0
    ) -> List[Tuple[float, float]]:
        """(time, concurrently running jobs) over the first *hours*.

        Fig. 5's series: the service floor (with slow seeded churn) plus
        the batch concurrency implied by Little's law (rate x mean
        duration) at each instant.
        """
        rng = np.random.default_rng(self.seed + 2)
        mean_duration = float(
            self.max_duration
            * _DURATION_BETA[0]
            / (_DURATION_BETA[0] + _DURATION_BETA[1])
        )
        series: List[Tuple[float, float]] = []
        churn = 0.0
        t = 0.0
        end = hours * 3600.0
        while t <= end:
            churn = 0.98 * churn + float(rng.normal(0.0, 400.0))
            batch = self.arrival_rate(t) * mean_duration
            # Services scale the band into the 125k-145k range.
            services = self.service_floor * (
                1.0 + 0.05 * math.sin(2.0 * math.pi * t / 86_400.0)
            )
            series.append((t, services + batch + churn))
            t += step_seconds
        return series

    # -- marginal sampling (shared with the synthetic spec adapters) ---------

    def sample_durations(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """*n* draws of the Fig. 4 duration marginal under *rng*."""
        return self._durations(rng, n)

    def sample_max_memory(
        self, rng: np.random.Generator, n: int
    ) -> np.ndarray:
        """*n* draws of the Fig. 3 max-memory marginal under *rng*."""
        return self._max_memory(rng, n)

    def sample_assigned_memory(
        self,
        rng: np.random.Generator,
        max_memory: np.ndarray,
        overallocators: int,
    ) -> np.ndarray:
        """Declared memory per job: honest inflation, with exactly
        *overallocators* under-declaring jobs (Section VI-F)."""
        return self._assigned_memory(rng, max_memory, overallocators)

    # -- distribution internals -------------------------------------------

    def _durations(self, rng: np.random.Generator, n: int) -> np.ndarray:
        a, b = _DURATION_BETA
        return self.max_duration * rng.beta(a, b, size=n)

    def _max_memory(self, rng: np.random.Generator, n: int) -> np.ndarray:
        a, b = _MEMORY_BETA
        samples = self.max_memory_fraction * rng.beta(a, b, size=n)
        # Avoid degenerate zero-memory jobs (the trace has none).
        return np.clip(samples, 1e-4, self.max_memory_fraction)

    def _assigned_memory(
        self,
        rng: np.random.Generator,
        max_memory: np.ndarray,
        overallocators: int,
    ) -> np.ndarray:
        n = len(max_memory)
        inflation = 1.0 + rng.exponential(_DECLARE_INFLATION_SCALE, size=n)
        assigned = np.minimum(max_memory * inflation, 1.0)
        if overallocators > 0:
            chosen = rng.choice(n, size=overallocators, replace=False)
            low, high = _UNDER_DECLARE_RANGE
            deflation = rng.uniform(low, high, size=overallocators)
            assigned[chosen] = max_memory[chosen] * deflation
        # Everything must stay a valid fraction.
        return np.clip(assigned, 1e-5, 1.0)


def synthetic_scaled_trace(seed: int = 0, **kwargs) -> Trace:
    """Shorthand for the default evaluation workload at a given seed."""
    return BorgTraceGenerator(seed=seed).scaled_trace(**kwargs)
