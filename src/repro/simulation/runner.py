"""End-to-end trace replay: the paper's evaluation harness in simulation.

Drives the *real* control plane — orchestrator, schedulers, device
plugins, probes, driver — with a deterministic event loop:

* submissions fire at the trace's timestamps;
* probes push metrics every ``metrics_period`` seconds;
* the scheduler runs every ``scheduler_period`` seconds over the
  persistent FCFS queue;
* launched pods start after their measured startup latency (PSW boot +
  EPC allocation, Fig. 6's model) and run for their trace duration —
  stretched by the EPC paging slowdown while their node is over-
  committed (only possible when limit enforcement is off, Fig. 11).

The progress of a running enclave job is tracked as *remaining work*:
whenever a node's EPC occupancy changes, work done so far is banked at
the old rate and the finish event is rescheduled at the new rate.

**Event-driven scheduling** (``ReplayConfig(event_driven=True)``): the
scheduler wakes on the same periodic grid — the grid doubles as the
min-interval guard and, crucially, keeps the progress-banking float
arithmetic on the identical cadence — but each wake-up consults the
orchestrator's :class:`~repro.orchestrator.triggers.SchedulingTrigger`
and the state-service fingerprint, and *skips* the pass when no cluster
event fired and the measured view is provably unchanged: the pass would
recompute the previous all-deferred outcome.  Because only provable
no-ops are skipped, event-driven replay is bit-for-bit identical to the
periodic oracle (same bindings, same timestamps, same makespan) while
executing a fraction of its scheduling passes.  The default,
``event_driven=False``, is the paper's Sec. IV behaviour unchanged.

**Indexed scheduling** (``ReplayConfig(indexed_scheduling=True)``):
inside each executed pass, the scheduler consults the incremental
:class:`~repro.scheduler.index.NodeCandidateIndex` instead of scanning
every node for every pod — same outcomes bit for bit, O(pods × nodes)
work removed from the pass itself.  Composes freely with
``event_driven`` (fewer passes × cheaper passes).
"""

from __future__ import annotations

import inspect
import warnings
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

# Importing the strategy/workload/policy *packages* (not just the
# modules the runner itself touches) registers every built-in with the
# registries, so a bare ``ReplayConfig(scheduler="spread")`` always
# resolves.
from .. import policy as _policy_builtins  # noqa: F401
from .. import scheduler as _scheduler_builtins  # noqa: F401
from .. import workload as _workload_builtins  # noqa: F401
from ..cluster.topology import paper_cluster
from ..constants import (
    EPC_TOTAL_BYTES,
    METRICS_PUSH_PERIOD_SECONDS,
    SCHEDULER_PERIOD_SECONDS,
)
from ..errors import PolicyError, RegistryError, SimulationError
from ..obs.ledger import ObserveConfig
from ..obs.observer import build_observer
from ..orchestrator.controller import Orchestrator
from ..orchestrator.pod import Pod
from ..policy.classes import (
    DEFAULT_PREEMPTION_THRESHOLD,
    priority_class_map,
    resolve_priority,
)
from ..policy.preemption import PreemptionPolicy
from ..registry import CELLS, PREEMPTION_POLICIES, SCHEDULERS, WORKLOADS
from ..scheduler.base import Scheduler
from ..scheduler.rebalancer import EpcRebalancer
from ..sgx.perf import SgxPerfModel
from ..trace.adapters import resolve_trace
from ..trace.schema import Trace
from ..workload.malicious import MaliciousConfig
from ..workload.stress import SubmissionPlan
from .engine import EventHandle, SimulationEngine
from .events import EventKind, EventLog
from .metrics import QueueSample, ReplayMetrics

#: Option mappings stored on the frozen config: sorted (key, value)
#: pairs, so configs stay hashable and order-insensitively equal.
OptionItems = Tuple[Tuple[str, object], ...]


def freeze_options(options) -> OptionItems:
    """Normalise a mapping (or pair iterable) into sorted items."""
    if options is None:
        return ()
    if isinstance(options, Mapping):
        items = options.items()
    else:
        items = dict(options).items()
    return tuple(sorted(items))


def _validate_factory_options(
    kind: str,
    name: str,
    factory,
    standard_kwargs: Dict[str, object],
    options: OptionItems,
) -> None:
    """Fail at config construction if *options* cannot reach *factory*.

    Checks the factory's signature without calling it: an option
    shadowing a standard knob, or an unknown keyword on a factory
    without ``**options``, would otherwise die with a bare TypeError
    deep inside ``.run()`` (possibly in a pool worker).
    """
    extra = dict(options)
    shadowed = sorted(set(extra) & set(standard_kwargs))
    if shadowed:
        raise SimulationError(
            f"{kind}_options may not shadow the standard knob(s) "
            f"{', '.join(shadowed)}; set the config field instead"
        )
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C callables
        return
    try:
        signature.bind_partial(**standard_kwargs, **extra)
    except TypeError as exc:
        detail = (
            f"invalid {kind}_options for {name!r}"
            if extra
            else f"{kind} {name!r} factory cannot accept the "
            f"standard knobs ({', '.join(standard_kwargs)})"
        )
        raise SimulationError(f"{detail}: {exc}") from None


@dataclass(frozen=True, slots=True)
class ReplayConfig:
    """Parameters of one replay experiment.

    .. deprecated::
        ``ReplayConfig`` + :func:`replay_trace` remain as a thin shim;
        new code should build a :class:`repro.api.Scenario` (same
        knobs, plus the trace source) and call ``.run()``.

    Invalid parameters are rejected at construction time — a bad SGX
    fraction, a non-positive period or an unknown scheduler name dies
    here with the list of known names, not minutes into a replay.
    """

    scheduler: str = "binpack"  # any name in repro.registry.SCHEDULERS
    sgx_fraction: float = 0.0
    seed: int = 0
    epc_total_bytes: int = EPC_TOTAL_BYTES
    #: Figs. 8-10 run on the stock driver: no per-pod limits, paging
    #: allowed.  Fig. 11's "limits enabled" runs flip both switches.
    enforce_epc_limits: bool = False
    epc_allow_overcommit: bool = True
    scheduler_period: float = SCHEDULER_PERIOD_SECONDS
    metrics_period: float = METRICS_PUSH_PERIOD_SECONDS
    use_measured: bool = True
    strict_fcfs: bool = False
    preserve_sgx_nodes: bool = True
    #: Fire scheduling passes on cluster events (submissions,
    #: completions, requeue-backoff expiries, node churn) instead of
    #: unconditionally every period: clean wake-ups are skipped.
    #: Bit-for-bit equivalent to the periodic default on any seeded
    #: trace; the periodic mode remains the oracle for that claim.
    event_driven: bool = False
    #: Backoff before a transiently failed (requeued) pod is eligible
    #: again.  0 retries on the very next pass, like the paper.
    requeue_backoff_seconds: float = 0.0
    #: Answer each pass from the incremental node-candidate index
    #: (sorted per-resource candidate selection, batched placements)
    #: instead of the per-pod full scan over every node.  Bit-for-bit
    #: identical outcomes; the full scan remains the oracle for that
    #: claim, exactly like ``event_driven`` and ``use_state_cache``.
    indexed_scheduling: bool = False
    #: Cluster sizing overrides (``None`` keeps the paper's testbed:
    #: 2 standard + 2 SGX workers) for scaled-up benchmark runs.
    standard_workers: Optional[int] = None
    sgx_workers: Optional[int] = None
    #: Answer the scheduler's sliding-window queries from the
    #: incremental aggregate cache instead of re-scanning the TSDB
    #: every pass.  Results are identical either way; the toggle exists
    #: for A/B benchmarking and as an escape hatch.
    use_state_cache: bool = True
    malicious: Optional[MaliciousConfig] = None
    #: Period of the EPC contention rebalancer (Sec. V-E's migration
    #: use case); ``None`` disables it, as in the paper's evaluation.
    rebalance_period: Optional[float] = None
    #: Failure injection: (time, node_name) crashes.  Running pods on
    #: the crashed node are lost and resubmitted by the controller; the
    #: node leaves the cluster (its probe is reaped).
    node_failures: Sequence[Tuple[float, str]] = ()
    #: Hard stop; generous because small EPC sizes drain slowly (Fig. 7).
    max_sim_seconds: float = 48 * 3600.0
    #: Workload materialiser (any name in ``repro.registry.WORKLOADS``)
    #: turning the trace into submission plans, plus its options.  The
    #: default is the paper's STRESS-SGX trace materialisation.
    workload: str = "stress"
    workload_options: OptionItems = ()
    #: Extra keyword arguments for the scheduler factory, for plugin
    #: strategies with knobs beyond the standard four toggles.
    scheduler_options: OptionItems = ()
    #: Extra priority classes (name -> int) overlaid on the built-in
    #: tiers; workload ``priority`` options given as names resolve
    #: against the merged catalogue.
    priority_classes: OptionItems = ()
    #: Preemption planner (any name in
    #: ``repro.registry.PREEMPTION_POLICIES``).  The default ``none``
    #: keeps the paper's strictly non-preemptive scheduling:
    #: priority-disabled replays are bit-for-bit identical to the
    #: pre-policy engine across all three scheduling modes.
    preemption_policy: str = "none"
    #: Deferred pods at or above this priority consult the planner.
    preemption_priority_threshold: int = DEFAULT_PREEMPTION_THRESHOLD
    #: Two-level sharded scheduling: split the cluster into this many
    #: cells, each with its own scheduler instance, pending queue and
    #: event queue, routed by the global dispatcher.  ``None`` (the
    #: default) is the flat single-queue oracle; ``cells=1`` engages
    #: the full sharded machinery and is bit-for-bit identical to it.
    cells: Optional[int] = None
    #: Partition policy (any name in ``repro.registry.CELLS``): how
    #: nodes map onto cells.  Only consulted when ``cells`` is set.
    cell_policy: str = "balanced"
    #: Consecutive deferrals a cell may accumulate for one pod before
    #: the dispatcher spills it to the next-best feasible cell.
    cell_spillover_after: int = 2
    #: Observability exports (decision ledger JSONL, Chrome trace
    #: JSON, Prometheus metrics snapshot).  ``None`` — the default —
    #: keeps the allocation-free null observer; observed runs are
    #: signature-identical to unobserved ones across every engine.
    observe: Optional[ObserveConfig] = None

    def __post_init__(self):
        if self.observe is not None and not isinstance(
            self.observe, ObserveConfig
        ):
            raise SimulationError(
                f"observe must be an ObserveConfig: {self.observe!r}"
            )
        # Accept plain dicts for the option fields; store sorted items
        # so the config stays frozen, hashable and picklable.
        for option_field in (
            "workload_options", "scheduler_options", "priority_classes",
        ):
            value = getattr(self, option_field)
            if not isinstance(value, tuple):
                object.__setattr__(
                    self, option_field, freeze_options(value)
                )
        if not 0.0 <= self.sgx_fraction <= 1.0:
            raise SimulationError(
                f"sgx_fraction outside [0, 1]: {self.sgx_fraction}"
            )
        if self.scheduler not in SCHEDULERS:
            known = ", ".join(SCHEDULERS.names())
            raise SimulationError(
                f"unknown scheduler {self.scheduler!r}; known: {known}"
            )
        if self.workload not in WORKLOADS:
            known = ", ".join(WORKLOADS.names())
            raise SimulationError(
                f"unknown workload {self.workload!r}; known: {known}"
            )
        if self.preemption_policy not in PREEMPTION_POLICIES:
            known = ", ".join(PREEMPTION_POLICIES.names())
            raise SimulationError(
                f"unknown preemption policy {self.preemption_policy!r}; "
                f"known: {known}"
            )
        if not isinstance(
            self.preemption_priority_threshold, int
        ) or isinstance(self.preemption_priority_threshold, bool):
            raise SimulationError(
                "preemption_priority_threshold must be an int: "
                f"{self.preemption_priority_threshold!r}"
            )
        try:
            # Validates names and values; the merged catalogue itself
            # is rebuilt where it is used.
            priority_class_map(self.priority_classes)
        except PolicyError as exc:
            raise SimulationError(str(exc)) from None
        if self.malicious is not None and self.workload == "malicious":
            raise SimulationError(
                "workload='malicious' already deploys the squatters; "
                "the malicious= side deployment would duplicate their "
                "pod names — drop one of the two"
            )
        # Unconditional: a factory that cannot even accept the
        # standard knobs (a plugin with a bespoke __init__) must die
        # here, not with a bare TypeError inside a pool worker.
        _validate_factory_options(
            "scheduler",
            self.scheduler,
            SCHEDULERS.get(self.scheduler),
            {
                "use_measured": self.use_measured,
                "strict_fcfs": self.strict_fcfs,
                "preserve_sgx_nodes": self.preserve_sgx_nodes,
                "indexed": self.indexed_scheduling,
            },
            self.scheduler_options,
        )
        _validate_factory_options(
            "workload",
            self.workload,
            WORKLOADS.get(self.workload),
            {
                "sgx_fraction": self.sgx_fraction,
                "seed": self.seed,
                "scheduler_name": self.scheduler,
            },
            self.workload_options,
        )
        for positive_field in (
            "scheduler_period",
            "metrics_period",
            "max_sim_seconds",
            "epc_total_bytes",
        ):
            value = getattr(self, positive_field)
            if value <= 0:
                raise SimulationError(
                    f"{positive_field} must be positive: {value}"
                )
        if self.requeue_backoff_seconds < 0:
            raise SimulationError(
                "requeue_backoff_seconds must be >= 0: "
                f"{self.requeue_backoff_seconds}"
            )
        if self.rebalance_period is not None and self.rebalance_period <= 0:
            raise SimulationError(
                f"rebalance_period must be positive: "
                f"{self.rebalance_period}"
            )
        for worker_field in ("standard_workers", "sgx_workers"):
            value = getattr(self, worker_field)
            if value is not None and value < 1:
                raise SimulationError(
                    f"{worker_field} must be >= 1: {value}"
                )
        if self.cells is not None and (
            not isinstance(self.cells, int)
            or isinstance(self.cells, bool)
            or self.cells < 1
        ):
            raise SimulationError(f"cells must be >= 1: {self.cells!r}")
        if (
            not isinstance(self.cell_spillover_after, int)
            or isinstance(self.cell_spillover_after, bool)
            or self.cell_spillover_after < 1
        ):
            raise SimulationError(
                "cell_spillover_after must be >= 1: "
                f"{self.cell_spillover_after!r}"
            )
        if self.cells is not None or self.cell_policy != "balanced":
            # Importing the cells package registers the built-in
            # policies; lazy so the flat oracle path never pays it.
            from .. import cells as _cell_builtins  # noqa: F401

            if self.cell_policy not in CELLS:
                known = ", ".join(CELLS.names())
                raise SimulationError(
                    f"unknown cell policy {self.cell_policy!r}; "
                    f"known: {known}"
                )


@dataclass(slots=True)
class ReplayResult:
    """Outcome of one replay."""

    config: ReplayConfig
    metrics: ReplayMetrics
    log: EventLog
    orchestrator: Orchestrator
    plans: List[SubmissionPlan] = field(default_factory=list)
    #: Live migrations executed by the rebalancer (0 when disabled).
    migration_count: int = 0
    #: Scheduling passes actually executed.
    passes_executed: int = 0
    #: Wake-ups proven clean and skipped (0 in periodic mode).
    passes_skipped: int = 0
    #: Pods placed by evicting victims (0 under the ``none`` policy).
    preemption_count: int = 0
    #: Victims killed (and resubmitted) by the preemption step.
    eviction_count: int = 0
    #: Aggregate deferral reasons over executed passes, keyed by
    #: :data:`repro.scheduler.base.WAIT_REASONS` — why pods waited
    #: (EPC vs memory vs CPU vs fragmentation), not just how long.
    wait_reasons: Dict[str, int] = field(default_factory=dict)
    #: Pods the dispatcher re-routed across cells (0 in the flat
    #: oracle and, by construction, in every ``cells=1`` replay).
    cell_spillovers: int = 0
    #: Where the observability exports landed (``None`` when the
    #: corresponding :class:`~repro.obs.ledger.ObserveConfig` output
    #: was not requested).  Diagnostic only — never part of
    #: result signatures.
    ledger_path: Optional[str] = None
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None


def make_scheduler(config: ReplayConfig) -> Scheduler:
    """Instantiate the strategy named by *config* via the registry.

    The standard toggles are passed to every factory; registered
    strategies that do not honour one (the kube-default baseline)
    accept and drop it.  ``scheduler_options`` rides along for plugin
    strategies with extra knobs.
    """
    try:
        factory = SCHEDULERS.get(config.scheduler)
    except RegistryError as exc:
        # Unreachable through a validated config; kept so a hand-built
        # config (or a plugin unregistered mid-run) fails identically.
        raise SimulationError(str(exc)) from exc
    return factory(
        use_measured=config.use_measured,
        strict_fcfs=config.strict_fcfs,
        preserve_sgx_nodes=config.preserve_sgx_nodes,
        indexed=config.indexed_scheduling,
        **dict(config.scheduler_options),
    )


def make_preemption_policy(config: ReplayConfig) -> PreemptionPolicy:
    """Instantiate the planner named by *config* via the registry."""
    try:
        factory = PREEMPTION_POLICIES.get(config.preemption_policy)
    except RegistryError as exc:
        # Unreachable through a validated config; see make_scheduler.
        raise SimulationError(str(exc)) from exc
    return factory()


#: Workload-option keys whose string values name a priority class.
_PRIORITY_OPTION_KEYS = ("priority", "high_priority", "low_priority")


def resolve_workload_priorities(
    options: Dict[str, object], classes: Dict[str, int]
) -> Dict[str, object]:
    """Resolve priority-class *names* in workload options to integers.

    Lets a scenario say ``workload_options={"priority":
    "latency-critical"}`` and have the catalogue (built-ins plus the
    config's ``priority_classes``) supply the value.  Unknown names
    die here, before any replay work happens.
    """
    resolved = dict(options)
    for key in _PRIORITY_OPTION_KEYS:
        value = resolved.get(key)
        if isinstance(value, str):
            try:
                resolved[key] = resolve_priority(value, classes)
            except PolicyError as exc:
                raise SimulationError(str(exc)) from None
    return resolved


class _RunningJob:
    """Progress tracking for one started pod.

    ``seq`` is the global start order; per-node registries keep their
    jobs sorted by it so iteration matches the historical flat-dict
    scan (reschedule order feeds event sequence numbers, which break
    simultaneous-event ties — order is behaviour here).  ``uses_epc``
    is resolved once at start: the spec never changes afterwards, and
    the paging-slowdown loop is too hot for two attribute hops per job
    per tick.
    """

    __slots__ = (
        "pod",
        "node_name",
        "remaining_work",
        "last_update",
        "rate",
        "finish_handle",
        "finish_action",
        "seq",
        "uses_epc",
    )

    def __init__(self, pod: Pod, node_name: str, work_seconds: float):
        self.pod = pod
        self.node_name = node_name
        self.remaining_work = work_seconds
        self.last_update = 0.0
        self.rate = 1.0
        self.finish_handle: Optional[EventHandle] = None
        #: The finish callback, built once at start — every occupancy
        #: change re-schedules it, and a fresh closure per reschedule
        #: was measurable on the replay hot path.
        self.finish_action: Optional[Callable[[], None]] = None
        self.seq = 0
        workload = pod.spec.workload
        self.uses_epc = workload is not None and workload.uses_sgx


class _Replay:
    """One replay in flight; see :func:`replay_trace`."""

    __slots__ = (
        "config", "trace", "cluster", "perf", "orchestrator",
        "scheduler", "engine", "log", "running", "_node_jobs",
        "_job_seq", "_sgx_node_names", "unsubmitted", "plans",
        "rebalancer", "queue_series", "migration_count",
        "passes_executed", "passes_skipped", "preemption_count",
        "eviction_count", "wait_reasons", "spillover_count", "obs",
    )

    def __init__(self, trace, config: ReplayConfig):
        # A trace spec string ("borg-synth:seed=7,jobs=500") resolves
        # through the TRACES registry, same as Scenario(trace=...).
        if isinstance(trace, str):
            trace = resolve_trace(trace)
        self.config = config
        self.trace = trace
        cluster_kwargs = dict(
            epc_total_bytes=config.epc_total_bytes,
            enforce_epc_limits=config.enforce_epc_limits,
            epc_allow_overcommit=config.epc_allow_overcommit,
        )
        if config.standard_workers is not None:
            cluster_kwargs["standard_workers"] = config.standard_workers
        if config.sgx_workers is not None:
            cluster_kwargs["sgx_workers"] = config.sgx_workers
        self.cluster = paper_cluster(**cluster_kwargs)
        self.perf = SgxPerfModel()
        self.obs = build_observer(config.observe, config)
        self.orchestrator = self._make_orchestrator()
        self.scheduler = make_scheduler(config)
        self.engine = self._make_engine()
        self.log = EventLog()
        self.running: Dict[str, _RunningJob] = {}  # pod uid -> job
        #: Per-node registries (node name -> pod uid -> job), each kept
        #: in global start order (``_RunningJob.seq``); lets the
        #: per-tick sync/reschedule loops touch only the node's own
        #: jobs instead of scanning every running job per node.
        self._node_jobs: Dict[str, Dict[str, _RunningJob]] = {}
        self._job_seq = 0
        #: SGX node names in cluster order; refreshed on node churn.
        self._sgx_node_names: List[str] = [
            n.name for n in self.cluster.sgx_nodes
        ]
        self.unsubmitted = 0

        build_plans = WORKLOADS.get(config.workload)
        self.plans = build_plans(
            self.cluster,
            trace,
            sgx_fraction=config.sgx_fraction,
            seed=config.seed,
            scheduler_name=self.scheduler.name,
            **resolve_workload_priorities(
                dict(config.workload_options),
                priority_class_map(config.priority_classes),
            ),
        )
        if config.malicious is not None:
            self.plans = (
                WORKLOADS.get("malicious")(
                    self.cluster,
                    trace,
                    scheduler_name=self.scheduler.name,
                    config=config.malicious,
                )
                + self.plans
            )
        self.rebalancer: Optional[EpcRebalancer] = None
        if config.rebalance_period is not None:
            self.rebalancer = EpcRebalancer(self.orchestrator)
        self.queue_series: List[QueueSample] = []
        self.migration_count = 0
        self.passes_executed = 0
        self.passes_skipped = 0
        self.preemption_count = 0
        self.eviction_count = 0
        self.spillover_count = 0
        #: Aggregate deferral reasons over every executed pass, keyed
        #: by :data:`repro.scheduler.base.WAIT_REASONS`.
        self.wait_reasons: Dict[str, int] = {}

    # -- construction hooks (the sharded runner overrides these) ----------

    def _make_orchestrator(self) -> Orchestrator:
        """Build the control plane; runs after the cluster exists."""
        config = self.config
        return Orchestrator(
            self.cluster,
            perf_model=self.perf,
            use_state_cache=config.use_state_cache,
            requeue_backoff_seconds=config.requeue_backoff_seconds,
            preemption_policy=make_preemption_policy(config),
            preemption_priority_threshold=(
                config.preemption_priority_threshold
            ),
            observer=self.obs,
        )

    def _make_engine(self) -> SimulationEngine:
        """Build the event loop; runs after the orchestrator exists."""
        return SimulationEngine()

    # -- activity tracking -------------------------------------------------

    def _active(self) -> bool:
        if self.unsubmitted > 0 or self.running:
            return True
        return any(
            not pod.phase.is_terminal for pod in self.orchestrator.all_pods
        )

    # -- event handlers ------------------------------------------------------

    def _submit(self, plan: SubmissionPlan) -> None:
        now = self.engine.now
        self.unsubmitted -= 1
        self.orchestrator.submit(plan.spec, now)
        self.log.record(now, EventKind.SUBMITTED, pod_name=plan.spec.name)

    def _metrics_tick(self) -> None:
        now = self.engine.now
        self.orchestrator.collect_metrics(now)
        self.log.record(now, EventKind.METRICS_COLLECTED)
        if self._active():
            self.engine.schedule_in(
                self.config.metrics_period, self._metrics_tick
            )

    def _sample_queue(self, now: float) -> None:
        """Record the pending-queue state (Fig. 7's series), per tick."""
        queue = self.orchestrator.queue
        self.queue_series.append(
            QueueSample(
                time=now,
                queued_pods=len(queue),
                pending_epc_pages=queue.total_requested_epc_pages(),
                pending_memory_bytes=queue.total_requested_memory_bytes(),
            )
        )

    def _pass_skippable(self, now: float) -> bool:
        """Whether a pass at *now* would provably repeat the last one.

        Three facts make a wake-up clean: (1) the visible queue is
        empty — nothing to place, events can only matter to future
        pods, which arrive with events of their own; (2) no cluster
        event is ready at *now*; (3) the measured cluster state is
        fingerprint-identical to the previous pass, so the same pending
        pods against the same views would defer the same way.
        """
        orchestrator = self.orchestrator
        if orchestrator.queue.ready_count(now) == 0:
            orchestrator.trigger.discard_ready(now)
            return True
        if orchestrator.trigger.has_work(now):
            return False
        return orchestrator.state_service.state_unchanged(now)

    def _scheduler_tick(self) -> None:
        now = self.engine.now
        # Bank progress at current rates before occupancy changes.
        self._sync_all_nodes(now)
        if self.config.event_driven and self._pass_skippable(now):
            # Skip the pass, not the wake-up: progress banking and
            # finish-event refresh stay on the periodic cadence so the
            # float arithmetic (and hence every timestamp) matches the
            # periodic oracle bit-for-bit.  The queue is sampled too —
            # a skipped pass leaves it untouched, so the sample equals
            # the one the oracle records and Fig. 7's series match.
            self.passes_skipped += 1
            self.log.record(now, EventKind.PASS_SKIPPED)
            ledger = self.obs.ledger
            if ledger.enabled:
                ledger.emit(now, "pass_skipped")
            self._reschedule_all_nodes(now)
            self._sample_queue(now)
            if self._active():
                self.engine.schedule_in(
                    self.config.scheduler_period, self._scheduler_tick
                )
            return
        self._execute_pass(now)
        # Admissions changed EPC occupancy; refresh running-job rates.
        self._reschedule_all_nodes(now)
        self._sample_queue(now)
        if self._active():
            self.engine.schedule_in(
                self.config.scheduler_period, self._scheduler_tick
            )

    def _execute_pass(self, now: float) -> None:
        """One scheduling pass over the whole queue (the flat oracle).

        The sharded runner overrides this with one pass per cell; both
        paths feed every pass outcome through
        :meth:`_consume_pass_result`, so the bookkeeping (logging,
        start events, counters) is shared code.
        """
        spans = self.obs.spans
        span_start = spans.begin()
        result = self.orchestrator.scheduling_pass(self.scheduler, now)
        spans.end(span_start, "pass", now)
        self._consume_pass_result(result, now)

    def _schedule_start(self, pod: Pod, startup_seconds: float) -> None:
        """Arm a launched pod's start event (cell-routed when sharded)."""
        self.engine.schedule_in(
            startup_seconds, lambda p=pod: self._start(p)
        )

    def _consume_pass_result(self, result, now: float) -> None:
        """Fold one pass outcome into the replay's log and counters."""
        self.passes_executed += 1
        self.log.record(now, EventKind.SCHEDULING_PASS)
        for pod, startup_seconds in result.launched:
            self.log.record(
                now, EventKind.BOUND, pod_name=pod.name,
                node_name=pod.node_name,
            )
            self._schedule_start(pod, startup_seconds)
        for pod in result.killed:
            self.log.record(
                now,
                EventKind.LAUNCH_KILLED,
                pod_name=pod.name,
                node_name=pod.node_name,
                detail=pod.failure_reason or "",
            )
        for pod in result.rejected:
            self.log.record(
                now,
                EventKind.REJECTED,
                pod_name=pod.name,
                detail=pod.failure_reason or "",
            )
        for pod in result.requeued:
            self.log.record(now, EventKind.REQUEUED, pod_name=pod.name)
        for victim, replacement in result.evicted:
            # The preemption step killed the victim mid-pass; purge its
            # running-job entry (and dangling finish event) exactly
            # like a failed migration, keyed by uid because the
            # replacement reuses the spec name.
            job = self.running.get(victim.uid)
            if job is not None:
                if job.finish_handle is not None:
                    job.finish_handle.cancel()
                self._drop_job(job)
            self.log.record(
                now,
                EventKind.EVICTED,
                pod_name=victim.name,
                node_name=victim.node_name,
                detail=victim.failure_reason or "",
            )
            self.log.record(
                now,
                EventKind.SUBMITTED,
                pod_name=replacement.name,
                detail="resubmitted after eviction",
            )
        self.eviction_count += len(result.evicted)
        self.preemption_count += result.preemptions
        for reason, count in result.wait_reasons.items():
            self.wait_reasons[reason] = (
                self.wait_reasons.get(reason, 0) + count
            )

    def _start(self, pod: Pod) -> None:
        now = self.engine.now
        if pod.phase.is_terminal:
            return  # killed between bind and start
        self.orchestrator.start_pod(pod, now)
        assert pod.spec.workload is not None and pod.node_name is not None
        # Bank progress of already-running jobs on this node before the
        # reschedule below recomputes their finish events.
        self._sync_node(pod.node_name, now)
        job = _RunningJob(
            pod, pod.node_name, pod.spec.workload.duration_seconds
        )
        job.last_update = now
        job.finish_action = lambda: self._finish(job)
        job.seq = self._job_seq
        self._job_seq += 1
        self.running[pod.uid] = job
        self._node_jobs.setdefault(pod.node_name, {})[pod.uid] = job
        self.log.record(
            now, EventKind.STARTED, pod_name=pod.name, node_name=pod.node_name
        )
        self._reschedule_node(pod.node_name, now)

    def _rebalance_tick(self) -> None:
        now = self.engine.now
        assert self.rebalancer is not None
        # Bank progress before occupancy moves between nodes.
        self._sync_all_nodes(now)
        spans = self.obs.spans
        span_start = spans.begin()
        report = self.rebalancer.rebalance(now)
        spans.end(span_start, "rebalance", now)
        for action in report.actions:
            self.migration_count += 1
            job = next(
                (
                    j
                    for j in self.running.values()
                    if j.pod.name == action.pod_name
                ),
                None,
            )
            if job is not None:
                self._move_job(job, action.target_node)
                # Downtime pauses the workload: account it as extra
                # work at the current rate.
                job.remaining_work += action.downtime_seconds * job.rate
            self.log.record(
                now,
                EventKind.SLOWDOWN_CHANGED,
                pod_name=action.pod_name,
                node_name=action.target_node,
                detail=f"migrated from {action.source_node}",
            )
        for failure in report.failed:
            # The source-side pod died at checkpoint and its spec was
            # resubmitted by the rebalancer; purge the dead pod's job
            # entry (and its dangling finish event) so the replay does
            # not try to complete a pod that no longer exists.  Keyed
            # by uid — the replacement reuses the spec name.
            job = self.running.get(failure.pod_uid)
            if job is not None:
                if job.finish_handle is not None:
                    job.finish_handle.cancel()
                self._drop_job(job)
            self.log.record(
                now,
                EventKind.MIGRATION_FAILED,
                pod_name=failure.pod_name,
                node_name=failure.target_node,
                detail=f"restore on {failure.target_node} failed",
            )
            self.log.record(
                now,
                EventKind.SUBMITTED,
                pod_name=failure.replacement.name,
                detail=(
                    f"resubmitted after failed migration from "
                    f"{failure.source_node}"
                ),
            )
        self._reschedule_all_nodes(now)
        if self._active():
            assert self.config.rebalance_period is not None
            self.engine.schedule_in(
                self.config.rebalance_period, self._rebalance_tick
            )

    def _crash_node(self, node_name: str) -> None:
        now = self.engine.now
        # Bank progress everywhere; the crashed node's jobs are lost.
        self._sync_all_nodes(now)
        for job in self._jobs_on(node_name):
            if job.finish_handle is not None:
                job.finish_handle.cancel()
            self._drop_job(job)
        replacements = self.orchestrator.remove_node(node_name, now)
        self._sgx_node_names = [n.name for n in self.cluster.sgx_nodes]
        for pod in replacements:
            self.log.record(
                now,
                EventKind.SUBMITTED,
                pod_name=pod.name,
                detail=f"resubmitted after {node_name} crash",
            )
        self.log.record(
            now,
            EventKind.SLOWDOWN_CHANGED,
            node_name=node_name,
            detail="node crashed",
        )
        self._reschedule_all_nodes(now)

    def _finish(self, job: _RunningJob) -> None:
        now = self.engine.now
        self._sync_node(job.node_name, now)
        if job.remaining_work > 1e-6:
            # Slowed down since this event was scheduled; reschedule.
            self._reschedule_node(job.node_name, now)
            return
        self._drop_job(job)
        self.orchestrator.complete_pod(job.pod, now)
        self.log.record(
            now,
            EventKind.COMPLETED,
            pod_name=job.pod.name,
            node_name=job.node_name,
        )
        # Completion may end an over-commit episode; refresh the node.
        self._reschedule_node(job.node_name, now)

    # -- paging-slowdown bookkeeping ----------------------------------------

    def _node_slowdown(self, node_name: str, uses_epc: bool) -> float:
        if not uses_epc:
            return 1.0
        kubelet = self.orchestrator.kubelets[node_name]
        return self.perf.paging_slowdown(kubelet.epc_overcommit_ratio())

    def _jobs_on(self, node_name: str) -> List[_RunningJob]:
        jobs = self._node_jobs.get(node_name)
        return list(jobs.values()) if jobs else []

    def _drop_job(self, job: _RunningJob) -> None:
        """Remove a job from both registries (finish/evict/crash/loss)."""
        del self.running[job.pod.uid]
        node_jobs = self._node_jobs.get(job.node_name)
        if node_jobs is not None:
            node_jobs.pop(job.pod.uid, None)

    def _move_job(self, job: _RunningJob, target_node: str) -> None:
        """Re-home a migrated job, preserving start-order iteration.

        The target registry is rebuilt sorted by ``seq`` because a
        plain insert would append the migrant at the end, whereas the
        flat-scan order this registry replaces keeps it at its original
        start position.  Migrations are rare; the sort is cheap.
        """
        uid = job.pod.uid
        source_jobs = self._node_jobs.get(job.node_name)
        if source_jobs is not None:
            source_jobs.pop(uid, None)
        job.node_name = target_node
        target_jobs = self._node_jobs.setdefault(target_node, {})
        target_jobs[uid] = job
        if len(target_jobs) > 1:
            ordered = sorted(target_jobs.values(), key=lambda j: j.seq)
            target_jobs.clear()
            for entry in ordered:
                target_jobs[entry.pod.uid] = entry

    def _sync_node(self, node_name: str, now: float) -> None:
        """Bank work done at the rates in effect since the last sync."""
        jobs = self._node_jobs.get(node_name)
        if not jobs:
            return
        for job in jobs.values():
            elapsed = now - job.last_update
            # Engine time is monotone, so elapsed == 0 makes both the
            # work update and the timestamp write no-ops: skip them.
            if elapsed > 0.0:
                work = job.remaining_work - elapsed * job.rate
                job.remaining_work = work if work > 0.0 else 0.0
                job.last_update = now

    def _reschedule_node(self, node_name: str, now: float) -> None:
        """Recompute rates and finish events after an occupancy change."""
        jobs = self._node_jobs.get(node_name)
        if not jobs:
            return
        # The paging slowdown is a pure function of the node's EPC
        # occupancy, constant across this loop: compute it once for
        # the node (lazily — nodes with no enclave jobs never look).
        epc_slowdown = -1.0
        reschedule_in = self.engine.reschedule_in
        for job in jobs.values():
            if job.uses_epc:
                if epc_slowdown < 0.0:
                    epc_slowdown = self._node_slowdown(node_name, True)
                slowdown = epc_slowdown
            else:
                slowdown = 1.0
            job.rate = 1.0 / slowdown
            job.finish_handle = reschedule_in(
                job.finish_handle,
                job.remaining_work * slowdown,
                job.finish_action,
            )

    def _sync_all_nodes(self, now: float) -> None:
        for node_name in self._sgx_node_names:
            self._sync_node(node_name, now)

    def _reschedule_all_nodes(self, now: float) -> None:
        for node_name in self._sgx_node_names:
            self._reschedule_node(node_name, now)

    # -- main ---------------------------------------------------------------

    def run(self) -> ReplayResult:
        self.unsubmitted = len(self.plans)
        for plan in self.plans:
            self.engine.schedule_at(
                plan.submit_time, lambda p=plan: self._submit(p)
            )
        self.engine.schedule_at(0.0, self._metrics_tick)
        self.engine.schedule_at(
            self.config.scheduler_period / 2.0, self._scheduler_tick
        )
        if self.rebalancer is not None:
            assert self.config.rebalance_period is not None
            self.engine.schedule_at(
                self.config.rebalance_period, self._rebalance_tick
            )
        for crash_time, node_name in self.config.node_failures:
            self.engine.schedule_at(
                crash_time, lambda n=node_name: self._crash_node(n)
            )
        spans = self.obs.spans
        span_start = spans.begin()
        self.engine.run(until=self.config.max_sim_seconds)
        spans.end(span_start, "replay", self.engine.now)
        if self._active():
            self.obs.ledger.close()
            raise SimulationError(
                "replay did not converge within "
                f"{self.config.max_sim_seconds} simulated seconds "
                f"({len(self.orchestrator.queue)} pods still queued)"
            )
        metrics = ReplayMetrics(
            pods=list(self.orchestrator.all_pods),
            queue_series=self.queue_series,
            makespan_seconds=max(
                (
                    pod.finished_at
                    for pod in self.orchestrator.all_pods
                    if pod.finished_at is not None
                ),
                default=0.0,
            ),
        )
        result = ReplayResult(
            config=self.config,
            metrics=metrics,
            log=self.log,
            orchestrator=self.orchestrator,
            plans=self.plans,
            migration_count=self.migration_count,
            passes_executed=self.passes_executed,
            passes_skipped=self.passes_skipped,
            preemption_count=self.preemption_count,
            eviction_count=self.eviction_count,
            wait_reasons=dict(self.wait_reasons),
            cell_spillovers=self.spillover_count,
        )
        self._finish_observation(result)
        return result

    def _finish_observation(self, result: ReplayResult) -> None:
        """Seal the run's observability exports onto *result*.

        The ``run_end`` ledger record summarises the whole run (its
        payload comes from the same counters the result carries, so
        ledger and result can be cross-checked); the metrics registry
        is populated deterministically from converged state — counters
        and gauges derive from sim-time quantities only, so snapshots
        are byte-identical across repeat runs of one scenario.
        """
        obs = self.obs
        if not obs.enabled:
            return
        now = self.engine.now
        ledger = obs.ledger
        if ledger.enabled:
            ledger.emit(
                now, "run_end",
                makespan_s=result.metrics.makespan_seconds,
                passes=result.passes_executed,
                skipped=result.passes_skipped,
                preemptions=result.preemption_count,
                evictions=result.eviction_count,
                migrations=result.migration_count,
                spillovers=result.cell_spillovers,
            )
            ledger.close()
            result.ledger_path = ledger.path
        metrics_reg = obs.metrics
        if metrics_reg.enabled:
            reg = metrics_reg
            reg.counter(
                "repro_passes_total", result.passes_executed,
                outcome="executed",
            )
            reg.counter(
                "repro_passes_total", result.passes_skipped,
                outcome="skipped",
            )
            reg.counter("repro_preemptions_total", result.preemption_count)
            reg.counter("repro_evictions_total", result.eviction_count)
            reg.counter("repro_migrations_total", result.migration_count)
            reg.counter("repro_spillovers_total", result.cell_spillovers)
            for reason in sorted(result.wait_reasons):
                reg.counter(
                    "repro_wait_reasons_total",
                    result.wait_reasons[reason],
                    reason=reason,
                )
            for kind in sorted(ledger.counts):
                reg.counter(
                    "repro_ledger_events_total",
                    ledger.counts[kind],
                    kind=kind,
                )
            reg.gauge(
                "repro_makespan_seconds", result.metrics.makespan_seconds
            )
            phases: Dict[str, int] = {}
            for pod in result.metrics.pods:
                phases[pod.phase.value] = phases.get(pod.phase.value, 0) + 1
                if pod.bound_at is not None:
                    reg.observe(
                        "repro_pod_wait_seconds",
                        pod.bound_at - pod.submitted_at,
                    )
            for phase in sorted(phases):
                reg.gauge("repro_pods", phases[phase], phase=phase)
            assert obs.config is not None
            result.metrics_path = reg.write(obs.config.metrics_path)
        if obs.spans.enabled:
            assert obs.config is not None
            result.trace_path = obs.spans.write(obs.config.trace_path)


def run_replay(trace, config: ReplayConfig) -> ReplayResult:
    """The replay engine proper; :class:`repro.api.Scenario` drives it.

    *trace* is a :class:`Trace`, a trace spec string resolved through
    :data:`repro.registry.TRACES`, or ``None`` for workloads that
    never read it.  Identical to :func:`replay_trace` minus the
    deprecation warning — the scenario layer is the supported caller.

    ``config.cells`` forks to the two-level sharded runner
    (:class:`repro.cells.runner.CellReplay`); ``cells=1`` runs the
    full sharded machinery and is bit-for-bit the flat oracle.
    """
    if config.cells is not None:
        from ..cells.runner import CellReplay

        return CellReplay(trace, config).run()
    return _Replay(trace, config).run()


def replay_trace(trace, config: ReplayConfig) -> ReplayResult:
    """Replay *trace* under *config*; fully deterministic per seed.

    .. deprecated::
        Thin shim over the same engine :class:`repro.api.Scenario`
        drives; prefer ``Scenario(...).run()``, which also owns the
        trace source and returns the structured
        :class:`repro.api.RunResult`.
    """
    warnings.warn(
        "replay_trace/ReplayConfig are deprecated; build a "
        "repro.api.Scenario and call .run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_replay(trace, config)
