"""Deterministic discrete-event engine.

A minimal, classic design: a priority queue of (time, sequence, action)
entries, a monotonically advancing clock and cancellable handles.  Ties
break by scheduling order (the sequence number), which — together with
seeded randomness everywhere else — makes whole experiments reproducible
bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from ..errors import SimulationError

Action = Callable[[], None]


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "action", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Action,
        engine: Optional["SimulationEngine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.action: Optional[Action] = action
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        already-fired event is a no-op."""
        if self.cancelled or self.action is None:
            return
        self.cancelled = True
        self.action = None
        if self._engine is not None:
            self._engine._note_cancel()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimulationEngine:
    """Event loop with a simulated clock."""

    #: Compact the heap once at least this many cancelled handles
    #: accumulate *and* they make up at least half the queue; keeps long
    #: replays from retaining dead EventHandles indefinitely.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._fired = 0
        self._pending = 0  # live (non-cancelled, unfired) events
        self._cancelled = 0  # cancelled handles still sitting in the heap

    @property
    def now(self) -> float:
        """The current simulated time, seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Events scheduled and not yet fired or cancelled.  O(1)."""
        return self._pending

    @property
    def fired_events(self) -> int:
        """Events executed so far."""
        return self._fired

    def _note_cancel(self) -> None:
        """Bookkeeping for one handle transitioning to cancelled."""
        self._pending -= 1
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._queue)
        ):
            self._queue = [h for h in self._queue if not h.cancelled]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Schedule *action* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self._now}"
            )
        handle = EventHandle(time, next(self._seq), action, engine=self)
        heapq.heappush(self._queue, handle)
        self._pending += 1
        return handle

    def schedule_in(self, delay: float, action: Action) -> EventHandle:
        """Schedule *action* after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, action)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run events in order until the queue drains or *until* passes.

        Returns the final simulated time.  ``max_events`` guards against
        runaway self-rescheduling loops.
        """
        fired_this_run = 0
        while self._queue:
            handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                self._cancelled -= 1
                continue
            if until is not None and handle.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = handle.time
            action = handle.action
            handle.action = None
            self._pending -= 1
            self._fired += 1
            fired_this_run += 1
            if fired_this_run > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway loop?"
                )
            if action is not None:
                action()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one (non-cancelled) event; ``False`` if drained."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self._now = handle.time
            action = handle.action
            handle.action = None
            self._pending -= 1
            self._fired += 1
            if action is not None:
                action()
            return True
        return False
