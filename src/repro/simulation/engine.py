"""Deterministic discrete-event engine.

A minimal, classic design: a priority queue of (time, sequence, action)
entries, a monotonically advancing clock and cancellable handles.  Ties
break by scheduling order (the sequence number), which — together with
seeded randomness everywhere else — makes whole experiments reproducible
bit-for-bit.

The heap stores bare ``(time, seq, handle)`` tuples rather than the
handles themselves: tuple comparison happens in C, so the hot
push/pop path never re-enters the interpreter for ordering.  Handles
exist only to let callers cancel events; ordering is carried entirely
by the tuple.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Action = Callable[[], None]


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "action", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Action,
        engine: Optional["SimulationEngine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.action: Optional[Action] = action
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        already-fired event is a no-op."""
        if self.cancelled or self.action is None:
            return
        self.cancelled = True
        self.action = None
        engine = self._engine
        if engine is not None:
            # Inlined bookkeeping: this is the hottest cancel path
            # (every reschedule cancels the stale finish event).
            engine._pending -= 1
            engine._cancelled += 1
            queue = engine._queue
            if (
                len(queue) >= engine.COMPACT_MIN_QUEUE
                and engine._cancelled * 2 >= len(queue)
            ):
                engine._compact()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class SimulationEngine:
    """Event loop with a simulated clock."""

    __slots__ = (
        "_now", "_queue", "_next_seq", "_fired", "_pending",
        "_cancelled",
    )

    #: Compact the heap once cancelled handles make up at least half of
    #: it.  The threshold is proportional to the heap size (amortised
    #: O(1) work per cancel, bounded memory overhead of 2x live events)
    #: rather than a fixed count, which on small queues never triggered
    #: and on huge queues compacted too eagerly.  Queues smaller than
    #: ``COMPACT_MIN_QUEUE`` are left alone: compaction is pure
    #: overhead when the whole heap fits in a cache line or two.
    COMPACT_MIN_QUEUE = 32

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._next_seq = 0
        self._fired = 0
        self._pending = 0  # live (non-cancelled, unfired) events
        self._cancelled = 0  # cancelled handles still sitting in the heap

    @property
    def now(self) -> float:
        """The current simulated time, seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Events scheduled and not yet fired or cancelled.  O(1)."""
        return self._pending

    @property
    def fired_events(self) -> int:
        """Events executed so far."""
        return self._fired

    def _note_cancel(self) -> None:
        """Bookkeeping for one handle transitioning to cancelled."""
        self._pending -= 1
        self._cancelled += 1
        queue = self._queue
        if (
            len(queue) >= self.COMPACT_MIN_QUEUE
            and self._cancelled * 2 >= len(queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        self._queue = [e for e in self._queue if not e[2].cancelled]
        heapify(self._queue)
        self._cancelled = 0

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Schedule *action* at absolute simulated *time*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self._now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = EventHandle(time, seq, action, self)
        heappush(self._queue, (time, seq, handle))
        self._pending += 1
        return handle

    def schedule_in(self, delay: float, action: Action) -> EventHandle:
        """Schedule *action* after *delay* seconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        # Inlined schedule_at: a non-negative delay can never land in
        # the past, so the guard there is redundant on this path.
        time = self._now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = EventHandle(time, seq, action, self)
        heappush(self._queue, (time, seq, handle))
        self._pending += 1
        return handle

    def reschedule_in(
        self,
        handle: Optional[EventHandle],
        delay: float,
        action: Action,
    ) -> EventHandle:
        """Cancel *handle* (when live) and schedule *action* after *delay*.

        Fuses ``handle.cancel()`` + :meth:`schedule_in` into one call —
        the replay refreshes every running job's finish event on each
        occupancy change, making this the engine's hottest entry point.
        Timestamps, sequence numbers and compaction behaviour are
        exactly those of the unfused pair; a live cancel nets out
        against the new event in the pending count.
        """
        if (
            handle is not None
            and not handle.cancelled
            and handle.action is not None
        ):
            handle.cancelled = True
            handle.action = None
            self._cancelled += 1
            size = len(self._queue)
            if size >= self.COMPACT_MIN_QUEUE and self._cancelled * 2 >= size:
                self._compact()
        else:
            self._pending += 1
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        time = self._now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        new = EventHandle(time, seq, action, self)
        heappush(self._queue, (time, seq, new))
        return new

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run events in order until the queue drains or *until* passes.

        Returns the final simulated time.  ``max_events`` guards against
        runaway self-rescheduling loops.
        """
        queue = self._queue
        pop = heappop
        fired_this_run = 0
        while queue:
            entry = queue[0]
            handle = entry[2]
            if handle.cancelled:
                pop(queue)
                self._cancelled -= 1
                continue
            if until is not None and entry[0] > until:
                self._now = until
                return self._now
            pop(queue)
            self._now = entry[0]
            action = handle.action
            handle.action = None
            self._pending -= 1
            self._fired += 1
            fired_this_run += 1
            if fired_this_run > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway loop?"
                )
            if action is not None:
                action()
            # Compaction rebinds self._queue; stay on the live heap.
            queue = self._queue
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one (non-cancelled) event; ``False`` if drained."""
        while self._queue:
            entry = heappop(self._queue)
            handle = entry[2]
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self._now = entry[0]
            action = handle.action
            handle.action = None
            self._pending -= 1
            self._fired += 1
            if action is not None:
                action()
            return True
        return False
