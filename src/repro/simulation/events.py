"""Typed event records for audit and testing.

The engine itself runs opaque callbacks; the runner additionally logs
what *happened* as typed records so tests can assert ordering invariants
("no pod starts before it was bound", "metrics precede the pass that
used them") and experiments can be replayed for debugging.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


class EventKind(enum.Enum):
    """What happened at a point in simulated time."""

    SUBMITTED = "submitted"
    METRICS_COLLECTED = "metrics-collected"
    SCHEDULING_PASS = "scheduling-pass"
    #: Event-driven replay proved the pass would repeat the previous
    #: outcome and skipped it (never logged in periodic mode).
    PASS_SKIPPED = "pass-skipped"
    BOUND = "bound"
    LAUNCH_KILLED = "launch-killed"
    REJECTED = "rejected"
    REQUEUED = "requeued"
    #: The preemption step killed this pod to place a higher-priority
    #: one; its spec was resubmitted with the original submission time.
    EVICTED = "evicted"
    STARTED = "started"
    COMPLETED = "completed"
    #: A rebalancer migration failed at restore; the pod's spec was
    #: resubmitted and its runner-side job entry purged.
    MIGRATION_FAILED = "migration-failed"
    SLOWDOWN_CHANGED = "slowdown-changed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class LoggedEvent:
    """One audit record."""

    time: float
    kind: EventKind
    pod_name: Optional[str] = None
    node_name: Optional[str] = None
    detail: str = ""


@dataclass
class EventLog:
    """Append-only audit log of a replay."""

    events: List[LoggedEvent] = field(default_factory=list)

    def record(
        self,
        time: float,
        kind: EventKind,
        pod_name: Optional[str] = None,
        node_name: Optional[str] = None,
        detail: str = "",
    ) -> None:
        """Append one record (times must be non-decreasing by caller)."""
        self.events.append(
            LoggedEvent(
                time=time,
                kind=kind,
                pod_name=pod_name,
                node_name=node_name,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[LoggedEvent]:
        return iter(self.events)

    def of_kind(self, kind: EventKind) -> List[LoggedEvent]:
        """All records of one kind, in time order."""
        return [e for e in self.events if e.kind is kind]

    def for_pod(self, pod_name: str) -> List[LoggedEvent]:
        """All records touching one pod, in time order."""
        return [e for e in self.events if e.pod_name == pod_name]

    def counts(self) -> Dict[EventKind, int]:
        """Record counts per kind."""
        tally: Dict[EventKind, int] = {}
        for event in self.events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return tally
