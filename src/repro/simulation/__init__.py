"""Discrete-event simulation of the cluster and control plane.

The paper's Fig. 7 experiment is itself a simulation that "uses the exact
same algorithms and behaves in the same way as our concrete scheduler";
this package generalises that: the *entire* evaluation replays through
:func:`repro.simulation.runner.replay_trace`, driving the real
orchestrator, schedulers and SGX substrate with a deterministic event
loop instead of wall-clock daemons.
"""

from .engine import EventHandle, SimulationEngine
from .events import EventKind, EventLog, LoggedEvent
from .metrics import QueueSample, ReplayMetrics
from .runner import ReplayConfig, ReplayResult, make_scheduler, replay_trace

__all__ = [
    "EventHandle",
    "EventKind",
    "EventLog",
    "LoggedEvent",
    "QueueSample",
    "ReplayConfig",
    "ReplayMetrics",
    "ReplayResult",
    "SimulationEngine",
    "make_scheduler",
    "replay_trace",
]
