"""Replay metrics: the quantities the paper's figures report.

Collected during a replay and summarised afterwards:

* waiting times (Figs. 8, 9, 11) — submission to start;
* turnaround times (Fig. 10) — submission to termination;
* the pending-queue series (Fig. 7) — total EPC/memory requested by
  queued pods over time;
* makespan — batch completion time, Fig. 7's headline per EPC size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..orchestrator.api import PodPhase
from ..orchestrator.pod import Pod
from ..trace.stats import confidence_interval_95, mean
from ..units import pages_to_mib


@dataclass(frozen=True)
class QueueSample:
    """Pending-queue state at one scheduling pass."""

    time: float
    queued_pods: int
    pending_epc_pages: int
    pending_memory_bytes: int

    @property
    def pending_epc_mib(self) -> float:
        """Fig. 7's y-axis: MiB of EPC requested by pending pods."""
        return pages_to_mib(self.pending_epc_pages)


@dataclass
class ReplayMetrics:
    """Everything measured during one replay."""

    pods: List[Pod] = field(default_factory=list)
    queue_series: List[QueueSample] = field(default_factory=list)
    makespan_seconds: float = 0.0

    # -- selections --------------------------------------------------------

    def pods_in_phase(self, phase: PodPhase) -> List[Pod]:
        """Pods that ended the replay in *phase*."""
        return [p for p in self.pods if p.phase is phase]

    @property
    def succeeded(self) -> List[Pod]:
        """Pods that ran to completion."""
        return self.pods_in_phase(PodPhase.SUCCEEDED)

    @property
    def failed(self) -> List[Pod]:
        """Pods killed or rejected."""
        return self.pods_in_phase(PodPhase.FAILED)

    def sgx_pods(self) -> List[Pod]:
        """Pods that required SGX placement."""
        return [p for p in self.pods if p.requires_sgx]

    def standard_pods(self) -> List[Pod]:
        """Pods placeable anywhere."""
        return [p for p in self.pods if not p.requires_sgx]

    # -- the paper's metrics --------------------------------------------------

    def waiting_times(
        self, pods: Optional[Sequence[Pod]] = None
    ) -> List[float]:
        """Waiting times of started pods (Figs. 8, 9, 11)."""
        pool = self.succeeded if pods is None else pods
        return [
            p.waiting_seconds
            for p in pool
            if p.waiting_seconds is not None
        ]

    def turnaround_times(
        self, pods: Optional[Sequence[Pod]] = None
    ) -> List[float]:
        """Turnaround times of completed pods (Fig. 10)."""
        pool = self.succeeded if pods is None else pods
        return [
            p.turnaround_seconds
            for p in pool
            if p.turnaround_seconds is not None
        ]

    def total_turnaround_hours(self) -> float:
        """Sum of turnarounds in hours — Fig. 10's bars."""
        return sum(self.turnaround_times()) / 3600.0

    def mean_waiting_seconds(self) -> float:
        """Average waiting time over completed pods."""
        times = self.waiting_times()
        return mean(times) if times else 0.0

    def max_waiting_seconds(self) -> float:
        """The longest wait (Fig. 8 quotes 4696 s for the all-SGX run)."""
        times = self.waiting_times()
        return max(times) if times else 0.0

    def waiting_by_memory_bin(
        self, bin_count: int = 6, sgx: bool = False
    ) -> List[Dict[str, float]]:
        """Fig. 9's series: average wait per requested-memory bin.

        Bins the *declared* request (EPC pages for SGX pods, bytes for
        standard pods) into *bin_count* equal-width bins and reports the
        mean waiting time and its 95 % confidence half-width per bin.
        """
        pool = [
            p
            for p in self.succeeded
            if p.requires_sgx == sgx and p.waiting_seconds is not None
        ]
        if not pool:
            return []

        def request_of(pod: Pod) -> float:
            requests = pod.spec.resources.requests
            return float(
                requests.epc_pages if sgx else requests.memory_bytes
            )

        largest = max(request_of(p) for p in pool)
        if largest == 0:
            return []
        width = largest / bin_count
        bins: List[List[float]] = [[] for _ in range(bin_count)]
        for pod in pool:
            index = min(int(request_of(pod) / width), bin_count - 1)
            bins[index].append(pod.waiting_seconds)  # type: ignore[arg-type]
        rows = []
        for index, waits in enumerate(bins):
            if not waits:
                continue
            avg, half = confidence_interval_95(waits)
            rows.append(
                {
                    "bin_low": index * width,
                    "bin_high": (index + 1) * width,
                    "mean_wait": avg,
                    "ci95": half,
                    "count": float(len(waits)),
                }
            )
        return rows
