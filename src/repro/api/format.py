"""The one output formatter behind tables, bench JSON and the CLI.

Every consumer of experiment results — the figure drivers' tables, the
benchmark harness' JSON reports and the ``repro run``/``repro sweep``
CLI — renders the same row dictionaries through the helpers here, so a
new metric added to :meth:`repro.api.RunResult.to_row` shows up
everywhere at once.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Mapping, Sequence

#: Schema tags stamped into JSON payloads so downstream tooling (the
#: bench regression gate, notebooks) can detect the shape.
RUN_SCHEMA = "repro.run/1"
SWEEP_SCHEMA = "repro.sweep/1"


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as a fixed-width text table (the bench output format)."""
    materialized: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        materialized.append(
            [
                f"{cell:.2f}" if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(line[col]) for line in materialized)
        for col in range(len(headers))
    ]
    lines = []
    for index, line in enumerate(materialized):
        lines.append(
            "  ".join(
                cell.rjust(width)
                for cell, width in zip(line, widths, strict=True)
            )
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def rows_to_table(rows: Sequence[Mapping[str, object]]) -> str:
    """A text table from row dictionaries (first row fixes the columns)."""
    if not rows:
        return "(no results)"
    headers = list(rows[0].keys())
    return format_table(
        headers, [[row.get(h, "") for h in headers] for row in rows]
    )


def rows_to_json(
    rows: Sequence[Mapping[str, object]],
    schema: str = SWEEP_SCHEMA,
    indent: int = 2,
    **extra: object,
) -> str:
    """The structured JSON document wrapping *rows*.

    ``extra`` lands next to ``schema``/``count`` — the bench harness
    uses it for sweep-level facts such as equivalence flags.
    """
    payload = {"schema": schema, **extra, "count": len(rows)}
    payload["results"] = [dict(row) for row in rows]
    return json.dumps(payload, indent=indent, sort_keys=False)
