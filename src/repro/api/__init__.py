"""The scenario layer: the one way to run experiments.

Three pieces compose:

* **registries** (:mod:`repro.registry`, re-exported here) — scheduling
  strategies and workload materialisers plug in by name with a
  decorator and become addressable from scenarios and the CLI;
* :class:`Scenario` — a validated, immutable description of one
  experiment with ``.run() -> RunResult``;
* :class:`Sweep` — a declared grid/list of scenario variations,
  executed serially or over a ``multiprocessing`` pool with results
  proven bit-for-bit identical to serial execution.

Quickstart::

    from repro.api import Scenario, Sweep

    # one run
    print(Scenario(scheduler="spread", sgx_fraction=0.5).run().to_table())

    # a parallel sweep over a grid, dumped as JSON
    sweep = Sweep(
        Scenario(trace_jobs=200),
        grid={"scheduler": ("binpack", "spread"),
              "sgx_fraction": (0.0, 0.5, 1.0)},
    )
    print(sweep.run(workers=4).to_json())

The legacy ``ReplayConfig``/``replay_trace`` pair remains as a thin
deprecated shim over the same engine.
"""

from ..registry import (
    PREEMPTION_POLICIES,
    SCHEDULERS,
    WORKLOADS,
    Registry,
    preemption_policy_names,
    register_preemption_policy,
    register_scheduler,
    register_workload,
    scheduler_names,
    workload_names,
)
from .format import (
    RUN_SCHEMA,
    SWEEP_SCHEMA,
    format_table,
    rows_to_json,
    rows_to_table,
)
from ..obs.ledger import ObserveConfig
from .scenario import RunResult, Scenario
from .sweep import Sweep, SweepResult, expand_grid

__all__ = [
    "PREEMPTION_POLICIES",
    "RUN_SCHEMA",
    "SCHEDULERS",
    "SWEEP_SCHEMA",
    "ObserveConfig",
    "Registry",
    "RunResult",
    "Scenario",
    "Sweep",
    "SweepResult",
    "WORKLOADS",
    "expand_grid",
    "format_table",
    "preemption_policy_names",
    "register_preemption_policy",
    "register_scheduler",
    "register_workload",
    "rows_to_json",
    "rows_to_table",
    "scheduler_names",
    "workload_names",
]
