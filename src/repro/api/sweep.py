"""``Sweep``: a declared family of scenarios, run serially or in parallel.

The paper's figures are sweeps — EPC sizes (Fig. 7), SGX shares
(Fig. 8), strategies (Figs. 9/10), limit policies (Fig. 11) — and a
:class:`Sweep` declares one as data: a base :class:`Scenario` plus
either explicit ``variations`` (a list of field-override mappings) or
a ``grid`` (field -> values, expanded as a cartesian product)::

    from repro.api import Scenario, Sweep

    sweep = Sweep(
        Scenario(scheduler="binpack"),
        grid={"sgx_fraction": (0.0, 0.5, 1.0)},
    )
    result = sweep.run(workers=4)
    print(result.to_table())

``run(workers=N)`` fans the scenarios out over a ``multiprocessing``
pool.  Replays are deterministic functions of the scenario alone (the
only cross-run process state, the pod-uid counter, feeds nothing
observable), so parallel results are bit-for-bit identical to serial
execution — the test suite proves it on every run.
"""

from __future__ import annotations

import multiprocessing
import warnings
from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import SimulationError
from .format import SWEEP_SCHEMA, rows_to_json, rows_to_table
from .scenario import RunResult, Scenario


def _run_scenario(scenario: Scenario) -> RunResult:
    """Module-level pool target (spawn contexts need it picklable)."""
    return scenario.run()


def expand_grid(
    grid: Mapping[str, Sequence[object]],
) -> List[Dict[str, object]]:
    """Field-override dicts for the cartesian product of *grid*.

    Insertion order of the mapping fixes the axis order, so the first
    key varies slowest — like nested for-loops reading top to bottom.
    """
    if not grid:
        return []
    axes = []
    for key, values in grid.items():
        values = list(values)
        if not values:
            raise SimulationError(f"grid axis {key!r} has no values")
        axes.append([(key, value) for value in values])
    return [dict(combo) for combo in product(*axes)]


class Sweep:
    """A base scenario and its variations, expanded at construction.

    ``variations`` and ``grid`` compose: every variation is crossed
    with every grid point (either may be omitted).  Unknown field
    names die here, before anything runs.
    """

    def __init__(
        self,
        base: Scenario,
        variations: Sequence[Mapping[str, object]] = (),
        grid: Optional[Mapping[str, Sequence[object]]] = None,
        name: str = "",
    ):
        self.base = base
        self.name = name
        variation_list: List[Mapping[str, object]] = (
            [dict(v) for v in variations] if variations else [{}]
        )
        grid_list = expand_grid(grid) if grid else [{}]
        self.scenarios: Tuple[Scenario, ...] = tuple(
            base.with_(**{**variation, **point})
            for variation in variation_list
            for point in grid_list
        )

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def run(self, workers: int = 1) -> "SweepResult":
        """Execute every scenario; *workers* > 1 uses a process pool.

        Results keep scenario order regardless of which worker
        finished first, and are bit-for-bit identical to a
        ``workers=1`` run.

        The pool uses the ``fork`` start method so workers inherit the
        parent's registries — scenarios naming a plugin scheduler or
        workload registered at runtime resolve in the workers too.  A
        spawn-only platform (Windows) could not see those runtime
        registrations, so without ``fork`` the sweep falls back to
        serial execution (same results, one process) with a warning.
        """
        if not isinstance(workers, int) or workers < 1:
            raise SimulationError(
                f"workers must be a positive integer: {workers!r}"
            )
        context = None
        if workers > 1 and len(self.scenarios) > 1:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                warnings.warn(
                    "parallel sweeps need the 'fork' start method; "
                    "running serially",
                    RuntimeWarning,
                    stacklevel=2,
                )
        if context is None:
            results = [
                scenario.run() for scenario in self.scenarios
            ]
        else:
            processes = min(workers, len(self.scenarios))
            with context.Pool(processes=processes) as pool:
                # chunksize=1: scenarios vary wildly in cost (a 32 MiB
                # EPC run drains for hours of simulated time), so
                # fine-grained dispatch beats pre-chunking.
                results = pool.map(
                    _run_scenario, self.scenarios, chunksize=1
                )
        return SweepResult(results=tuple(results), name=self.name)


@dataclass(frozen=True)
class SweepResult:
    """All runs of one sweep, in scenario order."""

    results: Tuple[RunResult, ...]
    name: str = ""

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> RunResult:
        return self.results[index]

    def signatures(self) -> Tuple:
        """Per-run signatures, for whole-sweep equivalence checks."""
        return tuple(result.signature() for result in self.results)

    def to_rows(self) -> List[Dict[str, object]]:
        """One summary row per run (the shared formatter input)."""
        return [result.to_row() for result in self.results]

    def to_json(self, indent: int = 2, **extra: object) -> str:
        """The schema-tagged sweep JSON document."""
        if self.name:
            extra.setdefault("sweep", self.name)
        return rows_to_json(
            self.to_rows(), schema=SWEEP_SCHEMA, indent=indent, **extra
        )

    def to_table(self) -> str:
        """All runs as one text table."""
        return rows_to_table(self.to_rows())
