"""``Scenario``: one validated, immutable experiment description.

The paper's evaluation is one sentence — "replay one scaled Borg trace
under many configurations" — and a :class:`Scenario` is that sentence
as a value: cluster shape, trace source and seed, workload, scheduler
name plus options, and the feature toggles the later PRs added
(``event_driven``, ``indexed_scheduling``, ``use_state_cache``).  It
validates at construction (unknown scheduler/workload names die here
with the list of registered names), is immutable and picklable (so
sweeps can ship it to worker processes), and ``.run()`` executes it on
the same deterministic engine the legacy
:func:`repro.simulation.runner.replay_trace` shim drives::

    from repro.api import Scenario

    result = Scenario(scheduler="spread", sgx_fraction=0.5).run()
    print(result.to_row()["mean_wait_s"])
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..constants import (
    EPC_TOTAL_BYTES,
    METRICS_PUSH_PERIOD_SECONDS,
    SCHEDULER_PERIOD_SECONDS,
)
from ..errors import SimulationError
from ..obs.ledger import ObserveConfig
from ..policy.classes import DEFAULT_PREEMPTION_THRESHOLD
from ..registry import TRACES, WORKLOADS
from ..scheduler.base import Scheduler
from ..simulation.metrics import ReplayMetrics
from ..simulation.runner import (
    OptionItems,
    ReplayConfig,
    freeze_options,
    make_scheduler,
    run_replay,
)
from ..trace.adapters import resolve_trace
from ..trace.schema import Trace
from ..trace.spec import make_trace_spec, parse_trace_spec
from ..workload.malicious import MaliciousConfig
from .format import RUN_SCHEMA, format_table


@dataclass(frozen=True)
class Scenario:
    """One experiment: what to replay, on what cluster, with which knobs.

    Defaults reproduce the paper's testbed (2 standard + 2 SGX
    workers, 128 MiB PRM, periodic full-scan scheduling) replaying the
    default scaled trace with the binpack strategy and no SGX jobs.

    The workload comes from the ``trace`` spec — any adapter in
    :data:`repro.registry.TRACES` (``repro traces`` lists them)::

        Scenario(trace="borg-synth:seed=7,jobs=500").run()
        Scenario(trace="synth-bursty:seed=3,jobs=500").run()
        Scenario(trace="google2019:path=ev.jsonl,window=1h,sample=0.05")
        Scenario(trace=my_trace)          # an explicit Trace object
    """

    #: Optional display name; shows up as the row label in tables.
    name: str = ""

    # -- scheduler ---------------------------------------------------------
    #: Any name registered in :data:`repro.registry.SCHEDULERS`.
    scheduler: str = "binpack"
    #: Extra factory keywords for plugin strategies (mapping accepted,
    #: stored as sorted items).
    scheduler_options: OptionItems = ()

    # -- workload ----------------------------------------------------------
    #: Any name registered in :data:`repro.registry.WORKLOADS`.
    workload: str = "stress"
    workload_options: OptionItems = ()
    #: Share of trace jobs designated SGX-enabled (Fig. 8's sweep).
    sgx_fraction: float = 0.0
    #: Per-run randomness (SGX designation etc.).
    seed: int = 0
    #: Side deployment of Section VI-F squatters next to the workload.
    malicious: Optional[MaliciousConfig] = None

    # -- trace source ------------------------------------------------------
    #: What to replay: a trace spec string resolved through
    #: :data:`repro.registry.TRACES` — e.g. ``"borg-synth:seed=7,
    #: jobs=500"``, ``"google2019:path=ev.jsonl,window=1h"``,
    #: ``"synth-bursty:seed=3,jobs=500"`` — or an explicit
    #: :class:`Trace`.  ``None`` replays the paper's default scaled
    #: slice (``"borg-synth"``).  ``repro traces`` lists the catalogue.
    trace: Optional[Union[Trace, str]] = None
    #: .. deprecated:: use ``trace="borg-synth:seed=..."``.  Kept as a
    #:    warning alias; rewritten into the spec above at construction.
    trace_seed: Optional[int] = None
    #: .. deprecated:: use ``trace="borg-synth:jobs=..."``.
    trace_jobs: Optional[int] = None
    #: .. deprecated:: use ``trace="borg-synth:overallocators=..."``.
    trace_overallocators: Optional[int] = None

    # -- cluster shape -----------------------------------------------------
    epc_total_bytes: int = EPC_TOTAL_BYTES
    #: ``None`` keeps the paper's testbed (2 standard + 2 SGX workers).
    standard_workers: Optional[int] = None
    sgx_workers: Optional[int] = None

    # -- driver / limit policy (Fig. 11's switches) ------------------------
    enforce_epc_limits: bool = False
    epc_allow_overcommit: bool = True

    # -- control-plane cadence ---------------------------------------------
    scheduler_period: float = SCHEDULER_PERIOD_SECONDS
    metrics_period: float = METRICS_PUSH_PERIOD_SECONDS
    requeue_backoff_seconds: float = 0.0
    rebalance_period: Optional[float] = None

    # -- strategy toggles --------------------------------------------------
    use_measured: bool = True
    strict_fcfs: bool = False
    preserve_sgx_nodes: bool = True

    # -- priority & preemption (the policy subsystem) ----------------------
    #: Extra priority classes (name -> int) overlaid on the built-in
    #: tiers (``best-effort``/``batch``/``latency-critical``); workload
    #: ``priority`` options given as names resolve against the merge.
    priority_classes: OptionItems = ()
    #: Planner consulted when a pod above the threshold fails
    #: placement (any name in
    #: ``repro.registry.PREEMPTION_POLICIES``).  The default ``none``
    #: keeps the paper's strictly non-preemptive scheduling and is
    #: bit-for-bit identical to the pre-policy engine.
    preemption_policy: str = "none"
    #: Deferred pods at or above this priority may trigger evictions.
    preemption_priority_threshold: int = DEFAULT_PREEMPTION_THRESHOLD

    # -- feature toggles (later PRs' fast paths) ---------------------------
    event_driven: bool = False
    indexed_scheduling: bool = False
    use_state_cache: bool = True

    # -- two-level sharded scheduling --------------------------------------
    #: Split the cluster into this many cells, each with its own
    #: scheduler, pending queue and event queue, routed by the global
    #: dispatcher.  ``None`` is the flat single-queue oracle;
    #: ``cells=1`` runs the full sharded machinery and is bit-for-bit
    #: identical to it.
    cells: Optional[int] = None
    #: Partition policy (any name in :data:`repro.registry.CELLS`):
    #: ``balanced`` (seeded hash round-robin), ``region`` (node-name
    #: prefixes) or ``capacity-class`` (hardware shapes).
    cell_policy: str = "balanced"
    #: Consecutive deferrals before a pod spills to another cell.
    cell_spillover_after: int = 2

    # -- observability -----------------------------------------------------
    #: Export targets for the decision ledger (JSONL), span trace
    #: (Chrome trace-event JSON) and metrics snapshot (Prometheus
    #: text).  ``None`` — the default — runs the allocation-free null
    #: observer; an observed run's :meth:`RunResult.signature` is
    #: identical to the unobserved one, on every engine.
    observe: Optional[ObserveConfig] = None

    # -- failure injection / stop -----------------------------------------
    node_failures: Sequence[Tuple[float, str]] = ()
    max_sim_seconds: float = 48 * 3600.0

    def __post_init__(self) -> None:
        for option_field in (
            "workload_options", "scheduler_options", "priority_classes",
        ):
            value = getattr(self, option_field)
            if not isinstance(value, tuple):
                object.__setattr__(
                    self, option_field, freeze_options(value)
                )
        object.__setattr__(
            self,
            "node_failures",
            tuple(tuple(failure) for failure in self.node_failures),
        )
        if self.trace_jobs is not None and self.trace_jobs < 1:
            raise SimulationError(
                f"trace_jobs must be >= 1: {self.trace_jobs}"
            )
        if (
            self.trace_overallocators is not None
            and self.trace_overallocators < 0
        ):
            raise SimulationError(
                "trace_overallocators must be >= 0: "
                f"{self.trace_overallocators}"
            )
        self._rewrite_legacy_trace_knobs()
        if isinstance(self.trace, str):
            # Die at construction, not mid-replay: the name must be a
            # registered adapter (the error lists the sorted known
            # ones) and the spec must parse.
            TRACES.get(parse_trace_spec(self.trace).name)
        # The engine config performs the rest of the validation
        # (fractions, periods, worker counts, registry names), so a
        # scenario can never exist that the engine would reject later.
        self.to_replay_config()

    def _rewrite_legacy_trace_knobs(self) -> None:
        """Fold the deprecated ``trace_*`` knobs into a spec string.

        ``trace_seed``/``trace_jobs``/``trace_overallocators`` were
        the original synthesis interface; each maps one-to-one onto a
        ``borg-synth`` spec option and routes through the identical
        generator call, so results stay bit-for-bit the same.  Over an
        existing ``borg-synth`` spec (e.g. ``with_(trace_seed=5)`` on
        an already-rewritten scenario) the knobs merge in, knob
        winning per key — exactly the old ``dataclasses.replace``
        semantics.  Over an explicit :class:`Trace` or a non-Borg spec
        they contradict and die.
        """
        knobs = {}
        if self.trace_seed is not None:
            knobs["seed"] = self.trace_seed
        if self.trace_jobs is not None:
            knobs["jobs"] = self.trace_jobs
        if self.trace_overallocators is not None:
            knobs["overallocators"] = self.trace_overallocators
        if not knobs:
            return
        options: Dict[str, object] = {}
        if isinstance(self.trace, str):
            spec = parse_trace_spec(self.trace)
            if spec.name != "borg-synth":
                raise SimulationError(
                    f"an explicit trace spec ({self.trace!r}) "
                    "conflicts with the deprecated trace_seed/"
                    "trace_jobs/trace_overallocators knobs; fold them "
                    "into the spec instead"
                )
            options.update(spec.options)
        elif self.trace is not None:
            raise SimulationError(
                "an explicit trace conflicts with trace_seed/"
                "trace_jobs/trace_overallocators: the synthesis knobs "
                "would be silently ignored; set one or the other"
            )
        options.update(knobs)
        replacement = make_trace_spec("borg-synth", options.items())
        warnings.warn(
            "Scenario trace_seed/trace_jobs/trace_overallocators are "
            f"deprecated; use trace={replacement!r}",
            DeprecationWarning,
            stacklevel=4,
        )
        object.__setattr__(self, "trace", replacement)
        object.__setattr__(self, "trace_seed", None)
        object.__setattr__(self, "trace_jobs", None)
        object.__setattr__(self, "trace_overallocators", None)

    # -- derived views -----------------------------------------------------

    @property
    def label(self) -> str:
        """Row label: the explicit name, or a knob summary."""
        if self.name:
            return self.name
        return (
            f"{self.scheduler}/{self.workload}"
            f"/sgx={self.sgx_fraction:g}/seed={self.seed}"
        )

    def to_replay_config(self) -> ReplayConfig:
        """The engine-level config equivalent to this scenario."""
        return ReplayConfig(
            scheduler=self.scheduler,
            sgx_fraction=self.sgx_fraction,
            seed=self.seed,
            epc_total_bytes=self.epc_total_bytes,
            enforce_epc_limits=self.enforce_epc_limits,
            epc_allow_overcommit=self.epc_allow_overcommit,
            scheduler_period=self.scheduler_period,
            metrics_period=self.metrics_period,
            use_measured=self.use_measured,
            strict_fcfs=self.strict_fcfs,
            preserve_sgx_nodes=self.preserve_sgx_nodes,
            event_driven=self.event_driven,
            requeue_backoff_seconds=self.requeue_backoff_seconds,
            indexed_scheduling=self.indexed_scheduling,
            standard_workers=self.standard_workers,
            sgx_workers=self.sgx_workers,
            use_state_cache=self.use_state_cache,
            malicious=self.malicious,
            rebalance_period=self.rebalance_period,
            node_failures=self.node_failures,
            max_sim_seconds=self.max_sim_seconds,
            workload=self.workload,
            workload_options=self.workload_options,
            scheduler_options=self.scheduler_options,
            priority_classes=self.priority_classes,
            preemption_policy=self.preemption_policy,
            preemption_priority_threshold=(
                self.preemption_priority_threshold
            ),
            cells=self.cells,
            cell_policy=self.cell_policy,
            cell_spillover_after=self.cell_spillover_after,
            observe=self.observe,
        )

    def build_trace(self) -> Trace:
        """The trace this scenario replays (resolved or explicit).

        Spec strings resolve through :data:`repro.registry.TRACES`;
        an explicit :class:`Trace` is returned as-is; ``None`` means
        the paper's default scaled slice.
        """
        if isinstance(self.trace, Trace):
            return self.trace
        return resolve_trace(self.trace or "borg-synth")

    def build_scheduler(self) -> Scheduler:
        """The configured strategy instance (for pass-level harnesses)."""
        return make_scheduler(self.to_replay_config())

    def with_(self, **changes: object) -> "Scenario":
        """A copy with *changes* applied (re-validated on build)."""
        valid = {f.name for f in dataclasses.fields(self)}
        unknown = sorted(set(changes) - valid)
        if unknown:
            raise SimulationError(
                f"unknown scenario field(s) {', '.join(unknown)}; "
                f"valid: {', '.join(sorted(valid))}"
            )
        return dataclasses.replace(self, **changes)

    # -- execution ---------------------------------------------------------

    def run(self) -> "RunResult":
        """Execute the scenario; fully deterministic per its seeds."""
        factory = WORKLOADS.get(self.workload)
        # Workload factories that never read the trace (hybrid,
        # malicious) declare ``consumes_trace = False``; skip the
        # synthesis (and, in sweeps, the per-worker pickling) for them.
        trace = (
            self.build_trace()
            if getattr(factory, "consumes_trace", True)
            else None
        )
        replay = run_replay(trace, self.to_replay_config())
        trigger = replay.orchestrator.trigger
        return RunResult(
            scenario=self,
            metrics=replay.metrics,
            passes_executed=replay.passes_executed,
            passes_skipped=replay.passes_skipped,
            migration_count=replay.migration_count,
            events_published=trigger.events_published,
            events_coalesced=trigger.events_coalesced,
            preemption_count=replay.preemption_count,
            eviction_count=replay.eviction_count,
            wait_reasons=replay.wait_reasons,
            cell_spillovers=replay.cell_spillovers,
            ledger_path=replay.ledger_path,
            trace_path=replay.trace_path,
            metrics_path=replay.metrics_path,
        )


@dataclass(frozen=True)
class RunResult:
    """Structured outcome of one scenario run.

    Carries the scenario, the full :class:`ReplayMetrics` (per-pod
    lifecycles, the Fig. 7 queue series, makespan) and the engine's
    pass/migration counters — everything picklable, so parallel sweep
    workers can ship results back whole.  The live orchestrator and
    event log intentionally stay behind in the worker; scenarios that
    need them should drive the engine directly.
    """

    scenario: Scenario
    metrics: ReplayMetrics
    passes_executed: int = 0
    passes_skipped: int = 0
    migration_count: int = 0
    events_published: int = 0
    events_coalesced: int = 0
    #: Pods placed by evicting victims (0 under the ``none`` policy).
    preemption_count: int = 0
    #: Victims evicted (killed and resubmitted) for those placements.
    eviction_count: int = 0
    #: Aggregate deferral reasons (see
    #: :data:`repro.scheduler.base.WAIT_REASONS`): *why* pods waited —
    #: EPC vs memory vs CPU starvation vs fragmentation — not just how
    #: long.
    wait_reasons: Dict[str, int] = dataclasses.field(
        default_factory=dict
    )
    #: Pods the global dispatcher re-routed across cells (0 in the
    #: flat oracle and in every ``cells=1`` replay).
    cell_spillovers: int = 0
    #: Where the observability exports landed (``None`` unless the
    #: scenario's ``observe`` requested them).  Deliberately excluded
    #: from :meth:`signature` and :meth:`to_row`: observation must
    #: never change what two runs count as equal.
    ledger_path: Optional[str] = None
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None

    def pod_signature(self) -> Tuple:
        """Every pod's full lifecycle, for bit-for-bit comparison."""
        return tuple(
            (
                pod.name,
                pod.phase.value,
                pod.submitted_at,
                pod.bound_at,
                pod.started_at,
                pod.finished_at,
                pod.node_name,
            )
            for pod in self.metrics.pods
        )

    def signature(self) -> Tuple:
        """Everything that must match for two runs to count as equal:
        pod lifecycles, makespan, the queue series and the engine
        counters.  Serial and parallel sweeps, and the legacy
        ``replay_trace`` path, must agree on this bit for bit."""
        return (
            self.pod_signature(),
            self.metrics.makespan_seconds,
            tuple(self.metrics.queue_series),
            self.passes_executed,
            self.passes_skipped,
            self.migration_count,
            self.preemption_count,
            self.eviction_count,
            tuple(sorted(self.wait_reasons.items())),
            self.cell_spillovers,
        )

    def to_row(self) -> Dict[str, object]:
        """The flat summary row every formatter renders."""
        scenario = self.scenario
        metrics = self.metrics
        return {
            "scenario": scenario.label,
            "scheduler": scenario.scheduler,
            "workload": scenario.workload,
            "sgx_fraction": scenario.sgx_fraction,
            "seed": scenario.seed,
            "epc_mib": round(scenario.epc_total_bytes / 2**20, 3),
            "event_driven": scenario.event_driven,
            "indexed": scenario.indexed_scheduling,
            "cells": 1 if scenario.cells is None else scenario.cells,
            "cell_policy": scenario.cell_policy,
            "submitted": len(metrics.pods),
            "completed": len(metrics.succeeded),
            "failed": len(metrics.failed),
            "makespan_s": round(metrics.makespan_seconds, 3),
            "mean_wait_s": round(metrics.mean_waiting_seconds(), 3),
            "max_wait_s": round(metrics.max_waiting_seconds(), 3),
            "turnaround_h": round(metrics.total_turnaround_hours(), 3),
            "passes_executed": self.passes_executed,
            "passes_skipped": self.passes_skipped,
            "migrations": self.migration_count,
            "preemptions": self.preemption_count,
            "evictions": self.eviction_count,
            "cell_spillovers": self.cell_spillovers,
            # Deferral-reason aggregates: what the queue waited *on*.
            "wait_epc": self.wait_reasons.get("epc", 0),
            "wait_memory": self.wait_reasons.get("memory", 0),
            "wait_cpu": self.wait_reasons.get("cpu", 0),
            "wait_fragmentation": self.wait_reasons.get(
                "fragmentation", 0
            ),
            "wait_head_of_line": self.wait_reasons.get(
                "head_of_line", 0
            ),
        }

    def to_json(self, indent: int = 2) -> str:
        """The summary row as a schema-tagged JSON document."""
        return json.dumps(
            {"schema": RUN_SCHEMA, **self.to_row()}, indent=indent
        )

    def to_table(self) -> str:
        """The summary row as a one-row text table."""
        row = self.to_row()
        return format_table(list(row.keys()), [list(row.values())])
