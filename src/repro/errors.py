"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause,
while tests can assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


# --------------------------------------------------------------------------
# SGX substrate
# --------------------------------------------------------------------------

class SgxError(ReproError):
    """Base class for SGX substrate failures."""


class EpcExhaustedError(SgxError):
    """An EPC allocation could not be satisfied in strict mode."""

    def __init__(self, requested_pages: int, free_pages: int):
        super().__init__(
            f"EPC exhausted: requested {requested_pages} pages, "
            f"{free_pages} free"
        )
        self.requested_pages = requested_pages
        self.free_pages = free_pages


class EnclaveLimitExceededError(SgxError):
    """Enclave initialisation denied: pod exceeded its advertised EPC limit.

    Mirrors the paper's driver patch which denies ``__sgx_encl_init`` when
    the enclave owns more pages than its enclosing pod advertised.
    """

    def __init__(self, cgroup_path: str, owned_pages: int, limit_pages: int):
        super().__init__(
            f"enclave init denied for pod {cgroup_path!r}: owns "
            f"{owned_pages} EPC pages, limit is {limit_pages}"
        )
        self.cgroup_path = cgroup_path
        self.owned_pages = owned_pages
        self.limit_pages = limit_pages


class EnclaveStateError(SgxError):
    """An enclave lifecycle operation was attempted in the wrong state."""


class LaunchTokenError(SgxError):
    """Launch-token acquisition or validation failed."""


class DriverError(SgxError):
    """Generic SGX driver failure (unknown ioctl, double limit set...)."""


# --------------------------------------------------------------------------
# Cluster / orchestrator
# --------------------------------------------------------------------------

class ClusterError(ReproError):
    """Base class for cluster substrate failures."""


class ResourceError(ClusterError):
    """Invalid resource vector arithmetic or capacity violation."""


class NodeError(ClusterError):
    """Node-level failure (unknown pod, double bind...)."""


class CgroupError(ClusterError):
    """Invalid cgroup operation."""


class OrchestrationError(ReproError):
    """Base class for control-plane failures."""


class PodSpecError(OrchestrationError):
    """A pod specification is malformed."""


class SchedulingError(OrchestrationError):
    """The scheduler produced an invalid assignment."""


class UnschedulablePodError(SchedulingError):
    """No node in the cluster can ever satisfy the pod's requests."""

    def __init__(self, pod_name: str, reason: str):
        super().__init__(f"pod {pod_name!r} is unschedulable: {reason}")
        self.pod_name = pod_name
        self.reason = reason


class RpcError(OrchestrationError):
    """Simulated gRPC channel failure."""


class RegistryError(ReproError):
    """A scheduler/workload registry lookup or registration failed."""


class PolicyError(OrchestrationError):
    """Invalid priority/QoS configuration or preemption plan."""


# --------------------------------------------------------------------------
# Monitoring
# --------------------------------------------------------------------------

class MonitoringError(ReproError):
    """Base class for metrics substrate failures."""


class QueryError(MonitoringError):
    """An InfluxQL query failed to parse or execute."""


# --------------------------------------------------------------------------
# Trace / simulation
# --------------------------------------------------------------------------

class TraceError(ReproError):
    """Invalid trace data or trace transformation."""


class SimulationError(ReproError):
    """Discrete-event engine failure (time travel, duplicate events...)."""
