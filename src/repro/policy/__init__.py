"""Priority & preemption: the policy layer over the orchestrator.

Three pieces compose (Section V-E's "processes that should be
preempted", made schedulable):

* :mod:`repro.policy.classes` — named priority tiers
  (:class:`PriorityClass`); pods carry the resolved integer and the
  pending queue orders tiers by it, FCFS within each tier;
* :mod:`repro.policy.qos` — guaranteed/burstable/best-effort derived
  from requests vs limits, governing who is evictable;
* :mod:`repro.policy.preemption` — pluggable planners
  (``@register_preemption_policy``; built-ins ``none``,
  ``lowest-priority-first`` and the EPC-aware ``cheapest-victims``)
  that pick the cheapest feasible eviction set for a pod the pass
  could not place.

The default policy is ``none``: with it, every replay is bit-for-bit
identical to the pre-policy orchestrator across the periodic,
event-driven and indexed engines.
"""

from .classes import (
    DEFAULT_PREEMPTION_THRESHOLD,
    DEFAULT_PRIORITY_CLASSES,
    PriorityClass,
    priority_class_map,
    resolve_priority,
)
from .preemption import (
    CheapestVictims,
    EvictionCandidate,
    EvictionPlan,
    LowestPriorityFirst,
    NoPreemption,
    PreemptionPolicy,
    available_after,
)
from .qos import QosClass, is_evictable_by, qos_of

__all__ = [
    "DEFAULT_PREEMPTION_THRESHOLD",
    "DEFAULT_PRIORITY_CLASSES",
    "CheapestVictims",
    "EvictionCandidate",
    "EvictionPlan",
    "LowestPriorityFirst",
    "NoPreemption",
    "PreemptionPolicy",
    "PriorityClass",
    "QosClass",
    "available_after",
    "is_evictable_by",
    "priority_class_map",
    "qos_of",
    "resolve_priority",
]
