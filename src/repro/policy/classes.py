"""Priority classes: named scheduling tiers, Kubernetes-flavoured.

Section V-E motivates the per-process EPC metric with processes "that
should be preempted" under contention; the policy layer that decision
implies needs a notion of *who outranks whom*.  A
:class:`PriorityClass` binds a name to an integer value, exactly like
the Kubernetes object of the same name: pods carry the resolved
integer (``PodSpec.priority``), scenarios and workloads may speak in
class names, and the pending queue orders tiers by value (higher wins)
while staying FCFS *within* a tier.

The default catalogue mirrors a common multi-tenant setup:

* ``best-effort`` (0) — the default for every pod; the paper's
  evaluation runs entirely in this tier, which is why priority-disabled
  replays are bit-for-bit identical to the pre-policy orchestrator;
* ``batch`` (10) — bulk work that should outrank scavengers but yield
  to interactive tenants;
* ``latency-critical`` (100) — the tier whose pods may trigger
  preemption (it clears the default eviction threshold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Tuple, Union

from ..errors import PolicyError

#: Pods at or above this priority may trigger preemption when a real
#: planner is configured (see ``preemption_priority_threshold``).
DEFAULT_PREEMPTION_THRESHOLD = 100


@dataclass(frozen=True)
class PriorityClass:
    """One named scheduling tier."""

    name: str
    value: int
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise PolicyError(
                f"priority class names must be non-empty strings, "
                f"got {self.name!r}"
            )
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise PolicyError(
                f"priority class {self.name!r} value must be an int, "
                f"got {self.value!r}"
            )


#: The built-in tiers, always resolvable by name.
DEFAULT_PRIORITY_CLASSES: Tuple[PriorityClass, ...] = (
    PriorityClass("best-effort", 0, "the default tier; never preempts"),
    PriorityClass("batch", 10, "bulk work above scavengers"),
    PriorityClass(
        "latency-critical",
        DEFAULT_PREEMPTION_THRESHOLD,
        "interactive tenants; may trigger preemption",
    ),
)


def priority_class_map(
    extra: Union[
        Mapping[str, int], Iterable[Tuple[str, int]], None
    ] = None,
) -> Dict[str, int]:
    """Name -> value catalogue: the defaults overlaid with *extra*.

    *extra* may redefine a default name (an experiment can move
    ``batch`` up) but every value must be an int.
    """
    catalogue = {cls.name: cls.value for cls in DEFAULT_PRIORITY_CLASSES}
    if extra is None:
        return catalogue
    items = extra.items() if isinstance(extra, Mapping) else extra
    for name, value in items:
        # Route through the dataclass so name/value validation is one
        # code path whether a tier is built in or scenario-supplied.
        cls = PriorityClass(name, value)
        catalogue[cls.name] = cls.value
    return catalogue


def resolve_priority(
    value: Union[int, str],
    classes: Union[Mapping[str, int], None] = None,
) -> int:
    """The integer priority *value* denotes (int passthrough or name).

    Unknown names die with the sorted known names, mirroring the
    registry's fail-fast lookups.
    """
    if isinstance(value, bool):
        raise PolicyError(f"priority must be an int or name: {value!r}")
    if isinstance(value, int):
        return value
    catalogue = (
        dict(classes) if classes is not None else priority_class_map()
    )
    if value not in catalogue:
        known = ", ".join(sorted(catalogue)) or "<none>"
        raise PolicyError(
            f"unknown priority class {value!r}; known: {known}"
        )
    return catalogue[value]
