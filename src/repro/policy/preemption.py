"""Preemption planners: pick the cheapest feasible eviction set.

The paper's Section V-E metric exists "to identify processes that
should be preempted ... in scenarios of high contention"; the
orchestrator reproduced here was nonetheless strictly non-preemptive.
This module supplies the missing policy layer as a registry of
*planners*: given a high-priority pod the scheduling pass failed to
place, a planner examines the evictable pods on each eligible node and
returns an :class:`EvictionPlan` — which node to clear and which
victims to evict so the pod fits *in the same pass* — or ``None`` when
no eviction set helps.

Planners only plan.  Execution (killing victims through the kubelet
kill path, resubmitting their specs with the original ``submitted_at``
so FCFS holds within each tier, publishing trigger events) lives in
:meth:`repro.orchestrator.controller.Orchestrator.scheduling_pass`.

Three planners ship:

* ``none`` — the default: never preempt, preserving the paper's
  Sec. IV behaviour bit for bit;
* ``lowest-priority-first`` — the Kubernetes-style baseline: evict the
  lowest tier first (youngest first within a tier), preferring the
  node whose most senior victim is cheapest to outrank;
* ``cheapest-victims`` — the EPC-aware planner: victims are priced by
  the same driver-measured occupancy the rebalancer's cost model uses
  (:meth:`repro.scheduler.rebalancer.EpcRebalancer._victims` sorts
  candidates by measured pages — cheapest transfer first) plus the
  useful work an eviction throws away, so a freshly started small
  enclave is preferred over a large one about to bank hours of
  runtime.

Determinism: every ordering ends in the victim's ``uid`` and every
node score ends in the node name, so plans are identical across the
periodic, event-driven and indexed engines — the property the
equivalence suite pins.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..cluster.resources import ResourceVector
from ..obs.ledger import NULL_LEDGER
from ..registry import register_preemption_policy
from ..units import pages as bytes_to_pages

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..orchestrator.pod import Pod
    from ..scheduler.base import NodeView


@dataclass(frozen=True)
class EvictionCandidate:
    """One evictable pod, priced for the planners.

    ``freed`` is what evicting the pod returns to its node's *view*:
    declared requests for CPU and standard memory, and the
    driver-measured enclave occupancy for EPC (an SGX2-grown enclave
    frees its measured pages, not its declared ones — the same
    correction the rebalancer applies to migrations).  The next pass
    rebuilds views from ground truth, so this estimate only has to be
    good enough for in-pass feasibility.
    """

    pod: "Pod"
    node_name: str
    freed: ResourceVector
    #: Driver-measured enclave pages (0 for standard pods).
    measured_epc_pages: int
    #: Useful runtime an eviction discards (0 for not-yet-started pods).
    lost_work_seconds: float


@dataclass(frozen=True)
class EvictionPlan:
    """One node to clear, and the victims that make the pod fit there."""

    node_name: str
    victims: Tuple[EvictionCandidate, ...]
    cost: float


def available_after(
    view: "NodeView", freed: ResourceVector
) -> ResourceVector:
    """The node's availability once *freed* returns to it."""
    return (view.capacity - (view.used - freed).clamp_floor()).clamp_floor()


class PreemptionPolicy(abc.ABC):
    """Shared planning skeleton; concrete planners order and score.

    :meth:`plan` walks the eligible nodes in name order, builds a
    minimal feasible victim set per node with :meth:`_feasible_set`
    (greedy over :meth:`_ordered` with a backward prune) and returns
    the plan :meth:`_score` likes best.  An empty victim set is a
    valid plan — after earlier preemptions in the same pass, a node
    may already fit the pod, and a zero-cost plan wins automatically.
    """

    name = "abstract"
    #: ``True`` lets the orchestrator skip candidate collection
    #: entirely — the cheap way to keep the non-preemptive default free
    #: of per-pass overhead.
    never_preempts = False
    #: The run's decision ledger; the orchestrator rebinds this on
    #: observed runs so every planner verdict (chosen node, victim
    #: count, cost — or "no eviction set helps") is recorded.
    ledger = NULL_LEDGER

    def plan(
        self,
        preemptor: "Pod",
        views_by_name: Dict[str, "NodeView"],
        candidates_by_node: Dict[str, List[EvictionCandidate]],
        now: float,
    ) -> Optional[EvictionPlan]:
        """The best feasible plan for *preemptor*, or ``None``."""
        best: Optional[EvictionPlan] = None
        best_score: Optional[Tuple] = None
        for node_name in sorted(candidates_by_node):
            view = views_by_name[node_name]
            victims = self._feasible_set(
                preemptor, view, self._ordered(candidates_by_node[node_name])
            )
            if victims is None:
                continue
            plan = EvictionPlan(
                node_name=node_name,
                victims=tuple(victims),
                cost=sum(self._cost(v) for v in victims),
            )
            score = self._score(plan)
            if best_score is None or score < best_score:
                best, best_score = plan, score
        ledger = self.ledger
        if ledger.enabled:
            if best is None:
                ledger.emit(
                    now, "preemption_plan",
                    pod=preemptor.name, node=None, victims=0, cost=-1.0,
                )
            else:
                ledger.emit(
                    now, "preemption_plan",
                    pod=preemptor.name, node=best.node_name,
                    victims=len(best.victims), cost=best.cost,
                )
        return best

    def _feasible_set(
        self,
        preemptor: "Pod",
        view: "NodeView",
        ordered: Sequence[EvictionCandidate],
    ) -> Optional[List[EvictionCandidate]]:
        """The cheapest prefix of *ordered* that makes the pod fit.

        Greedy accumulation in the policy's preference order, then one
        backward prune dropping members whose contribution turned out
        redundant.  Returns ``None`` when even evicting everything
        leaves no room.
        """
        requests = preemptor.spec.resources.requests
        chosen: List[EvictionCandidate] = []
        freed = ResourceVector.zero()
        if requests.fits_within(available_after(view, freed)):
            return []
        for candidate in ordered:
            chosen.append(candidate)
            freed = freed + candidate.freed
            if requests.fits_within(available_after(view, freed)):
                break
        else:
            return None
        for candidate in reversed(list(chosen)):
            reduced = freed - candidate.freed
            if requests.fits_within(available_after(view, reduced)):
                chosen.remove(candidate)
                freed = reduced
        return chosen

    @abc.abstractmethod
    def _ordered(
        self, candidates: Sequence[EvictionCandidate]
    ) -> List[EvictionCandidate]:
        """Candidates in this policy's eviction-preference order."""

    @abc.abstractmethod
    def _cost(self, candidate: EvictionCandidate) -> float:
        """The price this policy puts on evicting *candidate*."""

    @abc.abstractmethod
    def _score(self, plan: EvictionPlan) -> Tuple:
        """Comparable node score; the smallest wins (end in the name)."""


@register_preemption_policy("none")
class NoPreemption(PreemptionPolicy):
    """The paper's orchestrator: never evict anything."""

    name = "none"
    never_preempts = True

    def plan(
        self,
        preemptor: "Pod",
        views_by_name: Dict[str, "NodeView"],
        candidates_by_node: Dict[str, List[EvictionCandidate]],
        now: float,
    ) -> Optional[EvictionPlan]:
        return None

    def _ordered(
        self, candidates: Sequence[EvictionCandidate]
    ) -> List[EvictionCandidate]:  # pragma: no cover - plan() short-circuits
        return []

    def _cost(
        self, candidate: EvictionCandidate
    ) -> float:  # pragma: no cover - plan() short-circuits
        return 0.0

    def _score(
        self, plan: EvictionPlan
    ) -> Tuple:  # pragma: no cover - plan() short-circuits
        return ()


@register_preemption_policy("lowest-priority-first")
class LowestPriorityFirst(PreemptionPolicy):
    """Evict the lowest tier first, youngest first within a tier.

    The Kubernetes-flavoured baseline: victim cost is the victim's
    priority (plus a recency epsilon so younger pods go first), and a
    node is preferred when its most senior victim is the most junior
    across nodes — disturb the least important tenants possible.
    """

    name = "lowest-priority-first"

    def _ordered(
        self, candidates: Sequence[EvictionCandidate]
    ) -> List[EvictionCandidate]:
        return sorted(
            candidates,
            key=lambda c: (
                c.pod.spec.priority,
                -c.pod.submitted_at,
                c.pod.uid,
            ),
        )

    def _cost(self, candidate: EvictionCandidate) -> float:
        return float(candidate.pod.spec.priority)

    def _score(self, plan: EvictionPlan) -> Tuple:
        top = max(
            (v.pod.spec.priority for v in plan.victims), default=-1
        )
        return (top, len(plan.victims), plan.node_name)


@register_preemption_policy("cheapest-victims")
class CheapestVictims(PreemptionPolicy):
    """EPC-aware pricing: measured pages plus discarded runtime.

    Reuses the rebalancer's cost model — driver-measured enclave pages
    are the transfer/rebuild cost of displacing an enclave, so smaller
    measured enclaves are cheaper — and adds the work an eviction
    throws away: a victim that has already run for an hour costs its
    whole hour again after resubmission.  Standard memory is priced at
    a steep discount to EPC (plentiful vs a 128 MiB PRM).
    """

    name = "cheapest-victims"

    #: EPC pages one discarded second of runtime is worth.
    LOST_WORK_PAGES_PER_SECOND = 1.0
    #: Standard-memory pages per EPC page, cost-wise.
    MEMORY_DISCOUNT = 256.0

    def _cost(self, candidate: EvictionCandidate) -> float:
        memory_pages = bytes_to_pages(candidate.freed.memory_bytes)
        return (
            candidate.measured_epc_pages
            + memory_pages / self.MEMORY_DISCOUNT
            + candidate.lost_work_seconds * self.LOST_WORK_PAGES_PER_SECOND
        )

    def _ordered(
        self, candidates: Sequence[EvictionCandidate]
    ) -> List[EvictionCandidate]:
        return sorted(
            candidates, key=lambda c: (self._cost(c), c.pod.uid)
        )

    def _score(self, plan: EvictionPlan) -> Tuple:
        return (plan.cost, len(plan.victims), plan.node_name)
