"""QoS classes: who is evictable, derived from requests vs limits.

Kubernetes derives a pod's quality-of-service tier from the gap
between what it *requests* (the scheduler's reservation) and what it
is *limited* to (enforcement's cap); the eviction machinery then
only touches the tiers that left themselves a gap.  The same
derivation governs the preemption subsystem here:

* **guaranteed** — explicit limits equal to the requests: the tenant
  paid for exactly what it uses and is never evicted;
* **burstable** — requests without matching explicit limits (the
  paper's trace pods declare one number, stored as requests only):
  evictable by higher-priority pods;
* **best-effort** — no requests at all: first against the wall.

Note the deliberate difference from ``effective_limits``: a pod whose
``limits`` field is ``None`` *defaults* to its requests for
enforcement purposes, but that default does not buy guaranteed QoS —
only explicitly pinning ``limits == requests`` does, exactly as in
Kubernetes (where omitting limits yields Burstable).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..orchestrator.api import ResourceRequirements
    from ..orchestrator.pod import Pod


class QosClass(enum.Enum):
    """Eviction tiers, ordered from most to least protected."""

    GUARANTEED = "Guaranteed"
    BURSTABLE = "Burstable"
    BEST_EFFORT = "BestEffort"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def evictable(self) -> bool:
        """Whether pods of this tier may ever be preemption victims."""
        return self is not QosClass.GUARANTEED


def qos_of(resources: "ResourceRequirements") -> QosClass:
    """The QoS tier *resources* buys (see module docstring)."""
    requests = resources.requests
    if (
        requests.cpu_millicores == 0
        and requests.memory_bytes == 0
        and requests.epc_pages == 0
    ):
        return QosClass.BEST_EFFORT
    if resources.limits is not None and resources.limits == requests:
        return QosClass.GUARANTEED
    return QosClass.BURSTABLE


def is_evictable_by(victim: "Pod", preemptor: "Pod") -> bool:
    """Whether *preemptor* may evict *victim*.

    Three conditions, all required:

    * the victim actually holds node resources (bound or running; a
      terminal or still-pending pod has nothing to free);
    * the victim's QoS tier is evictable (guaranteed pods never are);
    * the victim sits in a strictly lower priority tier — equal
      priority never preempts, so FCFS holds within a tier.
    """
    if victim.phase.value not in ("Bound", "Running"):
        return False
    if not victim.qos_class.evictable:
        return False
    return victim.spec.priority < preemptor.spec.priority
