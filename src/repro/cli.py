"""Command-line interface: regenerate any paper figure from a shell.

Usage::

    python -m repro list
    python -m repro fig7 [--trace-seed N] [--run-seed N]
    python -m repro all

Each figure command runs the corresponding experiment driver and prints
the same table the benchmark harness produces.  Exit status is 0 on
success, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from .experiments import common
from .experiments.ext_hybrid import format_ext_hybrid, run_ext_hybrid
from .experiments.ext_sgx2 import format_ext_sgx2, run_ext_sgx2
from .experiments.fig10_turnaround import format_fig10, run_fig10
from .experiments.fig11_limits import format_fig11, run_fig11
from .experiments.fig3_memory_cdf import format_fig3, run_fig3
from .experiments.fig4_duration_cdf import format_fig4, run_fig4
from .experiments.fig5_concurrency import format_fig5, run_fig5
from .experiments.fig6_startup import format_fig6, run_fig6
from .experiments.fig7_epc_sizes import format_fig7, run_fig7
from .experiments.fig8_waiting_cdf import format_fig8, run_fig8
from .experiments.fig9_strategies import format_fig9, run_fig9

#: name -> (description, needs_trace, run, format)
_FIGURES: Dict[str, Tuple[str, bool, Callable, Callable]] = {
    "fig3": (
        "Borg trace: max memory usage CDF",
        False,
        lambda seeds: run_fig3(seed=seeds[0]),
        format_fig3,
    ),
    "fig4": (
        "Borg trace: job duration CDF",
        False,
        lambda seeds: run_fig4(seed=seeds[0]),
        format_fig4,
    ),
    "fig5": (
        "Borg trace: concurrent jobs over the first 24 h",
        False,
        lambda seeds: run_fig5(seed=seeds[0]),
        format_fig5,
    ),
    "fig6": (
        "SGX process startup vs requested EPC size",
        False,
        lambda seeds: run_fig6(),
        format_fig6,
    ),
    "fig7": (
        "pending queue vs simulated EPC size (32..256 MiB)",
        True,
        lambda seeds: run_fig7(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig7,
    ),
    "fig8": (
        "waiting-time CDF for 0..100 % SGX job shares",
        True,
        lambda seeds: run_fig8(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig8,
    ),
    "fig9": (
        "waiting time vs requested memory, spread vs binpack",
        True,
        lambda seeds: run_fig9(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig9,
    ),
    "fig10": (
        "total turnaround per strategy and job type",
        True,
        lambda seeds: run_fig10(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig10,
    ),
    "fig11": (
        "malicious containers with and without EPC limits",
        True,
        lambda seeds: run_fig11(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig11,
    ),
    "ext-sgx2": (
        "extension: SGX 1 vs SGX 2 on a bursty enclave workload",
        False,
        lambda seeds: run_ext_sgx2(seed=seeds[1]),
        format_ext_sgx2,
    ),
    "ext-hybrid": (
        "extension: hybrid trusted/untrusted jobs, binding resource",
        False,
        lambda seeds: run_ext_hybrid(seed=seeds[1]),
        format_ext_hybrid,
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation figures of 'SGX-Aware Container "
            "Orchestration for Heterogeneous Clusters' (ICDCS 2018)."
        ),
    )
    parser.add_argument(
        "command",
        choices=sorted(_FIGURES) + ["all", "list"],
        help="figure to regenerate, 'all', or 'list'",
    )
    parser.add_argument(
        "--trace-seed",
        type=int,
        default=common.DEFAULT_TRACE_SEED,
        help="seed of the synthetic Borg trace (default %(default)s)",
    )
    parser.add_argument(
        "--run-seed",
        type=int,
        default=common.DEFAULT_RUN_SEED,
        help="seed of per-run randomness such as SGX job designation "
        "(default %(default)s)",
    )
    return parser


def _run_one(name: str, seeds: Tuple[int, int]) -> None:
    description, _needs_trace, run, formatter = _FIGURES[name]
    print(f"== {name}: {description} ==")
    print(formatter(run(seeds)))
    print()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    seeds = (args.trace_seed, args.run_seed)

    if args.command == "list":
        width = max(len(name) for name in _FIGURES)
        for name in sorted(_FIGURES):
            print(f"{name:{width}s}  {_FIGURES[name][0]}")
        return 0
    if args.command == "all":
        for name in sorted(_FIGURES):
            _run_one(name, seeds)
        return 0
    _run_one(args.command, seeds)
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
