"""Command-line interface: figures, single scenarios, and sweeps.

Usage::

    python -m repro list
    python -m repro fig7 [--trace-seed N] [--run-seed N]
    python -m repro all
    python -m repro run --scheduler spread --sgx-fraction 0.5 [--json]
    python -m repro run --trace synth-bursty:seed=3,jobs=500 --json
    python -m repro traces
    python -m repro sweep --grid sgx_fraction=0,0.5,1 --workers 4
    python -m repro profile --jobs 1000 --top 30 --collapsed-out out.txt
    python -m repro check --format json --baseline repro-check-baseline.json
    python -m repro record --seed 3 --ledger run.ledger.jsonl
    python -m repro diff a.ledger.jsonl b.ledger.jsonl
    python -m repro explain --ledger run.ledger.jsonl --pod sgx-job-4

The figure commands regenerate the paper's evaluation tables; ``run``
and ``sweep`` execute ad-hoc scenarios through :mod:`repro.api`, with
the same row formatter behind the table and ``--json`` output.
``profile`` runs one scenario under the profiling harness
(:mod:`repro.profiling`) and prints the top-frame table, optionally
writing flame-graph-compatible collapsed stacks.  ``check`` runs the
determinism & invariant static analysis (:mod:`repro.analysis`) over
the source tree.  The observability trio drives :mod:`repro.obs`:
``record`` runs any ``run`` scenario with the decision ledger (and
optionally span trace / metrics snapshot) enabled, ``diff`` compares
two ledgers and pinpoints the first diverging decision, and
``explain`` reconstructs one pod's lifecycle from a ledger.  Exit
status is 0 on success, 1 when ``check`` has findings or ``diff``
found divergence, 2 on usage errors (including unknown scheduler/
workload/grid-field names, missing ledger files and unknown pod
names, which die before anything runs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .api import ObserveConfig, Scenario, Sweep
from .constants import DEFAULT_RUN_SEED, DEFAULT_TRACE_SEED
from .errors import RegistryError, SimulationError, TraceError
from .experiments import common
from .experiments.ext_hybrid import format_ext_hybrid, run_ext_hybrid
from .experiments.ext_sgx2 import format_ext_sgx2, run_ext_sgx2
from .experiments.fig10_turnaround import format_fig10, run_fig10
from .experiments.fig11_limits import format_fig11, run_fig11
from .experiments.fig3_memory_cdf import format_fig3, run_fig3
from .experiments.fig4_duration_cdf import format_fig4, run_fig4
from .experiments.fig5_concurrency import format_fig5, run_fig5
from .experiments.fig6_startup import format_fig6, run_fig6
from .experiments.fig7_epc_sizes import format_fig7, run_fig7
from .experiments.fig8_waiting_cdf import format_fig8, run_fig8
from .experiments.fig9_strategies import format_fig9, run_fig9
from .profiling import (
    DEFAULT_SAMPLE_INTERVAL,
    DEFAULT_TOP,
    profile_scenario,
)
from .trace.adapters import trace_catalogue
from .trace.spec import make_trace_spec
from .units import mib

#: name -> (description, needs_trace, run, format)
_FIGURES: Dict[str, Tuple[str, bool, Callable, Callable]] = {
    "fig3": (
        "Borg trace: max memory usage CDF",
        False,
        lambda seeds: run_fig3(seed=seeds[0]),
        format_fig3,
    ),
    "fig4": (
        "Borg trace: job duration CDF",
        False,
        lambda seeds: run_fig4(seed=seeds[0]),
        format_fig4,
    ),
    "fig5": (
        "Borg trace: concurrent jobs over the first 24 h",
        False,
        lambda seeds: run_fig5(seed=seeds[0]),
        format_fig5,
    ),
    "fig6": (
        "SGX process startup vs requested EPC size",
        False,
        lambda seeds: run_fig6(),
        format_fig6,
    ),
    "fig7": (
        "pending queue vs simulated EPC size (32..256 MiB)",
        True,
        lambda seeds: run_fig7(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig7,
    ),
    "fig8": (
        "waiting-time CDF for 0..100 % SGX job shares",
        True,
        lambda seeds: run_fig8(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig8,
    ),
    "fig9": (
        "waiting time vs requested memory, spread vs binpack",
        True,
        lambda seeds: run_fig9(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig9,
    ),
    "fig10": (
        "total turnaround per strategy and job type",
        True,
        lambda seeds: run_fig10(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig10,
    ),
    "fig11": (
        "malicious containers with and without EPC limits",
        True,
        lambda seeds: run_fig11(
            trace=common.default_trace(seeds[0]), seed=seeds[1]
        ),
        format_fig11,
    ),
    "ext-sgx2": (
        "extension: SGX 1 vs SGX 2 on a bursty enclave workload",
        False,
        lambda seeds: run_ext_sgx2(seed=seeds[1]),
        format_ext_sgx2,
    ),
    "ext-hybrid": (
        "extension: hybrid trusted/untrusted jobs, binding resource",
        False,
        lambda seeds: run_ext_hybrid(seed=seeds[1]),
        format_ext_hybrid,
    ),
}

def _seed_flags() -> argparse.ArgumentParser:
    """Shared ``--trace-seed``/``--run-seed`` flags (figure commands)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace-seed",
        type=int,
        default=DEFAULT_TRACE_SEED,
        help="seed of the synthetic Borg trace (default %(default)s)",
    )
    parent.add_argument(
        "--run-seed",
        type=int,
        default=DEFAULT_RUN_SEED,
        help="seed of per-run randomness such as SGX job designation "
        "(default %(default)s)",
    )
    return parent


def _scenario_flags() -> argparse.ArgumentParser:
    """Shared scenario-building flags (``run``/``sweep`` commands)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scheduler",
        default="binpack",
        help="registered strategy name (default %(default)s)",
    )
    parent.add_argument(
        "--workload",
        default="stress",
        help="registered workload name (default %(default)s)",
    )
    parent.add_argument(
        "--sgx-fraction",
        type=float,
        default=0.0,
        help="share of jobs designated SGX-enabled (default %(default)s)",
    )
    parent.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_RUN_SEED,
        help="per-run randomness seed (default %(default)s)",
    )
    parent.add_argument(
        "--trace",
        metavar="SPEC",
        default=None,
        help="trace spec 'name:key=val,...' resolved through the "
        "trace-adapter registry, e.g. 'borg-synth:seed=7,jobs=500' "
        "or 'google2019:path=ev.jsonl,window=1h,sample=0.05'; "
        "'repro traces' lists the catalogue (default: the paper's "
        "scaled Borg slice)",
    )
    parent.add_argument(
        "--trace-seed",
        type=int,
        default=None,
        help="seed of the synthetic Borg trace (shorthand for "
        "--trace borg-synth:seed=N; default "
        f"{DEFAULT_TRACE_SEED})",
    )
    parent.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="trace jobs (shorthand for --trace borg-synth:jobs=N; "
        "default: the paper's 663-job slice)",
    )
    parent.add_argument(
        "--epc-mib",
        type=float,
        default=None,
        help="simulated PRM size in MiB (default: the paper's 128)",
    )
    parent.add_argument(
        "--preemption-policy",
        default="none",
        help="registered preemption planner consulted for "
        "high-priority pods the pass cannot place (default "
        "%(default)s: the paper's non-preemptive scheduling)",
    )
    parent.add_argument(
        "--priority-threshold",
        type=int,
        default=100,
        help="minimum pod priority that may trigger preemption "
        "(default %(default)s)",
    )
    parent.add_argument(
        "--event-driven",
        action="store_true",
        help="fire scheduling passes on cluster events",
    )
    parent.add_argument(
        "--indexed",
        action="store_true",
        help="schedule batches against the node-candidate index",
    )
    parent.add_argument(
        "--no-state-cache",
        action="store_true",
        help="rescan the TSDB window instead of the aggregate cache",
    )
    parent.add_argument(
        "--cells",
        type=int,
        default=None,
        help="shard the cluster into N scheduling cells under a "
        "global dispatcher (default: the flat single-scheduler "
        "path; --cells 1 runs the sharded machinery, bit-for-bit "
        "equal to it)",
    )
    parent.add_argument(
        "--cell-policy",
        default="balanced",
        dest="cell_policy",
        help="registered cell partition policy splitting nodes "
        "across --cells (default %(default)s)",
    )
    parent.add_argument(
        "--cluster-workers",
        type=int,
        default=None,
        help="cluster scale: N standard + N SGX workers "
        "(default: the paper's 2+2 testbed)",
    )
    parent.add_argument(
        "--json",
        action="store_true",
        help="emit the structured JSON document instead of a table",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation figures of 'SGX-Aware Container "
            "Orchestration for Heterogeneous Clusters' (ICDCS 2018), or "
            "run ad-hoc scenarios and sweeps through the scenario API."
        ),
    )
    subparsers = parser.add_subparsers(
        dest="command", metavar="command", required=True
    )
    seeds = _seed_flags()
    for name in sorted(_FIGURES):
        subparsers.add_parser(
            name,
            parents=[seeds],
            # argparse %-expands help strings; descriptions contain
            # literal percent signs ("0..100 % SGX job shares").
            help=_FIGURES[name][0].replace("%", "%%"),
        )
    subparsers.add_parser(
        "all", parents=[seeds], help="regenerate every figure"
    )
    subparsers.add_parser(
        "list", parents=[seeds], help="list the available commands"
    )
    traces_parser = subparsers.add_parser(
        "traces",
        help="list the registered trace adapters (the --trace catalogue)",
    )
    traces_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the catalogue as a JSON array",
    )

    scenario_flags = _scenario_flags()
    run_parser = subparsers.add_parser(
        "run",
        parents=[scenario_flags],
        help="run one scenario built from flags",
    )
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shorthand for --cluster-workers (on sweep, --workers "
        "is the process-pool size instead)",
    )
    sweep_parser = subparsers.add_parser(
        "sweep",
        parents=[scenario_flags],
        help="run a grid of scenario variations",
    )
    sweep_parser.add_argument(
        "--grid",
        action="append",
        required=True,
        metavar="FIELD=V1,V2,...",
        help="sweep axis over a scenario field (repeatable; axes are "
        "crossed); 'epc_mib' is accepted as a convenience alias",
    )
    sweep_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size executing the sweep (default serial)",
    )
    profile_parser = subparsers.add_parser(
        "profile",
        parents=[scenario_flags],
        help="profile one scenario: top frames + collapsed stacks",
    )
    profile_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shorthand for --cluster-workers (as on run)",
    )
    profile_parser.add_argument(
        "--top",
        type=int,
        default=DEFAULT_TOP,
        help="frames kept in the tottime table (default %(default)s)",
    )
    profile_parser.add_argument(
        "--sample-interval",
        type=float,
        default=DEFAULT_SAMPLE_INTERVAL,
        help="stack-sampling period in seconds; 0 disables sampling "
        "(default %(default)s)",
    )
    profile_parser.add_argument(
        "--collapsed-out",
        metavar="PATH",
        default=None,
        help="write flamegraph.pl-compatible collapsed stacks here",
    )
    record_parser = subparsers.add_parser(
        "record",
        parents=[scenario_flags],
        help="run one scenario with the decision ledger enabled",
        description=(
            "Run one scenario (same flags as 'run') with the "
            "observability exports on: every scheduling decision goes "
            "to a repro.ledger/v1 JSONL file, and optionally a Chrome "
            "trace (open in Perfetto) and a Prometheus metrics "
            "snapshot.  The run itself is bit-for-bit identical to "
            "the unobserved one."
        ),
    )
    record_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shorthand for --cluster-workers (as on run)",
    )
    record_parser.add_argument(
        "--ledger",
        metavar="PATH",
        required=True,
        help="write the decision ledger (repro.ledger/v1 JSONL) here",
    )
    record_parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also write a Chrome trace-event JSON of the run's spans",
    )
    record_parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="also write a Prometheus text-format metrics snapshot",
    )
    diff_parser = subparsers.add_parser(
        "diff",
        help="compare two decision ledgers, pinpoint the divergence",
        description=(
            "Walk two repro.ledger/v1 files in lockstep, report "
            "hit/diff statistics, and show the first diverging "
            "decision with context from both sides plus the config "
            "knobs that differ.  Exit 0 when the decision streams are "
            "identical, 1 when they diverge, 2 on unreadable inputs."
        ),
    )
    diff_parser.add_argument(
        "left", metavar="A.jsonl", help="baseline ledger file"
    )
    diff_parser.add_argument(
        "right", metavar="B.jsonl", help="candidate ledger file"
    )
    diff_parser.add_argument(
        "--context",
        type=int,
        default=3,
        help="matching records shown around the first divergence "
        "(default %(default)s)",
    )
    diff_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the structured diff document instead of text",
    )
    explain_parser = subparsers.add_parser(
        "explain",
        help="reconstruct one pod's lifecycle from a decision ledger",
        description=(
            "Replay one pod's story out of a repro.ledger/v1 file: "
            "when it was submitted, how many passes deferred it and "
            "why (EPC vs memory vs CPU), where it was placed, and any "
            "requeues, evictions, preemptions, migrations or cell "
            "spillovers along the way.  Exit 2 when the ledger is "
            "unreadable or the pod never appears in it."
        ),
    )
    explain_parser.add_argument(
        "--ledger",
        metavar="PATH",
        required=True,
        help="the repro.ledger/v1 JSONL file to read",
    )
    explain_parser.add_argument(
        "--pod",
        metavar="NAME",
        required=True,
        help="the pod name to explain",
    )
    explain_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the structured lifecycle report instead of text",
    )
    check_parser = subparsers.add_parser(
        "check",
        help="run the determinism & invariant static analysis",
    )
    check_parser.add_argument(
        "--root",
        metavar="PATH",
        default=None,
        help="source tree to analyse (default: the installed repro "
        "package)",
    )
    check_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (json follows schema repro.check/v1)",
    )
    check_parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="JSON baseline of reviewed findings to grandfather",
    )
    check_parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        default=None,
        help="write the current findings as the new baseline and exit 0",
    )
    check_parser.add_argument(
        "--rules",
        metavar="RULE1,RULE2,...",
        default=None,
        help="run only these rule codes (default: all registered)",
    )
    return parser


def _coerce(text: str) -> object:
    """Grid value literal: bool, int, float, else string."""
    stripped = text.strip()
    if stripped.lower() in ("true", "false"):
        return stripped.lower() == "true"
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        return stripped


def _parse_grid(
    specs: List[str], parser: argparse.ArgumentParser
) -> Dict[str, List[object]]:
    """``FIELD=V1,V2`` axes -> the Sweep grid mapping."""
    grid: Dict[str, List[object]] = {}
    for spec in specs:
        field, separator, raw_values = spec.partition("=")
        field = field.strip().replace("-", "_")
        values = [
            _coerce(value)
            for value in raw_values.split(",")
            if value.strip()
        ]
        if not separator or not field or not values:
            parser.error(
                f"--grid expects FIELD=V1,V2,... got {spec!r}"
            )
        if field == "epc_mib":
            field = "epc_total_bytes"
            if not all(
                isinstance(value, (int, float))
                and not isinstance(value, bool)
                for value in values
            ):
                parser.error(
                    f"--grid epc_mib values must be numbers, "
                    f"got {spec!r}"
                )
            values = [int(mib(value)) for value in values]
        if field in grid:
            parser.error(
                f"--grid axis {field!r} given twice; list every "
                f"value in one FIELD=V1,V2,... spec"
            )
        grid[field] = values
    return grid


def _trace_spec(args: argparse.Namespace) -> Optional[str]:
    """The ``trace=`` spec the shared flags describe, if any.

    ``--trace-seed``/``--jobs`` are shorthands that fold into a
    ``borg-synth`` spec (so the CLI never routes through the
    deprecated scenario knobs); combined with an explicit ``--trace``
    they would contradict it and die as a usage error.
    """
    shorthands = {}
    if args.trace_seed is not None:
        shorthands["seed"] = args.trace_seed
    if args.jobs is not None:
        # build_trace scales the over-allocator share with the count.
        shorthands["jobs"] = args.jobs
    if args.trace is not None:
        if shorthands:
            flags = "/".join(
                "--trace-seed" if key == "seed" else "--jobs"
                for key in sorted(shorthands)
            )
            raise SimulationError(
                f"--trace conflicts with {flags}; fold the value "
                f"into the spec (e.g. --trace borg-synth:seed=7)"
            )
        return args.trace
    if shorthands:
        return make_trace_spec("borg-synth", shorthands.items())
    return None


def _base_scenario(args: argparse.Namespace) -> Scenario:
    """The scenario described by the shared ``run``/``sweep`` flags."""
    kwargs: Dict[str, object] = dict(
        scheduler=args.scheduler,
        workload=args.workload,
        sgx_fraction=args.sgx_fraction,
        seed=args.seed,
        event_driven=args.event_driven,
        indexed_scheduling=args.indexed,
        use_state_cache=not args.no_state_cache,
        preemption_policy=args.preemption_policy,
        preemption_priority_threshold=args.priority_threshold,
    )
    if args.cells is not None:
        kwargs["cells"] = args.cells
        kwargs["cell_policy"] = args.cell_policy
    trace = _trace_spec(args)
    if trace is not None:
        kwargs["trace"] = trace
    if args.epc_mib is not None:
        kwargs["epc_total_bytes"] = int(mib(args.epc_mib))
    cluster_workers = args.cluster_workers
    if cluster_workers is None and args.command in (
        "run", "profile", "record"
    ):
        # ``repro run --workers`` is the documented shorthand (and
        # ``profile`` mirrors ``run``); on sweep, --workers is the
        # process-pool size instead.
        cluster_workers = getattr(args, "workers", None)
    if cluster_workers is not None:
        kwargs["standard_workers"] = cluster_workers
        kwargs["sgx_workers"] = cluster_workers
    return Scenario(**kwargs)


def _cmd_run(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    try:
        scenario = _base_scenario(args)
    except (
        SimulationError, RegistryError, TraceError, TypeError, ValueError
    ) as exc:
        parser.error(str(exc))
    try:
        result = scenario.run()
    except TraceError as exc:
        # File-backed specs resolve lazily at run time; a missing or
        # corrupt trace file is user input, not an internal failure.
        parser.error(str(exc))
    print(result.to_json() if args.json else result.to_table())
    return 0


def _cmd_record(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    try:
        scenario = _base_scenario(args).with_(
            observe=ObserveConfig(
                ledger_path=args.ledger,
                trace_path=args.trace_out,
                metrics_path=args.metrics_out,
            )
        )
    except (
        SimulationError, RegistryError, TraceError, TypeError, ValueError
    ) as exc:
        parser.error(str(exc))
    try:
        result = scenario.run()
    except TraceError as exc:
        parser.error(str(exc))
    except OSError as exc:
        # An unwritable --ledger/--trace-out/--metrics-out path is
        # user input, same class of mistake as a bad trace path.
        parser.error(str(exc))
    if args.json:
        document = json.loads(result.to_json())
        document["ledger"] = result.ledger_path
        document["trace"] = result.trace_path
        document["metrics"] = result.metrics_path
        print(json.dumps(document, indent=2))
        return 0
    print(result.to_table())
    print()
    print(f"ledger written to {result.ledger_path}")
    if result.trace_path is not None:
        print(f"trace written to {result.trace_path}")
    if result.metrics_path is not None:
        print(f"metrics written to {result.metrics_path}")
    return 0


def _cmd_diff(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from .obs import diff_ledgers, format_diff, load_ledger

    try:
        if args.context < 0:
            raise SimulationError(
                f"--context must be >= 0: {args.context}"
            )
        left = load_ledger(args.left)
        right = load_ledger(args.right)
    except SimulationError as exc:
        parser.error(str(exc))
    diff = diff_ledgers(left, right, context=args.context)
    if args.json:
        print(json.dumps(diff.to_dict(), indent=2))
    else:
        print(format_diff(diff))
    return 0 if diff.identical else 1


def _cmd_explain(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from .obs import explain_pod, format_explain, load_ledger

    try:
        ledger = load_ledger(args.ledger)
        report = explain_pod(ledger, args.pod)
    except SimulationError as exc:
        parser.error(str(exc))
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(format_explain(report))
    return 0


def _cmd_profile(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    try:
        scenario = _base_scenario(args)
        if args.top < 1:
            raise SimulationError(
                f"--top must be a positive integer: {args.top}"
            )
        if args.sample_interval < 0:
            raise SimulationError(
                f"--sample-interval must be >= 0: {args.sample_interval}"
            )
    except (
        SimulationError, RegistryError, TraceError, TypeError, ValueError
    ) as exc:
        parser.error(str(exc))
    try:
        result, report = profile_scenario(
            scenario, top=args.top, sample_interval=args.sample_interval
        )
    except TraceError as exc:
        parser.error(str(exc))
    if args.collapsed_out is not None:
        report.write_collapsed(args.collapsed_out)
    if args.json:
        document = report.to_dict()
        document["result"] = result.to_row()
        print(json.dumps(document, indent=2))
        return 0
    print(result.to_table())
    print()
    print(
        f"profiled wall time {report.wall_seconds:.3f}s "
        f"({report.total_calls} calls, {report.sample_count} stack "
        f"samples)"
    )
    print()
    print(report.top_table())
    if args.collapsed_out is not None:
        print()
        print(f"collapsed stacks written to {args.collapsed_out}")
    return 0


def _cmd_sweep(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    grid = _parse_grid(args.grid, parser)
    try:
        # Construction covers all usage validation (field names,
        # value ranges, worker count); execution errors past this
        # point are real failures, not exit-2 usage errors.
        sweep = Sweep(_base_scenario(args), grid=grid, name="cli")
        if args.workers < 1:
            raise SimulationError(
                f"workers must be a positive integer: {args.workers}"
            )
    # TypeError/ValueError cover grid values that a structured field
    # rejects before validation proper (e.g. node_failures=5).
    except (
        SimulationError, RegistryError, TraceError, TypeError, ValueError
    ) as exc:
        parser.error(str(exc))
    try:
        outcome = sweep.run(workers=args.workers)
    except TraceError as exc:
        parser.error(str(exc))
    print(outcome.to_json() if args.json else outcome.to_table())
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    """The trace-adapter catalogue, one row per registered name."""
    entries = trace_catalogue()
    if args.json:
        print(
            json.dumps(
                [entry._asdict() for entry in entries], indent=2
            )
        )
        return 0
    width = max(len(entry.name) for entry in entries)
    for entry in entries:
        needs = " (needs path=...)" if entry.needs_path else ""
        print(f"{entry.name:{width}s}  {entry.summary}{needs}")
        print(f"{'':{width}s}  e.g. --trace {entry.spec_example}")
    return 0


def _cmd_check(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    # Imported here: the analysis machinery is pure stdlib, but no
    # other command needs it in its import graph.
    from .analysis import load_baseline, run_checks, write_baseline

    root = (
        Path(args.root) if args.root is not None else Path(__file__).parent
    )
    rules = None
    if args.rules is not None:
        rules = [
            rule.strip()
            for rule in args.rules.split(",")
            if rule.strip()
        ]
        if not rules:
            parser.error(f"--rules got no rule codes: {args.rules!r}")
    baseline = None
    if args.baseline is not None:
        try:
            baseline = load_baseline(Path(args.baseline))
        except SimulationError as exc:
            parser.error(str(exc))
    try:
        report = run_checks(root, rules=rules, baseline=baseline)
    except SimulationError as exc:
        parser.error(str(exc))
    if args.write_baseline is not None:
        reviewed = [
            finding
            for finding in report.findings
            if finding.rule not in ("NOQA001", "BASE001")
        ]
        write_baseline(Path(args.write_baseline), reviewed)
        print(
            f"baseline written: {len(reviewed)} finding(s) -> "
            f"{args.write_baseline}"
        )
        return 0
    print(
        report.to_json() if args.format == "json" else report.to_table()
    )
    return report.exit_code()


def _run_one(name: str, seeds: Tuple[int, int]) -> None:
    description, _needs_trace, run, formatter = _FIGURES[name]
    print(f"== {name}: {description} ==")
    print(formatter(run(seeds)))
    print()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        width = max(len(name) for name in _FIGURES)
        for name in sorted(_FIGURES):
            print(f"{name:{width}s}  {_FIGURES[name][0]}")
        print(f"{'run':{width}s}  one scenario from flags (repro.api)")
        print(f"{'sweep':{width}s}  a parallel grid of scenarios")
        print(
            f"{'profile':{width}s}  profile one scenario "
            f"(top frames + collapsed stacks)"
        )
        print(
            f"{'check':{width}s}  determinism & invariant static "
            f"analysis of the source tree"
        )
        print(
            f"{'record':{width}s}  one scenario with the decision "
            f"ledger (and span/metrics exports) on"
        )
        print(
            f"{'diff':{width}s}  compare two decision ledgers, "
            f"pinpoint the first divergence"
        )
        print(
            f"{'explain':{width}s}  reconstruct one pod's lifecycle "
            f"from a decision ledger"
        )
        print(
            f"{'traces':{width}s}  the registered trace adapters "
            f"(--trace catalogue)"
        )
        return 0
    if args.command == "traces":
        return _cmd_traces(args)
    if args.command == "all":
        seeds = (args.trace_seed, args.run_seed)
        for name in sorted(_FIGURES):
            _run_one(name, seeds)
        return 0
    if args.command == "run":
        return _cmd_run(args, parser)
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "profile":
        return _cmd_profile(args, parser)
    if args.command == "check":
        return _cmd_check(args, parser)
    if args.command == "record":
        return _cmd_record(args, parser)
    if args.command == "diff":
        return _cmd_diff(args, parser)
    if args.command == "explain":
        return _cmd_explain(args, parser)
    _run_one(args.command, (args.trace_seed, args.run_seed))
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
