"""Two-level sharded scheduling: cells, dispatcher, sharded engine.

The cluster splits into *cells* under a partition policy
(:mod:`~repro.cells.policies`, pluggable via
``@repro.registry.register_cell_policy``); each cell runs its own
scheduler over its own pending queue and event queue
(:mod:`~repro.cells.queue`, :mod:`~repro.cells.engine`); the global
dispatcher (:mod:`~repro.cells.dispatch`) routes submissions to cells
and spills persistently deferred pods across them.  The replay driver
tying it together is :class:`~repro.cells.runner.CellReplay`, entered
through ``Scenario(cells=...)`` / ``ReplayConfig(cells=...)`` /
``repro run --cells``.

Importing this package registers the built-in cell policies
(``balanced``, ``region``, ``capacity-class``).
"""

from .dispatch import Cell, GlobalDispatcher
from .engine import GLOBAL_CELL, CellEventHandle, ShardedEngine
from .policies import node_region, partition_nodes
from .queue import CellQueueRouter
from .runner import CellReplay

__all__ = [
    "GLOBAL_CELL",
    "Cell",
    "CellEventHandle",
    "CellQueueRouter",
    "CellReplay",
    "GlobalDispatcher",
    "ShardedEngine",
    "node_region",
    "partition_nodes",
]
