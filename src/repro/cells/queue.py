"""The sharded pending queue: one FCFS queue per cell, one facade.

The orchestrator talks to *a* pending queue
(:class:`repro.orchestrator.queue.PendingQueue`); in a sharded replay
that queue is this router — the same interface, backed by one real
``PendingQueue`` per cell plus a uid -> cell assignment map.  Pushes
consult the global dispatcher for a target cell; aggregate queries sum
over the cells; per-cell snapshots feed the per-cell scheduling
passes.

With one cell every operation delegates to the single underlying
queue, so the ``cells=1`` replay sees byte-identical queue behaviour —
the oracle gate leans on that.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, Iterator, List, Optional, Protocol

from ..errors import OrchestrationError
from ..orchestrator.pod import Pod
from ..orchestrator.queue import PendingQueue, _order_key


class CellRouter(Protocol):
    """What the queue needs from the dispatcher: a target cell."""

    def route(self, pod: Pod) -> int:  # pragma: no cover - protocol
        ...


class CellQueueRouter:
    """A :class:`PendingQueue`-shaped facade over per-cell queues."""

    __slots__ = (
        "requeue_backoff_seconds", "_queues", "_cell_of", "_router",
    )

    def __init__(
        self,
        cells: int,
        router: CellRouter,
        requeue_backoff_seconds: float = 0.0,
    ):
        if cells < 1:
            raise OrchestrationError(f"cells must be >= 1: {cells}")
        self.requeue_backoff_seconds = requeue_backoff_seconds
        self._queues: List[PendingQueue] = [
            PendingQueue(requeue_backoff_seconds=requeue_backoff_seconds)
            for _ in range(cells)
        ]
        #: pod uid -> cell id, for every queued pod.
        self._cell_of: Dict[str, int] = {}
        self._router = router

    @property
    def cell_count(self) -> int:
        return len(self._queues)

    def cell_len(self, cell: int) -> int:
        """Queued pods (backed off or not) in one cell."""
        return len(self._queues[cell])

    # -- mutation ----------------------------------------------------------

    def push(self, pod: Pod) -> None:
        """Enqueue a new pod in the cell the dispatcher routes it to."""
        if pod.uid in self._cell_of:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) already queued"
            )
        cell = self._router.route(pod)
        self._queues[cell].push(pod)
        self._cell_of[pod.uid] = cell

    def requeue(self, pod: Pod, now: float) -> float:
        """Reinsert a transiently failed pod, re-routed like a push.

        The failed launch already removed the pod from its cell, so the
        requeue consults the dispatcher again — a cell whose EPC just
        filled (the classic transient failure) deterministically scores
        worse than its peers.  Returns the backoff ``ready_at``.
        """
        if pod.uid in self._cell_of:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) already queued"
            )
        cell = self._router.route(pod)
        self._cell_of[pod.uid] = cell
        return self._queues[cell].requeue(pod, now)

    def remove(self, pod: Pod) -> None:
        """Remove a pod (scheduled or rejected) from its cell."""
        cell = self._cell_of.pop(pod.uid, None)
        if cell is None:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) is not queued"
            )
        self._queues[cell].remove(pod)

    def move(self, pod: Pod, target_cell: int) -> None:
        """Re-home a queued pod to *target_cell* (spillover).

        The pod keeps its ``(-priority, submitted_at, uid)`` order key
        — it enters the target cell exactly where its tier's FCFS
        order has it.  Only visible (non-backed-off) pods spill, so no
        ``ready_at`` state needs to travel.
        """
        cell = self._cell_of.get(pod.uid)
        if cell is None:
            raise OrchestrationError(
                f"pod {pod.name} (uid {pod.uid}) is not queued"
            )
        if not 0 <= target_cell < len(self._queues):
            raise OrchestrationError(
                f"unknown cell {target_cell}; have "
                f"[0, {len(self._queues)})"
            )
        if target_cell == cell:
            return
        self._queues[cell].remove(pod)
        self._queues[target_cell].push(pod)
        self._cell_of[pod.uid] = target_cell

    # -- membership --------------------------------------------------------

    def cell_of(self, pod: Pod) -> Optional[int]:
        """The cell holding *pod*, or ``None`` when not queued."""
        return self._cell_of.get(pod.uid)

    def __contains__(self, pod: Pod) -> bool:
        return pod.uid in self._cell_of

    def __len__(self) -> int:
        return len(self._cell_of)

    def __iter__(self) -> Iterator[Pod]:
        """Global scheduling-order iteration over a merged snapshot."""
        return iter(self.snapshot())

    def peek(self) -> Optional[Pod]:
        """The globally frontmost pending pod, or ``None``."""
        merged = self.snapshot()
        return merged[0] if merged else None

    # -- snapshots ---------------------------------------------------------

    def cell_snapshot(
        self, cell: int, now: Optional[float] = None
    ) -> List[Pod]:
        """One cell's eligible pods in scheduling order."""
        return self._queues[cell].snapshot(now)

    def snapshot(self, now: Optional[float] = None) -> List[Pod]:
        """All cells' eligible pods, merged in global scheduling order.

        The merge re-sorts by the queue's own order key, so reporting
        surfaces (queue samples, ``repro run`` summaries) see the same
        order a single flat queue would show.
        """
        if len(self._queues) == 1:
            return self._queues[0].snapshot(now)
        merged: List[Pod] = []
        for queue in self._queues:
            for pod in queue.snapshot(now):
                insort(merged, pod, key=_order_key)
        return merged

    def ready_count(self, now: float) -> int:
        """Pods eligible for scheduling at *now*, across all cells."""
        return sum(queue.ready_count(now) for queue in self._queues)

    def next_ready_at(self, now: float) -> Optional[float]:
        """Earliest backoff expiry still in the future, if any."""
        future = [
            ready_at
            for queue in self._queues
            if (ready_at := queue.next_ready_at(now)) is not None
        ]
        return min(future) if future else None

    # -- aggregates --------------------------------------------------------

    def total_requested_epc_pages(self) -> int:
        """Sum of EPC pages requested by queued pods, all cells."""
        return sum(
            queue.total_requested_epc_pages() for queue in self._queues
        )

    def total_requested_memory_bytes(self) -> int:
        """Sum of standard memory requested by queued pods, all cells."""
        return sum(
            queue.total_requested_memory_bytes()
            for queue in self._queues
        )
