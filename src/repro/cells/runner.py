"""The two-level sharded replay: per-cell passes over a global clock.

:class:`CellReplay` subclasses the flat replay driver and swaps three
things in: the :class:`~repro.cells.engine.ShardedEngine` (per-cell
event queues, deterministic merge), the
:class:`~repro.cells.queue.CellQueueRouter` injected as the
orchestrator's pending queue, and a per-tick scheduling step that runs
one pass *per cell* — each cell with its own scheduler instance (own
candidate index, own statics cache) over its own slice of the node
views and its own pending snapshot.

Determinism and the ``cells=1`` oracle gate shape every choice here:

* views are built **once per tick** (the state service is stateful —
  its fingerprint/clean-snapshot reuse must see the same call pattern
  as the flat oracle) and partitioned by the dispatcher's node map;
* cells execute in id order; within a cell the pass is byte-identical
  to the flat one (same ``scheduling_pass`` code path);
* pods a cell cannot ever host are re-routed by the dispatcher at
  pass time — or rejected exactly like the oracle when *no* cell can
  host them;
* pods a cell keeps deferring spill to the next-best feasible cell
  after ``cell_spillover_after`` consecutive deferrals.

With one cell the router delegates to a single queue, the dispatcher
routes everything to cell 0 and never spills, and the engine's shared
sequence counter makes the merge order equal the flat heap's — the
whole construction collapses, bit for bit, onto the oracle.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..orchestrator.controller import Orchestrator
from ..orchestrator.pod import Pod
from ..simulation.runner import (
    ReplayConfig,
    _Replay,
    make_preemption_policy,
    make_scheduler,
)
from .dispatch import Cell, GlobalDispatcher
from .engine import GLOBAL_CELL, ShardedEngine
from .policies import partition_nodes
from .queue import CellQueueRouter


class CellReplay(_Replay):
    """One sharded replay in flight; built by ``run_replay``."""

    __slots__ = (
        "cells", "dispatcher", "router", "_deferral_streaks",
        "_rerouted_uids",
    )

    def __init__(self, trace, config: ReplayConfig):
        assert config.cells is not None
        super().__init__(trace, config)

    # -- construction hooks ------------------------------------------------

    def _make_orchestrator(self) -> Orchestrator:
        """Partition the cluster, then build the control plane around
        the cell router instead of the flat queue."""
        config = self.config
        cell_count = config.cells
        assert cell_count is not None
        assignment = partition_nodes(
            self.cluster.nodes,
            cell_count,
            config.cell_policy,
            seed=config.seed,
        )
        names_by_cell: List[List[str]] = [[] for _ in range(cell_count)]
        for node in self.cluster.nodes:
            names_by_cell[assignment[node.name]].append(node.name)
        self.cells = [
            Cell(cell_id, names, make_scheduler(config))
            for cell_id, names in enumerate(names_by_cell)
        ]
        self.dispatcher = GlobalDispatcher(self.cells)
        self.router = CellQueueRouter(
            cell_count,
            self.dispatcher,
            requeue_backoff_seconds=config.requeue_backoff_seconds,
        )
        self._deferral_streaks: Dict[str, int] = {}
        self._rerouted_uids: Set[str] = set()
        orchestrator = Orchestrator(
            self.cluster,
            perf_model=self.perf,
            use_state_cache=config.use_state_cache,
            requeue_backoff_seconds=config.requeue_backoff_seconds,
            preemption_policy=make_preemption_policy(config),
            preemption_priority_threshold=(
                config.preemption_priority_threshold
            ),
            queue=self.router,
            observer=self.obs,
        )
        self.dispatcher.bind(
            orchestrator.kubelets,
            self.router,
            {node.name: node for node in self.cluster.nodes},
        )
        return orchestrator

    def _make_engine(self) -> ShardedEngine:
        assert self.config.cells is not None
        return ShardedEngine(cells=self.config.cells)

    # -- cell-routed event scheduling --------------------------------------

    def _cell_of_node(self, node_name: str) -> int:
        return self.dispatcher.cell_of_node.get(node_name, GLOBAL_CELL)

    def _schedule_start(self, pod: Pod, startup_seconds: float) -> None:
        assert pod.node_name is not None
        self.engine.schedule_in(
            startup_seconds,
            lambda p=pod: self._start(p),
            self._cell_of_node(pod.node_name),
        )

    def _reschedule_node(self, node_name: str, now: float) -> None:
        """The flat reschedule loop, landing events in the node's cell.

        Identical arithmetic and call order to the base method — the
        only change is the ``cell`` argument, which keeps a node's
        finish events in its own cell's queue (and migrates them with
        the job on a cross-cell rebalance, via the fused cancel).
        """
        jobs = self._node_jobs.get(node_name)
        if not jobs:
            return
        cell = self._cell_of_node(node_name)
        epc_slowdown = -1.0
        reschedule_in = self.engine.reschedule_in
        for job in jobs.values():
            if job.uses_epc:
                if epc_slowdown < 0.0:
                    epc_slowdown = self._node_slowdown(node_name, True)
                slowdown = epc_slowdown
            else:
                slowdown = 1.0
            job.rate = 1.0 / slowdown
            job.finish_handle = reschedule_in(
                job.finish_handle,
                job.remaining_work * slowdown,
                job.finish_action,
                cell,
            )

    # -- the per-cell scheduling step --------------------------------------

    def _execute_pass(self, now: float) -> None:
        """One scheduling pass per cell, in cell-id order.

        The pending snapshots are taken up front (a pass must not see
        pods another cell's pass just re-routed *this tick*), the
        views are built once and sliced by the node map, and each
        cell's pass outcome feeds the shared bookkeeping.  Preemption,
        requeues and rejections all run inside the per-cell pass,
        byte-identically to the flat path.
        """
        router = self.router
        pending_by_cell = [
            router.cell_snapshot(cell.cell_id, now) for cell in self.cells
        ]
        views_by_cell: List[List] = [[] for _ in self.cells]
        if any(pending_by_cell):
            # Built once per tick, exactly like the flat oracle: the
            # state service's fingerprint/clean-snapshot reuse is
            # stateful, so extra builds would change later skip
            # decisions.  An all-empty tick builds nothing, also like
            # the oracle.
            cell_of_node = self.dispatcher.cell_of_node
            for view in self.orchestrator.state_service.build_views(now):
                cell_id = cell_of_node.get(view.name)
                if cell_id is not None:
                    views_by_cell[cell_id].append(view)
        self._rerouted_uids.clear()
        deferred_by_cell: List[List[Pod]] = []
        spans = self.obs.spans
        for cell in self.cells:
            span_start = spans.begin()
            result = self.orchestrator.scheduling_pass(
                cell.scheduler,
                now,
                pending=pending_by_cell[cell.cell_id],
                views=views_by_cell[cell.cell_id],
                on_unschedulable=(
                    lambda pod, current=cell.cell_id: (
                        self._reroute_unschedulable(pod, current)
                    )
                ),
            )
            spans.end(span_start, "cell_pass", now, cell.cell_id)
            self._consume_pass_result(result, now)
            deferred_by_cell.append(result.deferred)
        self._update_spillover(deferred_by_cell)

    def _reroute_unschedulable(self, pod: Pod, current: int) -> bool:
        """A cell-local ``can_ever_fit`` failure: spill or reject.

        ``True`` moves the pod to a feasible cell (it stays pending);
        ``False`` means no cell in the cluster could ever host it —
        the pass rejects it, matching the flat oracle's verdict.
        """
        target = self.dispatcher.spill_target(pod, current)
        if target is None:
            return False
        self.router.move(pod, target)
        self._rerouted_uids.add(pod.uid)
        self._deferral_streaks.pop(pod.uid, None)
        self.spillover_count += 1
        ledger = self.obs.ledger
        if ledger.enabled:
            ledger.emit(
                self.engine.now, "spillover",
                pod=pod.name, from_cell=current, to_cell=target,
                cause="unschedulable",
            )
        return True

    def _update_spillover(
        self, deferred_by_cell: List[List[Pod]]
    ) -> None:
        """Advance deferral streaks; spill the persistently deferred.

        A pod deferred ``cell_spillover_after`` ticks in a row moves
        to the next-best feasible cell — but only one whose queue is
        strictly shorter than its current cell's, so a *globally*
        saturated cluster does not ping-pong its whole backlog between
        equally overloaded cells every tick.  Pods that progressed —
        placed, killed, or just not deferred this tick — drop out of
        the streak table because it is rebuilt from this tick's
        deferrals only; a pod that stays keeps retrying the spill on
        every subsequent deferred tick.
        """
        threshold = self.config.cell_spillover_after
        router = self.router
        streaks: Dict[str, int] = {}
        for cell, deferred in zip(
            self.cells, deferred_by_cell, strict=True
        ):
            for pod in deferred:
                uid = pod.uid
                if uid in self._rerouted_uids:
                    continue  # fresh in its new cell; streak restarts
                if pod not in router:
                    continue  # left the queue mid-pass (preemption)
                streak = self._deferral_streaks.get(uid, 0) + 1
                if streak >= threshold:
                    target = self.dispatcher.spill_target(
                        pod, cell.cell_id
                    )
                    if target is not None and (
                        router.cell_len(target)
                        < router.cell_len(cell.cell_id)
                    ):
                        router.move(pod, target)
                        self.spillover_count += 1
                        ledger = self.obs.ledger
                        if ledger.enabled:
                            ledger.emit(
                                self.engine.now, "spillover",
                                pod=pod.name,
                                from_cell=cell.cell_id,
                                to_cell=target,
                                cause="deferred",
                            )
                        continue
                streaks[uid] = streak
        self._deferral_streaks = streaks

    # -- node churn --------------------------------------------------------

    def _crash_node(self, node_name: str) -> None:
        # The dispatcher must forget the node *before* the base class
        # resubmits its orphans: their re-routing must not count the
        # dead node's capacity or hardware classes.
        live_nodes = {
            node.name: node
            for node in self.cluster.nodes
            if node.name != node_name
        }
        self.dispatcher.note_node_removed(node_name, live_nodes)
        super()._crash_node(node_name)
