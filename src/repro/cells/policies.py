"""Cell partition policies: how the cluster splits into cells.

A policy is a pure function from the node inventory to a total
assignment ``node name -> cell id``.  Everything downstream — the
per-cell schedulers, the dispatcher's feasibility classes, the sharded
event merge — assumes the assignment is *total*: every node lands in
exactly one cell and every id is in ``[0, cells)``.
:func:`partition_nodes` enforces that contract on every policy call,
built-in or plugin, so a broken plugin dies with a precise error
instead of silently dropping nodes from scheduling.

Determinism: policies must not consult Python's salted ``hash()`` or
any ambient randomness.  The ``balanced`` policy keys its shuffle on
``zlib.crc32`` of the node name mixed with the seed — stable across
processes and runs, which the bit-for-bit replay gate requires.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Sequence, Tuple

from ..cluster.node import Node
from ..errors import SimulationError
from ..registry import CELLS, register_cell_policy


def partition_nodes(
    nodes: Sequence[Node],
    cells: int,
    policy: str,
    seed: int = 0,
) -> Dict[str, int]:
    """Split *nodes* into *cells* cells under the named *policy*.

    Looks the policy up in :data:`repro.registry.CELLS`, calls it with
    the standard kwargs and validates totality: the returned mapping
    must cover every node exactly once with ids in ``[0, cells)``.
    Returns the validated assignment (insertion order follows the node
    inventory order, not the policy's return order).
    """
    if cells < 1:
        raise SimulationError(f"cells must be >= 1: {cells}")
    factory = CELLS.get(policy)
    assignment = factory(nodes=nodes, cells=cells, seed=seed)
    names = [node.name for node in nodes]
    missing = [name for name in names if name not in assignment]
    if missing:
        raise SimulationError(
            f"cell policy {policy!r} dropped node(s): "
            f"{', '.join(missing)}"
        )
    extra = sorted(set(assignment) - set(names))
    if extra:
        raise SimulationError(
            f"cell policy {policy!r} invented node(s): "
            f"{', '.join(extra)}"
        )
    validated: Dict[str, int] = {}
    for name in names:
        cell = assignment[name]
        if not isinstance(cell, int) or isinstance(cell, bool):
            raise SimulationError(
                f"cell policy {policy!r} assigned non-int cell "
                f"{cell!r} to {name}"
            )
        if not 0 <= cell < cells:
            raise SimulationError(
                f"cell policy {policy!r} assigned {name} to cell "
                f"{cell}, outside [0, {cells})"
            )
        validated[name] = cell
    return validated


def _stable_rank(name: str, seed: int) -> Tuple[int, str]:
    """A process-stable pseudo-random sort key for a node name.

    ``zlib.crc32`` rather than ``hash()``: the builtin is salted per
    process, which would make partitions differ between a replay and
    its pool-worker rerun.  The name itself breaks crc collisions.
    """
    payload = f"{seed}:{name}".encode("utf-8")
    return (zlib.crc32(payload), name)


@register_cell_policy("balanced")
def balanced_cells(
    nodes: Sequence[Node], cells: int, seed: int = 0
) -> Dict[str, int]:
    """Even-sized cells from a seeded hash shuffle of the node names.

    Nodes are ordered by a crc32-keyed shuffle (seed-dependent, salt
    free) and dealt round-robin, so cell sizes differ by at most one
    and hardware of every kind spreads roughly evenly — the default
    when no topology information is available.
    """
    ordered = sorted(
        (node.name for node in nodes),
        key=lambda name: _stable_rank(name, seed),
    )
    return {name: i % cells for i, name in enumerate(ordered)}


def node_region(name: str) -> str:
    """The region implied by a node name: its non-numeric prefix.

    The inventory builders name nodes ``worker-3`` / ``sgx-worker-1``
    / ``rack2-node-7``; everything before the trailing numeric index
    is treated as the region label.  Names without a numeric suffix
    are their own region.
    """
    prefix, _, suffix = name.rpartition("-")
    if prefix and suffix.isdigit():
        return prefix
    return name


@register_cell_policy("region")
def region_cells(
    nodes: Sequence[Node], cells: int, seed: int = 0
) -> Dict[str, int]:
    """Cells follow the name-derived regions of the inventory.

    Regions (node-name prefixes, see :func:`node_region`) are sorted
    and dealt round-robin onto cells, so co-named nodes stay together
    while more regions than cells still fill every cell.  The seed is
    unused — regions are a physical fact — but accepted for the
    uniform factory contract.
    """
    del seed  # regions are topology, not chance
    regions = sorted({node_region(node.name) for node in nodes})
    region_cell = {region: i % cells for i, region in enumerate(regions)}
    return {
        node.name: region_cell[node_region(node.name)] for node in nodes
    }


@register_cell_policy("capacity-class")
def capacity_class_cells(
    nodes: Sequence[Node], cells: int, seed: int = 0
) -> Dict[str, int]:
    """Cells group nodes of identical hardware shape.

    A class is ``(sgx_capable, cpu, memory, epc)`` — nodes of the same
    class are interchangeable to the feasibility filter, so keeping a
    class inside one cell makes the dispatcher's feasibility routing
    exact for it.  Classes are sorted (SGX last, then by size) and
    dealt round-robin onto cells.  The seed is unused.
    """
    del seed  # capacity classes are hardware facts, not chance
    classes: List[Tuple[bool, int, int, int]] = sorted(
        {
            (
                node.sgx_capable,
                node.capacity.cpu_millicores,
                node.capacity.memory_bytes,
                node.capacity.epc_pages,
            )
            for node in nodes
        }
    )
    class_cell = {cls: i % cells for i, cls in enumerate(classes)}
    return {
        node.name: class_cell[
            (
                node.sgx_capable,
                node.capacity.cpu_millicores,
                node.capacity.memory_bytes,
                node.capacity.epc_pages,
            )
        ]
        for node in nodes
    }
