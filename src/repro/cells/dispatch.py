"""The global dispatcher: pod -> cell routing and spillover.

Two-level scheduling splits placement into a cheap global decision —
*which cell should try this pod* — and the existing per-cell
scheduling pass.  The dispatcher owns the global decision.  Its
routing inputs are deliberately coarse and O(cells):

* **feasibility class** — per cell, the distinct node hardware shapes
  ``(sgx_capable, capacity)``; a pod is feasible in a cell iff some
  shape could ever host it (the cell-local mirror of
  :func:`repro.scheduler.filtering.can_ever_fit`);
* **load** — the cell's pending-queue length;
* **EPC availability** — for SGX pods, the cell's advertised-minus-
  committed EPC pages (integer arithmetic over kubelet commitments,
  no measurements: routing must not perturb the metrics pipeline).

Every tie breaks on the cell id, so routing is a pure deterministic
function of queue state — the replay's bit-for-bit gate extends
through it.  **Spillover** handles the misrouted remainder: a pod a
cell keeps deferring is re-routed to the next-best feasible cell, and
a pod its cell can *never* host is re-routed immediately (or rejected
when no cell can host it, exactly like the flat oracle).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.node import Node
from ..cluster.resources import ResourceVector
from ..errors import OrchestrationError
from ..orchestrator.kubelet import Kubelet
from ..orchestrator.pod import Pod
from ..scheduler.base import Scheduler
from .queue import CellQueueRouter

#: A node hardware shape: SGX capability plus total capacity.
CapacityClass = Tuple[bool, ResourceVector]


class Cell:
    """One cell: its member nodes and its private scheduler."""

    __slots__ = ("cell_id", "node_names", "scheduler", "_classes")

    def __init__(
        self,
        cell_id: int,
        node_names: Sequence[str],
        scheduler: Scheduler,
    ):
        self.cell_id = cell_id
        #: Member node names in cluster registration order.
        self.node_names: List[str] = list(node_names)
        #: The cell-local strategy instance: its own candidate index,
        #: its own statics cache — nothing shared across cells.
        self.scheduler = scheduler
        self._classes: List[CapacityClass] = []

    def rebuild_classes(self, nodes: Mapping[str, Node]) -> None:
        """Recompute the distinct hardware shapes of the live members."""
        shapes = {
            (node.sgx_capable, node.capacity)
            for name in self.node_names
            if (node := nodes.get(name)) is not None
        }
        self._classes = sorted(
            shapes,
            key=lambda cls: (
                cls[0],
                cls[1].cpu_millicores,
                cls[1].memory_bytes,
                cls[1].epc_pages,
            ),
        )

    def could_ever_fit(self, pod: Pod) -> bool:
        """Whether some member shape could ever host *pod*."""
        requests = pod.spec.resources.requests
        needs_sgx = pod.requires_sgx
        for sgx_capable, capacity in self._classes:
            if needs_sgx and not sgx_capable:
                continue
            if requests.fits_within(capacity):
                return True
        return False


class GlobalDispatcher:
    """Routes pods to cells; owns the node -> cell map."""

    __slots__ = ("cells", "cell_of_node", "_kubelets", "_queue")

    def __init__(self, cells: Sequence[Cell]):
        self.cells: List[Cell] = list(cells)
        self.cell_of_node: Dict[str, int] = {}
        for cell in self.cells:
            for name in cell.node_names:
                self.cell_of_node[name] = cell.cell_id
        self._kubelets: Mapping[str, Kubelet] = {}
        self._queue: Optional[CellQueueRouter] = None

    def bind(
        self,
        kubelets: Mapping[str, Kubelet],
        queue: CellQueueRouter,
        nodes: Mapping[str, Node],
    ) -> None:
        """Late-bind the live cluster state the routing score reads.

        *kubelets* must be the orchestrator's own dict (mutated in
        place on churn), so the dispatcher always scores live nodes.
        """
        self._kubelets = kubelets
        self._queue = queue
        for cell in self.cells:
            cell.rebuild_classes(nodes)

    # -- routing -----------------------------------------------------------

    def _free_epc_pages(self, cell: Cell) -> int:
        """Advertised-minus-committed EPC pages across the cell."""
        kubelets = self._kubelets
        free = 0
        for name in cell.node_names:
            kubelet = kubelets.get(name)
            if kubelet is None:
                continue
            headroom = (
                kubelet.advertised_epc_pages()
                - kubelet.committed_requests().epc_pages
            )
            if headroom > 0:
                free += headroom
        return free

    def _score(self, cell: Cell, pod: Pod) -> Tuple[int, int, int]:
        """Routing key, lower is better: load, EPC pressure, id."""
        assert self._queue is not None
        load = self._queue.cell_len(cell.cell_id)
        epc_pressure = (
            -self._free_epc_pages(cell) if pod.requires_sgx else 0
        )
        return (load, epc_pressure, cell.cell_id)

    def route(self, pod: Pod) -> int:
        """The cell that should try *pod* next.

        Feasible cells compete on ``(load, EPC pressure, id)``.  When
        no cell could ever host the pod, the least-loaded cell takes it
        anyway: its local pass then rejects the pod exactly like the
        flat oracle's ``can_ever_fit`` check would.
        """
        feasible = [
            cell for cell in self.cells if cell.could_ever_fit(pod)
        ]
        candidates = feasible if feasible else self.cells
        best = min(candidates, key=lambda cell: self._score(cell, pod))
        return best.cell_id

    def spill_target(self, pod: Pod, current: int) -> Optional[int]:
        """The best feasible cell other than *current*, if any.

        Used both for deferral-streak spillover and for immediate
        re-routing of pods locally infeasible in their cell.  ``None``
        means no other cell could ever host the pod — the caller keeps
        (or rejects) it.
        """
        feasible = [
            cell
            for cell in self.cells
            if cell.cell_id != current and cell.could_ever_fit(pod)
        ]
        if not feasible:
            return None
        best = min(feasible, key=lambda cell: self._score(cell, pod))
        return best.cell_id

    # -- node churn --------------------------------------------------------

    def note_node_removed(
        self, node_name: str, nodes: Mapping[str, Node]
    ) -> None:
        """A node left (crash/drain): shrink its cell.

        Must run *before* the orchestrator's ``remove_node`` — that
        call resubmits the orphaned pods, and their routing must not
        see the dead node's capacity.
        """
        cell_id = self.cell_of_node.pop(node_name, None)
        if cell_id is None:
            raise OrchestrationError(
                f"no such node {node_name!r} in any cell"
            )
        cell = self.cells[cell_id]
        cell.node_names.remove(node_name)
        cell.rebuild_classes(nodes)

    def note_node_added(
        self, node: Node, nodes: Mapping[str, Node]
    ) -> None:
        """A node joined mid-run: grow the smallest cell.

        Ties break on the lowest cell id; the partition policy only
        governs the bootstrap inventory, so late joiners balance by
        size — deterministic and policy-free.
        """
        if node.name in self.cell_of_node:
            raise OrchestrationError(
                f"node {node.name!r} is already in cell "
                f"{self.cell_of_node[node.name]}"
            )
        cell = min(
            self.cells,
            key=lambda c: (len(c.node_names), c.cell_id),
        )
        cell.node_names.append(node.name)
        self.cell_of_node[node.name] = cell.cell_id
        cell.rebuild_classes(nodes)
