"""Per-cell event queues with a deterministic global merge.

The flat :class:`repro.simulation.engine.SimulationEngine` keeps one
heap; a sharded replay wants per-cell queues so a cell's events (its
pods' finish/start events, its nodes' reschedules) stay local to it —
the shape a later process-pool backend needs.  Determinism is the
non-negotiable part: events must fire in *exactly* the order the flat
engine would fire them, or the ``cells=1`` oracle gate breaks.

Two decisions carry that guarantee:

* one **global sequence counter** shared by every queue.  A sequence
  number is allocated per schedule call, exactly like the flat
  engine, so the merge key ``(time, seq, cell_id)`` is globally
  unique and reproduces the flat engine's FIFO tie-break bit for bit
  regardless of which queue an event sits in;
* the **merge** pops the minimum of the queue heads by that key.
  ``cell_id`` is the documented final tie-break for the future
  per-cell-counter mode (a process pool cannot share a counter); with
  the shared counter it never decides, but the contract is stated now
  so the key never has to change.

Control-plane events — submissions, metrics ticks, the scheduler tick
itself — live in the reserved :data:`GLOBAL_CELL` queue.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

Action = Callable[[], None]

#: Queue id of the control plane (submissions, scheduler/metrics
#: ticks, crash injections).  Merges *before* cell 0 on exact
#: ``(time, seq)`` ties, which the shared counter makes unreachable.
GLOBAL_CELL = -1


class CellEventHandle:
    """A scheduled event in one cell's queue, cancellable."""

    __slots__ = ("time", "seq", "cell", "action", "cancelled", "_engine")

    def __init__(
        self,
        time: float,
        seq: int,
        cell: int,
        action: Action,
        engine: Optional["ShardedEngine"] = None,
    ):
        self.time = time
        self.seq = seq
        self.cell = cell
        self.action: Optional[Action] = action
        self.cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; cancelling an
        already-fired event is a no-op."""
        if self.cancelled or self.action is None:
            return
        self.cancelled = True
        self.action = None
        engine = self._engine
        if engine is not None:
            engine._note_cancel(self.cell)

    def __lt__(self, other: "CellEventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class _CellQueue:
    """One cell's heap plus its cancelled-entry bookkeeping."""

    __slots__ = ("cell", "heap", "cancelled")

    def __init__(self, cell: int):
        self.cell = cell
        self.heap: List[Tuple[float, int, CellEventHandle]] = []
        self.cancelled = 0

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        self.heap = [e for e in self.heap if not e[2].cancelled]
        heapify(self.heap)
        self.cancelled = 0


class ShardedEngine:
    """Event loop over per-cell queues, merged deterministically.

    API-compatible with :class:`SimulationEngine` (``schedule_at``,
    ``schedule_in``, ``reschedule_in``, ``run``, ``step``, ``now``,
    ``pending_events``, ``fired_events``); the schedule calls take an
    extra ``cell`` argument defaulting to :data:`GLOBAL_CELL`.
    """

    __slots__ = (
        "_now", "_queues", "_next_seq", "_fired", "_pending",
        "cell_count",
    )

    #: Same size-proportional compaction policy as the flat engine,
    #: applied per queue: each cell's heap compacts independently once
    #: its cancelled entries reach half of it.
    COMPACT_MIN_QUEUE = 32

    def __init__(self, cells: int = 1, start_time: float = 0.0):
        if cells < 1:
            raise SimulationError(f"cells must be >= 1: {cells}")
        self._now = start_time
        self.cell_count = cells
        #: Control-plane queue first, then cells 0..cells-1; the merge
        #: scans this fixed list, so peeking order is deterministic.
        self._queues: List[_CellQueue] = [
            _CellQueue(cell) for cell in range(-1, cells)
        ]
        self._next_seq = 0
        self._fired = 0
        self._pending = 0

    @property
    def now(self) -> float:
        """The current simulated time, seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Events scheduled and not yet fired or cancelled.  O(1)."""
        return self._pending

    @property
    def fired_events(self) -> int:
        """Events executed so far."""
        return self._fired

    def queue_sizes(self) -> List[int]:
        """Live (non-cancelled) entries per queue, control plane first."""
        sizes = []
        for queue in self._queues:
            sizes.append(len(queue.heap) - queue.cancelled)
        return sizes

    def _queue_of(self, cell: int) -> _CellQueue:
        if not GLOBAL_CELL <= cell < self.cell_count:
            raise SimulationError(
                f"unknown cell {cell}; engine has cells "
                f"[{GLOBAL_CELL}, {self.cell_count})"
            )
        return self._queues[cell + 1]

    def _note_cancel(self, cell: int) -> None:
        """Bookkeeping for one handle transitioning to cancelled."""
        self._pending -= 1
        queue = self._queues[cell + 1]
        queue.cancelled += 1
        if (
            len(queue.heap) >= self.COMPACT_MIN_QUEUE
            and queue.cancelled * 2 >= len(queue.heap)
        ):
            queue.compact()

    def schedule_at(
        self, time: float, action: Action, cell: int = GLOBAL_CELL
    ) -> CellEventHandle:
        """Schedule *action* at absolute simulated *time* in *cell*."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now={self._now}"
            )
        queue = self._queue_of(cell)
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = CellEventHandle(time, seq, cell, action, self)
        heappush(queue.heap, (time, seq, handle))
        self._pending += 1
        return handle

    def schedule_in(
        self, delay: float, action: Action, cell: int = GLOBAL_CELL
    ) -> CellEventHandle:
        """Schedule *action* after *delay* seconds in *cell*."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        queue = self._queue_of(cell)
        time = self._now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = CellEventHandle(time, seq, cell, action, self)
        heappush(queue.heap, (time, seq, handle))
        self._pending += 1
        return handle

    def reschedule_in(
        self,
        handle: Optional[CellEventHandle],
        delay: float,
        action: Action,
        cell: int = GLOBAL_CELL,
    ) -> CellEventHandle:
        """Cancel *handle* (when live) and schedule *action* in *cell*.

        The fused hot path of the flat engine, queue-aware: the stale
        handle's bookkeeping lands on *its* queue (which may differ
        from *cell* after a cross-cell migration), the new event on the
        target queue.  Timestamps and sequence numbers are exactly
        those of the unfused cancel + schedule pair.
        """
        if (
            handle is not None
            and not handle.cancelled
            and handle.action is not None
        ):
            handle.cancelled = True
            handle.action = None
            old_queue = self._queues[handle.cell + 1]
            old_queue.cancelled += 1
            if (
                len(old_queue.heap) >= self.COMPACT_MIN_QUEUE
                and old_queue.cancelled * 2 >= len(old_queue.heap)
            ):
                old_queue.compact()
        else:
            self._pending += 1
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        queue = self._queue_of(cell)
        time = self._now + delay
        seq = self._next_seq
        self._next_seq = seq + 1
        new = CellEventHandle(time, seq, cell, action, self)
        heappush(queue.heap, (time, seq, new))
        return new

    def _pop_next(self) -> Optional[Tuple[float, int, CellEventHandle]]:
        """Pop the globally next live entry, or ``None`` when drained.

        Scans the queue heads (control plane first, then cells in id
        order), dropping cancelled entries as they surface, and pops
        the minimum ``(time, seq, cell_id)``.  O(#queues) per event —
        cell counts are small; a loser tree can replace this scan if
        they ever are not.
        """
        best_queue: Optional[_CellQueue] = None
        best_key: Optional[Tuple[float, int, int]] = None
        for queue in self._queues:
            heap = queue.heap
            while heap:
                entry = heap[0]
                if entry[2].cancelled:
                    heappop(heap)
                    queue.cancelled -= 1
                    continue
                key = (entry[0], entry[1], queue.cell)
                if best_key is None or key < best_key:
                    best_key = key
                    best_queue = queue
                break
        if best_queue is None:
            return None
        return heappop(best_queue.heap)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 50_000_000,
    ) -> float:
        """Run events in merge order until drained or *until* passes.

        Returns the final simulated time.  ``max_events`` guards
        against runaway self-rescheduling loops.
        """
        fired_this_run = 0
        while True:
            entry = self._pop_next()
            if entry is None:
                break
            handle = entry[2]
            if until is not None and entry[0] > until:
                # Re-shelve the event: the run window closed before it.
                heappush(
                    self._queues[handle.cell + 1].heap, entry
                )
                self._now = until
                return self._now
            self._now = entry[0]
            action = handle.action
            handle.action = None
            self._pending -= 1
            self._fired += 1
            fired_this_run += 1
            if fired_this_run > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway loop?"
                )
            if action is not None:
                action()
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one (non-cancelled) event; ``False`` if drained."""
        entry = self._pop_next()
        if entry is None:
            return False
        handle = entry[2]
        self._now = entry[0]
        action = handle.action
        handle.action = None
        self._pending -= 1
        self._fired += 1
        if action is not None:
            action()
        return True
