"""repro — SGX-aware container orchestration for heterogeneous clusters.

A from-scratch Python reproduction of Vaucher et al., "SGX-Aware
Container Orchestration for Heterogeneous Clusters" (ICDCS 2018),
including every substrate the paper's system stands on: an SGX/EPC model
with the patched Linux driver interface, a Kubernetes-like control plane
with device plugins and DaemonSets, a time-series database with an
InfluxQL subset, the Google Borg trace pipeline, and a discrete-event
simulator that replays the paper's entire evaluation.

Quick start::

    from repro import (
        Orchestrator, paper_cluster, BinpackScheduler, make_pod_spec,
    )
    from repro.units import mib

    orchestrator = Orchestrator(paper_cluster())
    pod = orchestrator.submit(
        make_pod_spec("job", duration_seconds=60,
                      declared_epc_bytes=mib(10)),
        now=0.0,
    )
    orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
    print(pod.node_name)  # 'sgx-worker-0'

or replay the paper's whole evaluation workload through the scenario
layer (``ReplayConfig``/``replay_trace`` remain as a deprecated shim)::

    from repro import Scenario, Sweep

    result = Scenario(sgx_fraction=0.5).run()
    print(result.metrics.mean_waiting_seconds())

    sweep = Sweep(Scenario(), grid={"sgx_fraction": (0.0, 0.5, 1.0)})
    print(sweep.run(workers=3).to_table())
"""

from .cluster.node import Node, NodeSpec
from .cluster.resources import ResourceVector
from .cluster.topology import Cluster, paper_cluster, uniform_cluster
from .orchestrator.api import (
    PodPhase,
    PodSpec,
    ResourceRequirements,
    WorkloadProfile,
    make_pod_spec,
)
from .orchestrator.controller import Orchestrator
from .orchestrator.pod import Pod
from .policy import (
    PreemptionPolicy,
    PriorityClass,
    QosClass,
    resolve_priority,
)
from .scheduler.binpack import BinpackScheduler
from .scheduler.kube_default import KubeDefaultScheduler
from .scheduler.spread import SpreadScheduler
from .simulation.runner import ReplayConfig, ReplayResult, replay_trace
from .trace.borg import BorgTraceGenerator, synthetic_scaled_trace
from .trace.loader import load_borg_csv
from .workload.malicious import MaliciousConfig

__version__ = "1.4.0"

# The scenario layer sits on top of everything above; importing it
# after the core packages keeps the orchestrator <-> scheduler import
# cycle resolving in the order the control plane expects.
from .api import (  # noqa: E402
    RunResult,
    Scenario,
    Sweep,
    SweepResult,
    register_scheduler,
    register_workload,
)

__all__ = [
    "BinpackScheduler",
    "BorgTraceGenerator",
    "Cluster",
    "KubeDefaultScheduler",
    "MaliciousConfig",
    "Node",
    "NodeSpec",
    "Orchestrator",
    "Pod",
    "PodPhase",
    "PodSpec",
    "PreemptionPolicy",
    "PriorityClass",
    "QosClass",
    "ReplayConfig",
    "ReplayResult",
    "ResourceRequirements",
    "ResourceVector",
    "RunResult",
    "Scenario",
    "SpreadScheduler",
    "Sweep",
    "SweepResult",
    "WorkloadProfile",
    "__version__",
    "load_borg_csv",
    "make_pod_spec",
    "paper_cluster",
    "register_scheduler",
    "register_workload",
    "replay_trace",
    "resolve_priority",
    "synthetic_scaled_trace",
    "uniform_cluster",
]
