"""Setup shim for environments installing with legacy (non-PEP 517) paths."""
from setuptools import setup

setup()
