"""The patched isgx driver: counters, ioctls, limit enforcement."""

import pytest

from repro.errors import (
    DriverError,
    EnclaveLimitExceededError,
    EpcExhaustedError,
)
from repro.sgx.aesm import AesmService
from repro.sgx.driver import (
    IOCTL_GET_EPC_USAGE,
    IOCTL_SET_POD_LIMIT,
    PARAM_FREE_PAGES,
    PARAM_TOTAL_PAGES,
    SgxDriver,
)
from repro.sgx.epc import EnclavePageCache
from repro.units import mib, pages

POD = "/kubepods/burstable/pod42"


@pytest.fixture
def epc() -> EnclavePageCache:
    return EnclavePageCache()


@pytest.fixture
def driver(epc) -> SgxDriver:
    return SgxDriver(epc)


@pytest.fixture
def aesm() -> AesmService:
    service = AesmService()
    service.start()
    return service


class TestModuleParameters:
    def test_total_pages_parameter(self, driver):
        assert driver.read_parameter(PARAM_TOTAL_PAGES) == 23_936

    def test_free_pages_tracks_allocations(self, driver, aesm):
        driver.register_process(1, POD)
        driver.create_enclave(1, size_bytes=mib(4))
        expected = 23_936 - pages(mib(4))
        assert driver.read_parameter(PARAM_FREE_PAGES) == expected

    def test_unknown_parameter_rejected(self, driver):
        with pytest.raises(DriverError):
            driver.read_parameter("sgx_bogus")

    def test_snapshot_reports_usage_by_owner(self, driver):
        driver.register_process(1, POD)
        driver.create_enclave(1, size_bytes=mib(2))
        snapshot = driver.snapshot()
        assert snapshot.usage_by_owner == {POD: pages(mib(2))}
        assert snapshot.used_pages == pages(mib(2))


class TestIoctls:
    def test_get_epc_usage_ioctl(self, driver):
        driver.register_process(1, POD)
        driver.create_enclave(1, size_bytes=mib(1))
        assert driver.ioctl(IOCTL_GET_EPC_USAGE, pid=1) == pages(mib(1))

    def test_get_epc_usage_unknown_pid_is_zero(self, driver):
        assert driver.ioctl(IOCTL_GET_EPC_USAGE, pid=999) == 0

    def test_set_pod_limit_ioctl(self, driver):
        assert driver.ioctl(
            IOCTL_SET_POD_LIMIT, cgroup_path=POD, limit_pages=100
        ) == 0
        assert driver.pod_limit(POD) == 100

    def test_limit_settable_only_once(self, driver):
        driver.set_pod_limit(POD, 100)
        with pytest.raises(DriverError, match="settable once"):
            driver.set_pod_limit(POD, 200)

    def test_negative_limit_rejected(self, driver):
        with pytest.raises(DriverError):
            driver.set_pod_limit(POD, -1)

    def test_unknown_ioctl_rejected(self, driver):
        with pytest.raises(DriverError):
            driver.ioctl(0xFF)

    def test_clear_pod_allows_reuse(self, driver):
        driver.set_pod_limit(POD, 100)
        driver.clear_pod(POD)
        assert driver.pod_limit(POD) is None
        driver.set_pod_limit(POD, 200)  # fresh pod, same path


class TestLimitEnforcement:
    def test_enclave_within_limit_initializes(self, driver, aesm):
        driver.set_pod_limit(POD, pages(mib(10)))
        driver.register_process(1, POD)
        enclave = driver.create_enclave(1, size_bytes=mib(5))
        driver.initialize_enclave(1, enclave, aesm)

    def test_enclave_over_limit_denied_and_destroyed(self, driver, aesm, epc):
        driver.set_pod_limit(POD, pages(mib(1)))
        driver.register_process(1, POD)
        enclave = driver.create_enclave(1, size_bytes=mib(5))
        with pytest.raises(EnclaveLimitExceededError) as excinfo:
            driver.initialize_enclave(1, enclave, aesm)
        assert excinfo.value.cgroup_path == POD
        # Denial frees the pages, as the kernel would.
        assert epc.allocated_pages == 0

    def test_limit_counts_whole_pod_not_process(self, driver, aesm):
        # Two processes in the same cgroup share the pod's limit.
        driver.set_pod_limit(POD, pages(mib(6)))
        driver.register_process(1, POD)
        driver.register_process(2, POD)
        first = driver.create_enclave(1, size_bytes=mib(4))
        driver.initialize_enclave(1, first, aesm)
        second = driver.create_enclave(2, size_bytes=mib(4))
        with pytest.raises(EnclaveLimitExceededError):
            driver.initialize_enclave(2, second, aesm)

    def test_no_limit_set_means_no_denial(self, driver, aesm):
        driver.register_process(1, POD)
        enclave = driver.create_enclave(1, size_bytes=mib(20))
        driver.initialize_enclave(1, enclave, aesm)

    def test_enforcement_disabled_skips_check(self, epc, aesm):
        driver = SgxDriver(epc, enforce_limits=False)
        driver.set_pod_limit(POD, 1)
        driver.register_process(1, POD)
        enclave = driver.create_enclave(1, size_bytes=mib(5))
        driver.initialize_enclave(1, enclave, aesm)  # no denial


class TestProcessLifecycle:
    def test_double_registration_rejected(self, driver):
        driver.register_process(1, POD)
        with pytest.raises(DriverError):
            driver.register_process(1, POD)

    def test_create_enclave_requires_registration(self, driver):
        with pytest.raises(DriverError):
            driver.create_enclave(1, size_bytes=mib(1))

    def test_unregister_destroys_enclaves(self, driver, epc):
        driver.register_process(1, POD)
        driver.create_enclave(1, size_bytes=mib(5))
        driver.unregister_process(1)
        assert epc.allocated_pages == 0

    def test_unregister_unknown_pid_is_noop(self, driver):
        driver.unregister_process(12345)

    def test_strict_epc_propagates_exhaustion(self, driver):
        driver.register_process(1, POD)
        with pytest.raises(EpcExhaustedError):
            driver.create_enclave(1, size_bytes=mib(200))

    def test_destroy_enclave_releases(self, driver, epc):
        driver.register_process(1, POD)
        enclave = driver.create_enclave(1, size_bytes=mib(3))
        driver.destroy_enclave(1, enclave)
        assert epc.allocated_pages == 0
        assert driver.process_epc_pages(1) == 0

    def test_initialize_foreign_enclave_rejected(self, driver, aesm):
        driver.register_process(1, POD)
        driver.register_process(2, "/kubepods/burstable/podother")
        enclave = driver.create_enclave(1, size_bytes=mib(1))
        with pytest.raises(DriverError):
            driver.initialize_enclave(2, enclave, aesm)
