"""The global dispatcher and the cell queue router.

Routing unit tests build a real control plane (paper cluster, live
kubelets) around hand-made cells, so the feasibility / load / EPC
scoring is exercised against the same state a replay would read.
Spillover correctness runs end-to-end through :class:`Scenario`:
multi-cell runs re-route persistently deferred pods, and pods no cell
can ever host are rejected exactly like the flat oracle.
"""

import pytest

from repro.api import Scenario
from repro.cells.dispatch import Cell, GlobalDispatcher
from repro.cells.queue import CellQueueRouter
from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import paper_cluster
from repro.errors import OrchestrationError
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.orchestrator.pod import Pod
from repro.trace.borg import synthetic_scaled_trace
from repro.units import gib, mib


def make_pod(name, submitted_at=0.0, mem=0, epc_bytes=0, priority=0):
    spec = make_pod_spec(
        name,
        duration_seconds=60.0,
        declared_memory_bytes=mem,
        declared_epc_bytes=epc_bytes,
        priority=priority,
    )
    return Pod(spec, submitted_at=submitted_at)


@pytest.fixture
def plane():
    """Two cells over the paper cluster: standard vs SGX workers."""
    cluster = paper_cluster()
    orchestrator = Orchestrator(cluster)
    cells = [
        Cell(0, ["worker-0", "worker-1"], scheduler=None),
        Cell(1, ["sgx-worker-0", "sgx-worker-1"], scheduler=None),
    ]
    dispatcher = GlobalDispatcher(cells)
    router = CellQueueRouter(2, dispatcher)
    dispatcher.bind(
        orchestrator.kubelets,
        router,
        {node.name: node for node in cluster.nodes},
    )
    return cluster, orchestrator, dispatcher, router


class TestRouting:
    def test_sgx_pod_routes_to_the_sgx_cell(self, plane):
        _, _, dispatcher, _ = plane
        pod = make_pod("enclave", epc_bytes=mib(10))
        assert dispatcher.route(pod) == 1

    def test_memory_heavy_pod_routes_to_the_standard_cell(self, plane):
        # 16 GiB fits the 64 GiB standard workers, not the 8 GiB SGX
        # boxes — feasibility filters before load even looks.
        _, _, dispatcher, _ = plane
        pod = make_pod("heavy", mem=int(gib(16)))
        assert dispatcher.route(pod) == 0

    def test_equal_feasibility_breaks_on_load_then_id(self, plane):
        _, _, dispatcher, router = plane
        small = make_pod("small", mem=int(gib(1)))
        assert dispatcher.route(small) == 0  # tie -> lowest id
        for i in range(3):
            router.push(make_pod(f"filler-{i}", mem=int(gib(1))))
        # The fillers landed spread across cells; load the lighter one
        # explicitly and the next pod goes to the other.
        loads = [router.cell_len(0), router.cell_len(1)]
        expected = loads.index(min(loads))
        assert dispatcher.route(small) == expected

    def test_epc_pressure_steers_sgx_pods(self, plane):
        cluster, orchestrator, _, _ = plane
        cells = [
            Cell(0, ["sgx-worker-0"], scheduler=None),
            Cell(1, ["sgx-worker-1"], scheduler=None),
        ]
        dispatcher = GlobalDispatcher(cells)
        router = CellQueueRouter(2, dispatcher)
        dispatcher.bind(
            orchestrator.kubelets,
            router,
            {node.name: node for node in cluster.nodes},
        )
        pod = make_pod("enclave", epc_bytes=mib(10))
        assert dispatcher.route(pod) == 0  # tie -> lowest id
        # Commit most of worker 0's EPC; equal queue loads now break
        # on free pages, steering the next SGX pod to cell 1.
        hog = make_pod("hog", epc_bytes=mib(90))
        hog.mark_bound("sgx-worker-0", now=0.0)
        orchestrator.kubelets["sgx-worker-0"].admit(hog)
        assert dispatcher.route(pod) == 1

    def test_infeasible_everywhere_falls_back_to_least_loaded(
        self, plane
    ):
        _, _, dispatcher, router = plane
        giant = make_pod("giant", mem=int(gib(512)))
        assert dispatcher.route(giant) == 0
        router.push(make_pod("filler", mem=int(gib(1))))
        assert router.cell_len(0) == 1
        assert dispatcher.route(giant) == 1

    def test_spill_target_excludes_current_cell(self, plane):
        _, _, dispatcher, _ = plane
        small = make_pod("small", mem=int(gib(1)))
        assert dispatcher.spill_target(small, 0) == 1
        assert dispatcher.spill_target(small, 1) == 0
        sgx = make_pod("enclave", epc_bytes=mib(10))
        assert dispatcher.spill_target(sgx, 0) == 1
        # No cell but the current one could host it: nowhere to spill.
        assert dispatcher.spill_target(sgx, 1) is None

    def test_spill_target_none_when_globally_infeasible(self, plane):
        _, _, dispatcher, _ = plane
        giant = make_pod("giant", mem=int(gib(512)))
        assert dispatcher.spill_target(giant, 0) is None


class TestNodeChurn:
    def test_removal_shrinks_the_cell_and_its_classes(self, plane):
        cluster, _, dispatcher, _ = plane
        live = {
            node.name: node
            for node in cluster.nodes
            if not node.name.startswith("sgx-")
        }
        dispatcher.note_node_removed("sgx-worker-0", live)
        dispatcher.note_node_removed("sgx-worker-1", live)
        assert "sgx-worker-0" not in dispatcher.cell_of_node
        sgx = make_pod("enclave", epc_bytes=mib(10))
        # No SGX shapes anywhere: routing falls back, spilling cannot.
        assert dispatcher.spill_target(sgx, 0) is None

    def test_removing_unknown_node_raises(self, plane):
        _, _, dispatcher, _ = plane
        with pytest.raises(OrchestrationError, match="no such node"):
            dispatcher.note_node_removed("ghost", {})

    def test_added_node_joins_the_smallest_cell(self, plane):
        cluster, _, dispatcher, _ = plane
        live = {node.name: node for node in cluster.nodes}
        dispatcher.note_node_removed("worker-1", live)
        joiner = Node(NodeSpec.standard("worker-9"))
        live[joiner.name] = joiner
        dispatcher.note_node_added(joiner, live)
        assert dispatcher.cell_of_node["worker-9"] == 0
        assert "worker-9" in dispatcher.cells[0].node_names

    def test_adding_known_node_raises(self, plane):
        cluster, _, dispatcher, _ = plane
        with pytest.raises(OrchestrationError, match="already in cell"):
            dispatcher.note_node_added(
                cluster.node("worker-0"),
                {node.name: node for node in cluster.nodes},
            )


class TestRouterFacade:
    def test_double_push_raises(self, plane):
        _, _, _, router = plane
        pod = make_pod("p", mem=int(gib(1)))
        router.push(pod)
        with pytest.raises(OrchestrationError, match="already queued"):
            router.push(pod)

    def test_remove_unqueued_raises(self, plane):
        _, _, _, router = plane
        with pytest.raises(OrchestrationError, match="not queued"):
            router.remove(make_pod("p"))

    def test_move_rehomes_and_preserves_order(self, plane):
        _, _, _, router = plane
        pods = [
            make_pod(f"p{i}", submitted_at=float(i), mem=int(gib(1)))
            for i in range(4)
        ]
        for pod in pods:
            router.push(pod)
        mover = pods[1]
        source = router.cell_of(mover)
        target = 1 - source
        router.move(mover, target)
        assert router.cell_of(mover) == target
        # The global snapshot still reads in submission order.
        assert [p.name for p in router.snapshot()] == [
            p.name for p in pods
        ]

    def test_move_to_unknown_cell_raises(self, plane):
        _, _, _, router = plane
        pod = make_pod("p", mem=int(gib(1)))
        router.push(pod)
        with pytest.raises(OrchestrationError, match="unknown cell"):
            router.move(pod, 7)

    def test_move_to_same_cell_is_a_noop(self, plane):
        _, _, _, router = plane
        pod = make_pod("p", mem=int(gib(1)))
        router.push(pod)
        router.move(pod, router.cell_of(pod))
        assert pod in router

    def test_aggregates_span_cells(self, plane):
        _, _, _, router = plane
        router.push(make_pod("m", mem=int(gib(2))))
        router.push(make_pod("e", epc_bytes=mib(8)))
        assert len(router) == 2
        assert router.total_requested_memory_bytes() == int(gib(2))
        assert router.total_requested_epc_pages() > 0
        assert router.peek().name == "m"
        assert {router.cell_of(p) for p in router} == {0, 1}

    def test_requeue_reroutes_through_the_dispatcher(self, plane):
        _, _, _, router = plane
        pod = make_pod("p", mem=int(gib(1)))
        router.push(pod)
        cell = router.cell_of(pod)
        router.remove(pod)
        ready_at = router.requeue(pod, now=10.0)
        assert ready_at >= 10.0
        # Its old cell now scores equal or better (it is empty), so
        # the deterministic re-route lands it right back.
        assert router.cell_of(pod) == cell


class TestSpilloverEndToEnd:
    def test_saturated_cells_spill_and_finish(self):
        scenario = Scenario(
            trace=synthetic_scaled_trace(
                seed=3,
                n_jobs=80,
                overallocators=8,
                window_seconds=120.0,
            ),
            sgx_fraction=0.5,
            seed=1,
            cells=4,
            standard_workers=4,
            sgx_workers=4,
        )
        result = scenario.run()
        assert result.cell_spillovers > 0
        assert not result.metrics.failed
        row = result.to_row()
        assert row["cells"] == 4
        assert row["cell_policy"] == "balanced"
        assert row["cell_spillovers"] == result.cell_spillovers

    def test_globally_infeasible_pods_reject_like_the_oracle(self):
        # All-SGX workload against a 1 MiB PRM: enclaves requesting
        # more EPC than any node's capacity are globally infeasible;
        # the sharded replay must reject exactly the pods the flat
        # oracle rejects.
        trace = synthetic_scaled_trace(
            seed=5, n_jobs=20, overallocators=2
        )
        flat = Scenario(
            trace=trace,
            sgx_fraction=1.0,
            seed=2,
            epc_total_bytes=int(mib(1)),
        )
        sharded = flat.with_(cells=2)
        oracle = flat.run()
        result = sharded.run()
        assert oracle.metrics.failed  # the scenario does reject
        assert [p.name for p in result.metrics.failed] == [
            p.name for p in oracle.metrics.failed
        ]
        assert result.cell_spillovers == 0

    def test_spillover_threshold_validated(self):
        with pytest.raises(Exception, match="cell_spillover_after"):
            Scenario(cells=2, cell_spillover_after=0)
