"""``Sweep``: grid expansion and serial/parallel/legacy equivalence."""

import json
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import SWEEP_SCHEMA, Scenario, Sweep, expand_grid
from repro.errors import SimulationError
from repro.simulation.runner import ReplayConfig, replay_trace
from repro.trace.borg import synthetic_scaled_trace


class TestExpandGrid:
    def test_cartesian_product_first_key_slowest(self):
        combos = expand_grid(
            {"a": (1, 2), "b": ("x", "y")}
        )
        assert combos == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]

    def test_empty_grid(self):
        assert expand_grid({}) == []

    def test_empty_axis_rejected(self):
        with pytest.raises(SimulationError, match="no values"):
            expand_grid({"a": ()})


class TestSweepExpansion:
    def test_grid_expansion(self):
        sweep = Sweep(
            Scenario(trace="borg-synth:jobs=10"),
            grid={
                "scheduler": ("binpack", "spread"),
                "sgx_fraction": (0.0, 1.0),
            },
        )
        assert len(sweep) == 4
        assert [
            (s.scheduler, s.sgx_fraction) for s in sweep
        ] == [
            ("binpack", 0.0),
            ("binpack", 1.0),
            ("spread", 0.0),
            ("spread", 1.0),
        ]

    def test_variations_cross_grid(self):
        sweep = Sweep(
            Scenario(trace="borg-synth:jobs=10"),
            variations=[{"seed": 1}, {"seed": 2}],
            grid={"sgx_fraction": (0.0, 1.0)},
        )
        assert [(s.seed, s.sgx_fraction) for s in sweep] == [
            (1, 0.0),
            (1, 1.0),
            (2, 0.0),
            (2, 1.0),
        ]

    def test_no_axes_is_the_base_alone(self):
        base = Scenario(trace="borg-synth:jobs=10")
        sweep = Sweep(base)
        assert list(sweep) == [base]

    def test_unknown_field_dies_at_construction(self):
        with pytest.raises(SimulationError, match="warp"):
            Sweep(Scenario(trace="borg-synth:jobs=10"), grid={"warp": (1,)})

    def test_invalid_value_dies_at_construction(self):
        with pytest.raises(SimulationError, match="sgx_fraction"):
            Sweep(
                Scenario(trace="borg-synth:jobs=10"),
                grid={"sgx_fraction": (0.0, 3.0)},
            )

    @pytest.mark.parametrize("workers", [0, -1, 1.5, "four"])
    def test_bad_workers_rejected(self, workers):
        sweep = Sweep(Scenario(trace="borg-synth:jobs=10"))
        with pytest.raises(SimulationError, match="workers"):
            sweep.run(workers=workers)


@pytest.fixture(scope="module")
def tiny_sweep():
    trace = synthetic_scaled_trace(seed=7, n_jobs=24, overallocators=2)
    return Sweep(
        Scenario(trace=trace, seed=1),
        grid={
            "scheduler": ("binpack", "spread"),
            "sgx_fraction": (0.0, 1.0),
        },
        name="tiny",
    )


class TestSweepExecution:
    @pytest.fixture(scope="class")
    def serial(self, tiny_sweep):
        return tiny_sweep.run()

    def test_results_keep_scenario_order(self, tiny_sweep, serial):
        assert [r.scenario for r in serial] == list(tiny_sweep)

    def test_parallel_is_bit_for_bit_serial(self, tiny_sweep, serial):
        parallel = tiny_sweep.run(workers=4)
        assert parallel.signatures() == serial.signatures()
        assert parallel.to_rows() == serial.to_rows()

    def test_more_workers_than_scenarios(self, tiny_sweep, serial):
        oversized = tiny_sweep.run(workers=16)
        assert oversized.signatures() == serial.signatures()

    def test_to_rows_one_per_scenario(self, serial):
        rows = serial.to_rows()
        assert len(rows) == 4
        assert all(row["submitted"] == 24 for row in rows)

    def test_to_json_schema(self, serial):
        payload = json.loads(serial.to_json())
        assert payload["schema"] == SWEEP_SCHEMA
        assert payload["sweep"] == "tiny"
        assert payload["count"] == 4
        assert len(payload["results"]) == 4

    def test_to_table_has_header_and_rows(self, serial):
        lines = serial.to_table().splitlines()
        assert "scenario" in lines[0]
        assert len(lines) == 2 + 4  # header, rule, one line per run

    def test_serial_fallback_without_fork(
        self, tiny_sweep, serial, monkeypatch
    ):
        """Spawn-only platforms degrade to serial, not to breakage."""
        import repro.api.sweep as sweep_module

        def no_fork(method=None):
            raise ValueError("cannot find context for 'fork'")

        monkeypatch.setattr(
            sweep_module.multiprocessing, "get_context", no_fork
        )
        with pytest.warns(RuntimeWarning, match="fork"):
            fallback = tiny_sweep.run(workers=4)
        assert fallback.signatures() == serial.signatures()

    def test_plugin_scheduler_survives_the_pool(self, tiny_sweep):
        """Runtime-registered strategies resolve inside fork workers."""
        from repro.registry import SCHEDULERS, register_scheduler
        from repro.scheduler.binpack import BinpackScheduler

        @register_scheduler("test-pool-plugin")
        class PoolPluginScheduler(BinpackScheduler):
            name = "test-pool-plugin"

        try:
            sweep = Sweep(
                tiny_sweep.base.with_(scheduler="test-pool-plugin"),
                grid={"sgx_fraction": (0.0, 1.0)},
            )
            parallel = sweep.run(workers=2)
            assert parallel.signatures() == sweep.run().signatures()
        finally:
            SCHEDULERS.unregister("test-pool-plugin")


class TestEquivalenceSeeded:
    """Hypothesis-seeded: parallel sweep == serial == legacy shim."""

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        trace_seed=st.integers(min_value=0, max_value=2**16),
        run_seed=st.integers(min_value=0, max_value=2**16),
        sgx_fraction=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
        scheduler=st.sampled_from(["binpack", "spread", "kube-default"]),
    )
    def test_three_ways_bit_for_bit(
        self, trace_seed, run_seed, sgx_fraction, scheduler
    ):
        trace = synthetic_scaled_trace(
            seed=trace_seed, n_jobs=12, overallocators=1
        )
        base = Scenario(
            trace=trace,
            scheduler=scheduler,
            sgx_fraction=sgx_fraction,
            seed=run_seed,
        )
        sweep = Sweep(
            base, grid={"event_driven": (False, True)}, name="hyp"
        )
        serial = sweep.run(workers=1)
        parallel = sweep.run(workers=4)
        assert serial.signatures() == parallel.signatures()

        # The legacy shim replays the identical experiment.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = replay_trace(
                trace,
                ReplayConfig(
                    scheduler=scheduler,
                    sgx_fraction=sgx_fraction,
                    seed=run_seed,
                ),
            )
        legacy_signature = tuple(
            (
                pod.name,
                pod.phase.value,
                pod.submitted_at,
                pod.bound_at,
                pod.started_at,
                pod.finished_at,
                pod.node_name,
            )
            for pod in legacy.metrics.pods
        )
        periodic = serial[0]
        assert periodic.pod_signature() == legacy_signature
        assert (
            periodic.metrics.makespan_seconds
            == legacy.metrics.makespan_seconds
        )
        # Event-driven composes with the sweep and stays equivalent.
        event_driven = serial[1]
        assert (
            event_driven.pod_signature() == periodic.pod_signature()
        )
