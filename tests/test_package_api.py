"""Package-level API surface and error hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.4.0"

    def test_quickstart_from_docstring_works(self):
        from repro import (
            BinpackScheduler,
            Orchestrator,
            make_pod_spec,
            paper_cluster,
        )
        from repro.units import mib

        orchestrator = Orchestrator(paper_cluster())
        pod = orchestrator.submit(
            make_pod_spec(
                "job", duration_seconds=60, declared_epc_bytes=mib(10)
            ),
            now=0.0,
        )
        orchestrator.scheduling_pass(BinpackScheduler(), now=1.0)
        assert pod.node_name.startswith("sgx-worker")


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaf_errors = [
            errors.EpcExhaustedError(1, 0),
            errors.EnclaveLimitExceededError("/pod", 2, 1),
            errors.EnclaveStateError("x"),
            errors.LaunchTokenError("x"),
            errors.DriverError("x"),
            errors.ResourceError("x"),
            errors.NodeError("x"),
            errors.CgroupError("x"),
            errors.PodSpecError("x"),
            errors.SchedulingError("x"),
            errors.UnschedulablePodError("p", "too big"),
            errors.RpcError("x"),
            errors.QueryError("x"),
            errors.TraceError("x"),
            errors.SimulationError("x"),
        ]
        for error in leaf_errors:
            assert isinstance(error, errors.ReproError), error

    def test_sgx_errors_group(self):
        for cls in (
            errors.EpcExhaustedError,
            errors.EnclaveLimitExceededError,
            errors.EnclaveStateError,
            errors.LaunchTokenError,
            errors.DriverError,
        ):
            assert issubclass(cls, errors.SgxError)

    def test_structured_error_payloads(self):
        exhausted = errors.EpcExhaustedError(100, 5)
        assert exhausted.requested_pages == 100
        assert exhausted.free_pages == 5
        limit = errors.EnclaveLimitExceededError("/pod", 10, 4)
        assert limit.cgroup_path == "/pod"
        assert limit.owned_pages == 10
        assert limit.limit_pages == 4
        unsched = errors.UnschedulablePodError("p", "reason")
        assert unsched.pod_name == "p"

    def test_one_except_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.TraceError("anything")
