"""Pod lifecycle transitions and reported metrics."""

import pytest

from repro.errors import OrchestrationError
from repro.orchestrator.api import PodPhase, PodSpec
from repro.orchestrator.pod import Pod


def make_pod(submitted_at=10.0) -> Pod:
    return Pod(PodSpec(name="p"), submitted_at=submitted_at)


class TestTransitions:
    def test_happy_path(self):
        pod = make_pod()
        pod.mark_bound("node-1", 12.0)
        pod.mark_running(13.0)
        pod.mark_succeeded(70.0)
        assert pod.phase is PodPhase.SUCCEEDED
        assert pod.node_name == "node-1"

    def test_cannot_start_before_bind(self):
        with pytest.raises(OrchestrationError):
            make_pod().mark_running(1.0)

    def test_cannot_complete_before_start(self):
        pod = make_pod()
        pod.mark_bound("n", 11.0)
        with pytest.raises(OrchestrationError):
            pod.mark_succeeded(12.0)

    def test_cannot_bind_twice(self):
        pod = make_pod()
        pod.mark_bound("n", 11.0)
        with pytest.raises(OrchestrationError):
            pod.mark_bound("n", 12.0)

    def test_fail_from_any_non_terminal_phase(self):
        for stage in range(3):
            pod = make_pod()
            if stage >= 1:
                pod.mark_bound("n", 11.0)
            if stage >= 2:
                pod.mark_running(12.0)
            pod.mark_failed(20.0, "killed")
            assert pod.phase is PodPhase.FAILED
            assert pod.failure_reason == "killed"

    def test_cannot_fail_after_terminal(self):
        pod = make_pod()
        pod.mark_failed(11.0, "first")
        with pytest.raises(OrchestrationError):
            pod.mark_failed(12.0, "second")


class TestMetrics:
    def test_waiting_time(self):
        pod = make_pod(submitted_at=10.0)
        pod.mark_bound("n", 25.0)
        pod.mark_running(30.0)
        assert pod.waiting_seconds == 20.0

    def test_waiting_time_none_before_start(self):
        pod = make_pod()
        assert pod.waiting_seconds is None

    def test_turnaround(self):
        pod = make_pod(submitted_at=10.0)
        pod.mark_bound("n", 11.0)
        pod.mark_running(12.0)
        pod.mark_succeeded(100.0)
        assert pod.turnaround_seconds == 90.0

    def test_turnaround_includes_failed_pods(self):
        pod = make_pod(submitted_at=10.0)
        pod.mark_failed(15.0, "killed")
        assert pod.turnaround_seconds == 5.0

    def test_uids_unique(self):
        assert make_pod().uid != make_pod().uid
