"""Enclave lifecycle: ECREATE, EINIT, ecall, teardown."""

import pytest

from repro.errors import (
    EnclaveStateError,
    EpcExhaustedError,
    LaunchTokenError,
)
from repro.sgx.aesm import AesmService
from repro.sgx.enclave import Enclave, EnclaveState
from repro.sgx.epc import EnclavePageCache
from repro.units import mib, pages


@pytest.fixture
def epc() -> EnclavePageCache:
    return EnclavePageCache()


@pytest.fixture
def aesm() -> AesmService:
    service = AesmService()
    service.start()
    return service


def make_enclave(epc, size=mib(10)) -> Enclave:
    return Enclave(owner="/kubepods/burstable/pod1", epc=epc, size_bytes=size)


class TestCreation:
    def test_creation_commits_all_pages(self, epc):
        enclave = make_enclave(epc, size=mib(10))
        assert enclave.pages == pages(mib(10))
        assert epc.allocated_pages == enclave.pages

    def test_creation_fails_when_epc_full(self, epc):
        make_enclave(epc, size=mib(93.5))
        with pytest.raises(EpcExhaustedError):
            make_enclave(epc, size=mib(1))

    def test_zero_size_rejected(self, epc):
        with pytest.raises(EnclaveStateError):
            make_enclave(epc, size=0)

    def test_starts_in_created_state(self, epc):
        assert make_enclave(epc).state is EnclaveState.CREATED

    def test_measurement_stable_for_same_identity(self, epc):
        a = make_enclave(epc, size=mib(1))
        b = make_enclave(epc, size=mib(1))
        assert a.measurement == b.measurement

    def test_measurement_differs_by_size(self, epc):
        a = make_enclave(epc, size=mib(1))
        b = make_enclave(epc, size=mib(2))
        assert a.measurement != b.measurement


class TestInitialization:
    def test_initialize_with_matching_token(self, epc, aesm):
        enclave = make_enclave(epc)
        token = aesm.get_launch_token(enclave.measurement, enclave.signer)
        enclave.initialize(token)
        assert enclave.state is EnclaveState.INITIALIZED

    def test_initialize_with_wrong_token_rejected(self, epc, aesm):
        enclave = make_enclave(epc)
        token = aesm.get_launch_token("bogus-measurement", enclave.signer)
        with pytest.raises(LaunchTokenError):
            enclave.initialize(token)

    def test_double_initialize_rejected(self, epc, aesm):
        enclave = make_enclave(epc)
        token = aesm.get_launch_token(enclave.measurement, enclave.signer)
        enclave.initialize(token)
        with pytest.raises(EnclaveStateError):
            enclave.initialize(token)


class TestExecution:
    def test_ecall_requires_initialization(self, epc):
        enclave = make_enclave(epc)
        with pytest.raises(EnclaveStateError):
            enclave.ecall()

    def test_ecall_counts(self, epc, aesm):
        enclave = make_enclave(epc)
        token = aesm.get_launch_token(enclave.measurement, enclave.signer)
        enclave.initialize(token)
        enclave.ecall("f")
        enclave.ecall("g")
        assert enclave.ecall_count == 2

    def test_grow_raises_sgx1_limitation(self, epc):
        enclave = make_enclave(epc)
        with pytest.raises(EnclaveStateError, match="SGX 2"):
            enclave.grow(mib(1))


class TestDestruction:
    def test_destroy_releases_pages(self, epc):
        enclave = make_enclave(epc)
        enclave.destroy()
        assert epc.allocated_pages == 0
        assert enclave.state is EnclaveState.DESTROYED

    def test_destroy_is_idempotent(self, epc):
        enclave = make_enclave(epc)
        enclave.destroy()
        enclave.destroy()
        assert epc.allocated_pages == 0

    def test_ecall_after_destroy_rejected(self, epc, aesm):
        enclave = make_enclave(epc)
        token = aesm.get_launch_token(enclave.measurement, enclave.signer)
        enclave.initialize(token)
        enclave.destroy()
        with pytest.raises(EnclaveStateError):
            enclave.ecall()
