"""``Scenario``: validation, immutability, and engine equivalence."""

import dataclasses
import json

import pytest

from repro.api import RUN_SCHEMA, Scenario
from repro.errors import SimulationError
from repro.scheduler.binpack import BinpackScheduler
from repro.scheduler.spread import SpreadScheduler
from repro.simulation.runner import run_replay
from repro.units import mib
from repro.workload.malicious import MaliciousConfig


class TestValidation:
    """Bad scenarios die at build time, with actionable messages."""

    @pytest.mark.parametrize("fraction", [-0.1, 1.5, 2.0])
    def test_sgx_fraction_range(self, fraction):
        with pytest.raises(SimulationError, match="sgx_fraction"):
            Scenario(sgx_fraction=fraction)

    def test_unknown_scheduler_lists_known(self):
        with pytest.raises(SimulationError) as excinfo:
            Scenario(scheduler="wat")
        message = str(excinfo.value)
        assert "unknown scheduler 'wat'" in message
        for known in ("binpack", "kube-default", "spread"):
            assert known in message

    def test_unknown_workload_lists_known(self):
        with pytest.raises(SimulationError) as excinfo:
            Scenario(workload="wat")
        assert "unknown workload 'wat'" in str(excinfo.value)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"scheduler_period": 0.0},
            {"scheduler_period": -1.0},
            {"metrics_period": 0.0},
            {"epc_total_bytes": 0},
            {"max_sim_seconds": 0.0},
            {"requeue_backoff_seconds": -1.0},
            {"rebalance_period": 0.0},
            {"standard_workers": 0},
            {"sgx_workers": -2},
            {"trace_jobs": 0},
            {"trace_overallocators": -1},
        ],
    )
    def test_out_of_range_knobs(self, kwargs):
        with pytest.raises(SimulationError):
            Scenario(**kwargs)

    def test_plugin_without_standard_knobs_dies_at_build(self):
        from repro.registry import SCHEDULERS, register_scheduler

        @register_scheduler("test-bespoke")
        class Bespoke:  # no (use_measured, ...) constructor
            def __init__(self):
                pass

        try:
            with pytest.raises(
                SimulationError, match="standard knobs"
            ):
                Scenario(scheduler="test-bespoke")
        finally:
            SCHEDULERS.unregister("test-bespoke")

    def test_unknown_scheduler_option_dies_at_build(self):
        with pytest.raises(SimulationError) as excinfo:
            Scenario(scheduler_options={"bogus": 1})
        assert "scheduler_options" in str(excinfo.value)
        assert "bogus" in str(excinfo.value)

    def test_option_shadowing_a_standard_knob_rejected(self):
        with pytest.raises(SimulationError, match="shadow"):
            Scenario(scheduler_options={"use_measured": False})

    def test_unknown_workload_option_dies_at_build(self):
        # hybrid_plans has a closed keyword signature, so a typo'd
        # option is caught by the construct-time signature check.
        with pytest.raises(SimulationError, match="workload_options"):
            Scenario(
                workload="hybrid", workload_options={"n_jbos": 3}
            )

    def test_malicious_workload_plus_side_deployment_rejected(self):
        with pytest.raises(SimulationError, match="squatters"):
            Scenario(
                workload="malicious",
                malicious=MaliciousConfig(epc_occupancy=0.5),
            )

    def test_with_rejects_unknown_fields(self):
        with pytest.raises(SimulationError) as excinfo:
            Scenario().with_(warp_factor=9)
        assert "warp_factor" in str(excinfo.value)
        assert "sgx_fraction" in str(excinfo.value)  # valid fields listed

    def test_with_revalidates(self):
        with pytest.raises(SimulationError):
            Scenario().with_(sgx_fraction=7.0)

    def test_immutability(self):
        scenario = Scenario()
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.sgx_fraction = 0.5

    def test_option_mappings_normalised(self):
        from_dict = Scenario(workload_options={"b": 1, "a": 2})
        from_items = Scenario(workload_options=(("a", 2), ("b", 1)))
        assert from_dict.workload_options == (("a", 2), ("b", 1))
        assert from_dict == from_items
        assert hash(from_dict) == hash(from_items)


class TestDerived:
    def test_label_defaults_and_override(self):
        assert (
            Scenario(scheduler="spread", sgx_fraction=0.5, seed=3).label
            == "spread/stress/sgx=0.5/seed=3"
        )
        assert Scenario(name="my-run").label == "my-run"

    def test_to_replay_config_mirrors_fields(self):
        scenario = Scenario(
            scheduler="spread",
            sgx_fraction=0.25,
            seed=9,
            epc_total_bytes=mib(64),
            event_driven=True,
            indexed_scheduling=True,
            use_state_cache=False,
            strict_fcfs=True,
            standard_workers=3,
            sgx_workers=4,
            malicious=MaliciousConfig(epc_occupancy=0.5),
            node_failures=((60.0, "sgx-worker-0"),),
        )
        config = scenario.to_replay_config()
        assert config.scheduler == "spread"
        assert config.sgx_fraction == 0.25
        assert config.seed == 9
        assert config.epc_total_bytes == mib(64)
        assert config.event_driven is True
        assert config.indexed_scheduling is True
        assert config.use_state_cache is False
        assert config.strict_fcfs is True
        assert config.standard_workers == 3
        assert config.sgx_workers == 4
        assert config.malicious == MaliciousConfig(epc_occupancy=0.5)
        assert config.node_failures == ((60.0, "sgx-worker-0"),)

    def test_build_scheduler_honours_toggles(self):
        assert isinstance(
            Scenario(scheduler="binpack").build_scheduler(),
            BinpackScheduler,
        )
        spread = Scenario(
            scheduler="spread", indexed_scheduling=True, strict_fcfs=True
        ).build_scheduler()
        assert isinstance(spread, SpreadScheduler)
        assert spread.indexed is True
        assert spread.strict_fcfs is True

    def test_build_trace_scales_overallocators(self):
        trace = Scenario(trace_seed=7, trace_jobs=60).build_trace()
        assert len(trace) == 60
        assert trace.overallocator_count == round(60 * 44 / 663)
        pinned = Scenario(
            trace_seed=7, trace_jobs=60, trace_overallocators=9
        ).build_trace()
        assert pinned.overallocator_count == 9

    def test_explicit_trace_returned_as_is(self, small_trace):
        scenario = Scenario(trace=small_trace)
        assert scenario.build_trace() is small_trace

    def test_explicit_trace_conflicts_with_synthesis_knobs(
        self, small_trace
    ):
        with pytest.raises(SimulationError, match="explicit trace"):
            Scenario(trace=small_trace, trace_jobs=5)
        with pytest.raises(SimulationError, match="explicit trace"):
            Scenario(trace=small_trace, trace_overallocators=2)


class TestRun:
    @pytest.fixture(scope="class")
    def result(self, request):
        scenario = Scenario(
            trace_seed=7,
            trace_jobs=40,
            trace_overallocators=4,
            sgx_fraction=0.5,
            seed=1,
        )
        return scenario.run()

    def test_all_jobs_complete(self, result):
        assert len(result.metrics.pods) == 40
        assert len(result.metrics.succeeded) == 40
        assert result.passes_executed > 0

    def test_matches_legacy_engine_bit_for_bit(self, result):
        scenario = result.scenario
        legacy = run_replay(
            scenario.build_trace(), scenario.to_replay_config()
        )
        legacy_signature = tuple(
            (
                pod.name,
                pod.phase.value,
                pod.submitted_at,
                pod.bound_at,
                pod.started_at,
                pod.finished_at,
                pod.node_name,
            )
            for pod in legacy.metrics.pods
        )
        assert result.pod_signature() == legacy_signature
        assert (
            result.metrics.makespan_seconds
            == legacy.metrics.makespan_seconds
        )
        assert result.metrics.queue_series == legacy.metrics.queue_series

    def test_to_row_summarises(self, result):
        row = result.to_row()
        assert row["scheduler"] == "binpack"
        assert row["workload"] == "stress"
        assert row["sgx_fraction"] == 0.5
        assert row["submitted"] == 40
        assert row["completed"] == 40
        assert row["failed"] == 0
        assert row["makespan_s"] == round(
            result.metrics.makespan_seconds, 3
        )
        assert row["passes_executed"] == result.passes_executed

    def test_to_json_schema(self, result):
        payload = json.loads(result.to_json())
        assert payload["schema"] == RUN_SCHEMA
        assert payload["completed"] == 40

    def test_to_table_contains_every_header(self, result):
        table = result.to_table()
        for header in result.to_row():
            assert header in table

    def test_result_is_picklable(self, result):
        import pickle

        clone = pickle.loads(pickle.dumps(result))
        assert clone.signature() == result.signature()
        assert clone.scenario == result.scenario

    def test_rerun_is_deterministic(self, result):
        again = result.scenario.run()
        assert again.signature() == result.signature()
