"""The ``repro profile`` command and the profiling harness."""

import json

import pytest

from repro.cli import main
from repro.profiling import (
    PROFILE_SCHEMA,
    FrameStat,
    ProfileReport,
    profile_call,
    profile_scenario,
)

#: Small-but-real scenario flags shared by the smoke tests.
TINY = ["--jobs", "12", "--workers", "2", "--sample-interval", "0"]


class TestUsageErrors:
    """Usage errors exit 2, matching every other subcommand."""

    def test_unknown_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--not-a-flag"])
        assert excinfo.value.code == 2
        assert "unrecognized arguments" in capsys.readouterr().err

    def test_unknown_scheduler_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--scheduler", "nope"])
        assert excinfo.value.code == 2

    def test_bad_top_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["profile", "--top", "0"] + TINY)
        assert excinfo.value.code == 2
        assert "--top" in capsys.readouterr().err

    def test_negative_sample_interval_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            # After TINY so the flag is not overridden by its
            # ``--sample-interval 0`` (argparse keeps the last value).
            main(["profile"] + TINY + ["--sample-interval", "-1"])
        assert excinfo.value.code == 2


class TestSmoke:
    def test_table_output(self, capsys):
        assert main(["profile"] + TINY) == 0
        out = capsys.readouterr().out
        # Scenario summary row, then the frame table.
        assert "makespan_s" in out
        assert "tottime" in out
        assert "profiled wall time" in out

    def test_top_bounds_frame_table(self, capsys):
        assert main(["profile", "--top", "3"] + TINY) == 0
        out = capsys.readouterr().out
        table_start = out.index("ncalls")
        frame_lines = [
            line
            for line in out[table_start:].splitlines()[1:]
            if line.strip()
        ]
        assert len(frame_lines) == 3

    def test_collapsed_out_writes_file(self, tmp_path, capsys):
        path = tmp_path / "stacks.collapsed"
        # Sampling enabled here (interval flag omitted): the run may be
        # too quick to catch a stack, so only the file's existence and
        # line *format* are asserted, not a minimum sample count.
        assert (
            main(
                ["profile", "--jobs", "12", "--workers", "2"]
                + ["--collapsed-out", str(path)]
            )
            == 0
        )
        assert path.exists()
        for line in path.read_text().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack, line
            assert count.isdigit(), line
        assert str(path) in capsys.readouterr().out

    def test_json_document_schema(self, capsys):
        assert main(["profile", "--json"] + TINY) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == PROFILE_SCHEMA
        assert document["wall_seconds"] > 0
        assert document["total_calls"] > 0
        assert document["primitive_calls"] > 0
        assert document["frames"]
        for frame in document["frames"]:
            assert set(frame) == {
                "function", "file", "line", "ncalls",
                "primitive_calls", "tottime", "cumtime",
            }
        samples = document["samples"]
        assert samples["count"] == 0  # sampling disabled by TINY
        assert samples["stacks"] == []
        # The profiled run's summary row rides along for context.
        assert document["result"]["submitted"] == 12


class TestHarness:
    def test_profiling_does_not_perturb_the_run(self):
        from repro.api import Scenario

        scenario = Scenario(
            scheduler="binpack",
            workload="stress",
            trace="borg-synth:jobs=12",
            standard_workers=2,
            sgx_workers=2,
        )
        plain = scenario.run()
        profiled, report = profile_scenario(
            scenario, sample_interval=0
        )
        assert profiled.signature() == plain.signature()
        assert report.frames
        assert report.wall_seconds > 0

    def test_profile_call_returns_result(self):
        result, report = profile_call(
            lambda: sum(range(1000)), sample_interval=0
        )
        assert result == 499500
        assert report.total_calls > 0
        assert report.sample_count == 0
        assert report.collapsed == {}

    def test_frames_sorted_by_tottime(self):
        _, report = profile_call(
            lambda: [sorted(range(100)) for _ in range(50)],
            sample_interval=0,
        )
        times = [frame.tottime for frame in report.frames]
        assert times == sorted(times, reverse=True)

    def test_collapsed_lines_format_and_order(self, tmp_path):
        report = ProfileReport(
            wall_seconds=1.0,
            total_calls=1,
            primitive_calls=1,
            frames=(
                FrameStat("f", "m.py", 3, 4, 4, 0.5, 0.5),
            ),
            collapsed={"a;b;c": 5, "a;b": 9, "a;z": 5},
            sample_count=19,
            sample_interval=0.005,
        )
        lines = report.collapsed_lines()
        # Count-descending, then stack text for equal counts.
        assert lines == ["a;b 9", "a;b;c 5", "a;z 5"]
        path = tmp_path / "out.collapsed"
        assert report.write_collapsed(str(path)) == 3
        assert path.read_text().splitlines() == lines

    def test_top_table_renders_each_frame(self):
        report = ProfileReport(
            wall_seconds=1.0,
            total_calls=10,
            primitive_calls=8,
            frames=(
                FrameStat("hot", "/x/mod.py", 12, 10, 8, 0.75, 0.9),
            ),
            collapsed={},
            sample_count=0,
            sample_interval=0.0,
        )
        table = report.top_table()
        assert "mod.py:hot:12" in table
        assert "10/8" in table  # ncalls/primitive
