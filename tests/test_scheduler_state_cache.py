"""Cluster-state cache through the scheduler stack.

Covers the acceptance properties of the incremental state cache:
cached ``build_views`` equals the full-scan path, a scheduling pass
issues zero window scans when the cache is active, malformed monitoring
rows are skipped visibly, and ``load_after`` matches ``load`` without
allocating hypothetical views.
"""

import logging

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.cluster.topology import paper_cluster
from repro.errors import SchedulingError
from repro.monitoring.aggregate import WindowedAggregateCache
from repro.monitoring.heapster import MEASUREMENT_MEMORY
from repro.monitoring.probe import MEASUREMENT_EPC
from repro.monitoring.tsdb import TimeSeriesDatabase
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.scheduler.base import ClusterStateService, NodeView
from repro.scheduler.binpack import BinpackScheduler
from repro.simulation.runner import ReplayConfig, replay_trace
from repro.units import gib, mib


def drive(orchestrator, n_pods=6, until=30.0):
    """Submit a pod mix, collect metrics and schedule a few rounds."""
    scheduler = BinpackScheduler()
    for index in range(n_pods):
        if index % 2 == 0:
            spec = make_pod_spec(
                f"sgx-{index}",
                duration_seconds=300.0,
                declared_epc_bytes=mib(8),
            )
        else:
            spec = make_pod_spec(
                f"std-{index}",
                duration_seconds=300.0,
                declared_memory_bytes=gib(1),
            )
        orchestrator.submit(spec, now=0.0)
    now = 0.0
    while now < until:
        orchestrator.collect_metrics(now)
        orchestrator.scheduling_pass(scheduler, now=now)
        now += 5.0
    return now


class TestBuildViewsEquivalence:
    def test_cached_views_equal_full_scan_views(self):
        orchestrator = Orchestrator(paper_cluster())
        now = drive(orchestrator)
        service = orchestrator.state_service
        cached = service.build_views(now)
        # Disable both the service-level snapshot path and the InfluxQL
        # fast path, forcing the original full window scan.
        service.cache = None
        orchestrator.db.aggregate_cache = None
        full = service.build_views(now)
        assert cached == full
        assert any(view.used != ResourceVector.zero() for view in cached)

    def test_cache_disabled_orchestrator_has_no_cache(self):
        orchestrator = Orchestrator(paper_cluster(), use_state_cache=False)
        assert orchestrator.aggregate_cache is None
        assert orchestrator.state_service.cache is None
        assert orchestrator.db.aggregate_cache is None

    def test_mismatched_cache_window_is_rejected(self):
        db = TimeSeriesDatabase()
        cache = WindowedAggregateCache(db, window_seconds=300.0)
        with pytest.raises(SchedulingError, match="window"):
            ClusterStateService([], db, window_seconds=25.0, cache=cache)

    def test_shared_db_reuses_one_cache(self):
        db = TimeSeriesDatabase(retention_seconds=3600.0)
        first = Orchestrator(paper_cluster(), db=db)
        second = Orchestrator(paper_cluster(), db=db)
        assert second.aggregate_cache is first.aggregate_cache
        assert len(db._subscribers) == 1

    def test_shared_db_window_mismatch_detaches_older_cache(self):
        db = TimeSeriesDatabase(retention_seconds=3600.0)
        first = Orchestrator(paper_cluster(), db=db)
        second = Orchestrator(
            paper_cluster(), db=db, metrics_window_seconds=60.0
        )
        assert second.aggregate_cache is not first.aggregate_cache
        assert len(db._subscribers) == 1  # old cache detached, not stacked
        # The displaced orchestrator stays correct via the full scan.
        drive(first, until=15.0)
        service = first.state_service
        cached_path = service.build_views(15.0)
        service.cache = None
        assert cached_path == service.build_views(15.0)

    def test_replay_identical_with_and_without_cache(self, small_trace):
        """End to end: the cache changes latency, never behaviour."""
        results = {}
        for use_cache in (True, False):
            config = ReplayConfig(
                scheduler="binpack",
                sgx_fraction=0.5,
                seed=11,
                use_state_cache=use_cache,
            )
            outcome = replay_trace(small_trace, config)
            results[use_cache] = (
                outcome.metrics.makespan_seconds,
                sorted(
                    (pod.name, pod.phase.value, pod.node_name)
                    for pod in outcome.orchestrator.all_pods
                ),
                len(outcome.log),
            )
        assert results[True] == results[False]


class TestZeroScanRegression:
    def test_scheduling_pass_issues_no_window_scans(self):
        orchestrator = Orchestrator(paper_cluster())
        drive(orchestrator, until=20.0)
        scheduler = BinpackScheduler()
        orchestrator.submit(
            make_pod_spec(
                "late", duration_seconds=60.0, declared_epc_bytes=mib(4)
            ),
            now=20.0,
        )
        orchestrator.collect_metrics(20.0)
        before = orchestrator.db.scan_count
        orchestrator.scheduling_pass(scheduler, now=20.0)
        assert orchestrator.db.scan_count == before

    def test_full_scan_path_does_scan(self):
        orchestrator = Orchestrator(paper_cluster(), use_state_cache=False)
        drive(orchestrator, until=20.0)
        before = orchestrator.db.scan_count
        orchestrator.state_service.build_views(20.0)
        assert orchestrator.db.scan_count > before

    def test_disabled_cache_really_scans_on_a_shared_db(self):
        """use_state_cache=False must bypass the InfluxQL fast path even
        when another orchestrator attached a cache to the shared db."""
        db = TimeSeriesDatabase(retention_seconds=3600.0)
        cached = Orchestrator(paper_cluster(), db=db)
        uncached = Orchestrator(paper_cluster(), db=db, use_state_cache=False)
        drive(cached, until=10.0)
        hits_before = cached.aggregate_cache.hits
        scans_before = db.scan_count
        uncached.state_service.build_views(10.0)
        assert db.scan_count > scans_before
        assert cached.aggregate_cache.hits == hits_before


class TestMalformedRows:
    def test_untagged_rows_are_skipped_and_counted(self, caplog):
        db = TimeSeriesDatabase()
        service = ClusterStateService([], db, window_seconds=25.0)
        db.write(MEASUREMENT_MEMORY, value=100.0, time=1.0, tags={})
        db.write(
            MEASUREMENT_MEMORY,
            value=200.0,
            time=1.0,
            tags={"pod_name": "p"},  # nodename missing
        )
        db.write(
            MEASUREMENT_EPC,
            value=50.0,
            time=1.0,
            tags={"nodename": "n"},  # pod_name missing
        )
        with caplog.at_level(logging.WARNING, logger="repro.scheduler.base"):
            measured = service._measured_usage(now=2.0)
        assert measured == {}
        assert service.malformed_rows_skipped == 3
        assert "missing nodename/pod_name" in caplog.text

    def test_well_tagged_rows_unaffected(self):
        db = TimeSeriesDatabase()
        service = ClusterStateService([], db, window_seconds=25.0)
        db.write(
            MEASUREMENT_MEMORY,
            value=100.0,
            time=1.0,
            tags={"pod_name": "p", "nodename": "n"},
        )
        measured = service._measured_usage(now=2.0)
        assert measured == {"n": {"p": (100, 0)}}
        assert service.malformed_rows_skipped == 0


_DIMS = st.integers(min_value=0, max_value=5000)


class TestLoadAfter:
    @given(
        cap=st.tuples(_DIMS, _DIMS, _DIMS),
        used=st.tuples(_DIMS, _DIMS, _DIMS),
        req=st.tuples(_DIMS, _DIMS, _DIMS),
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_load_of_hypothetical_view(self, cap, used, req):
        view = NodeView(
            name="n",
            sgx_capable=cap[2] > 0,
            capacity=ResourceVector(*cap),
            used=ResourceVector(*used),
        )
        requests = ResourceVector(*req)
        hypothetical = NodeView(
            name="n",
            sgx_capable=view.sgx_capable,
            capacity=view.capacity,
            used=view.used + requests,
        )
        assert view.load_after(requests) == pytest.approx(hypothetical.load)

    def test_dimension_node_lacks_is_ignored(self):
        view = NodeView(
            name="std",
            sgx_capable=False,
            capacity=ResourceVector(cpu_millicores=1000, memory_bytes=1000),
            used=ResourceVector(cpu_millicores=500),
        )
        # EPC demand on a node with no EPC: inf ratio is ignored by
        # load(); load_after must do the same.
        assert view.load_after(ResourceVector(epc_pages=10)) == 0.5
