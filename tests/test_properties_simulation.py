"""Property-based tests: whole-replay invariants on random traces."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.orchestrator.api import PodPhase
from repro.simulation.engine import SimulationEngine
from repro.simulation.runner import ReplayConfig, replay_trace
from repro.trace.borg import BorgTraceGenerator

replay_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_jobs=st.integers(min_value=1, max_value=15),
    sgx_fraction=st.sampled_from([0.0, 0.5, 1.0]),
    scheduler=st.sampled_from(["binpack", "spread"]),
)
@replay_settings
def test_replay_invariants(seed, n_jobs, sgx_fraction, scheduler):
    trace = BorgTraceGenerator(seed=seed).scaled_trace(
        n_jobs=n_jobs, overallocators=0, window_seconds=600.0
    )
    result = replay_trace(
        trace,
        ReplayConfig(
            scheduler=scheduler, sgx_fraction=sgx_fraction, seed=seed
        ),
    )
    durations = {job.job_id: job.duration for job in trace}
    for pod in result.metrics.pods:
        # Everything terminates.
        assert pod.phase.is_terminal
        if pod.phase is PodPhase.SUCCEEDED:
            # Causality: submit <= bind <= start <= finish.
            assert pod.submitted_at <= pod.bound_at <= pod.started_at
            assert pod.started_at <= pod.finished_at
            # Turnaround is at least the useful duration.
            job_id = int(pod.spec.labels["job_id"])
            assert (
                pod.turnaround_seconds >= durations[job_id] - 1e-6
            )
    # The node books are balanced at the end: nothing is still admitted.
    for kubelet in result.orchestrator.kubelets.values():
        assert kubelet.pod_count == 0
        assert kubelet.node.used_epc_pages() == 0


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), max_size=50
    )
)
@settings(max_examples=100)
def test_engine_clock_is_monotonic(delays):
    engine = SimulationEngine()
    observed = []
    for delay in delays:
        engine.schedule_in(delay, lambda: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)
