"""Resource vector arithmetic and comparisons."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.errors import ResourceError
from repro.units import gib, mib


def vec(cpu=0, mem=0, epc=0) -> ResourceVector:
    return ResourceVector(
        cpu_millicores=cpu, memory_bytes=mem, epc_pages=epc
    )


class TestConstruction:
    def test_zero(self):
        zero = ResourceVector.zero()
        assert zero == vec()

    def test_non_int_rejected(self):
        with pytest.raises(ResourceError):
            ResourceVector(cpu_millicores=1.5)  # type: ignore[arg-type]

    def test_frozen(self):
        with pytest.raises(AttributeError):
            vec().cpu_millicores = 5  # type: ignore[misc]


class TestArithmetic:
    def test_add(self):
        assert vec(1, 2, 3) + vec(4, 5, 6) == vec(5, 7, 9)

    def test_sub(self):
        assert vec(5, 7, 9) - vec(4, 5, 6) == vec(1, 2, 3)

    def test_sub_can_go_negative(self):
        result = vec(1) - vec(2)
        assert result.cpu_millicores == -1
        assert not result.is_nonnegative

    def test_clamp_floor(self):
        assert (vec(1) - vec(2)).clamp_floor() == vec(0)

    def test_addition_identity(self):
        v = vec(3, 4, 5)
        assert v + ResourceVector.zero() == v


class TestComparisons:
    def test_fits_within_true(self):
        assert vec(1, 1, 1).fits_within(vec(1, 1, 1))

    def test_fits_within_false_single_dimension(self):
        assert not vec(0, 2, 0).fits_within(vec(5, 1, 5))

    def test_requires_sgx(self):
        assert vec(epc=1).requires_sgx
        assert not vec(mem=gib(1)).requires_sgx


class TestUtilization:
    def test_ratios(self):
        used = vec(cpu=500, mem=gib(1), epc=100)
        cap = vec(cpu=1000, mem=gib(2), epc=200)
        ratios = used.utilization_of(cap)
        assert ratios == {"cpu": 0.5, "memory": 0.5, "epc": 0.5}

    def test_zero_capacity_unused_is_zero(self):
        ratios = vec(mem=gib(1)).utilization_of(vec(mem=gib(2)))
        assert ratios["epc"] == 0.0

    def test_zero_capacity_used_is_inf(self):
        ratios = vec(epc=1).utilization_of(vec(mem=gib(2)))
        assert ratios["epc"] == float("inf")

    def test_dominant_utilization(self):
        used = vec(cpu=100, mem=mib(512), epc=150)
        cap = vec(cpu=1000, mem=gib(1), epc=200)
        assert used.dominant_utilization(cap) == pytest.approx(0.75)

    def test_repr_is_readable(self):
        assert "MiB" in repr(vec(epc=256))
