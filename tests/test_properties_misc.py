"""Property-based tests: cgroups, trace pipeline, perf model, sealing."""

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.cluster.cgroups import CgroupHierarchy
from repro.errors import CgroupError
from repro.sgx.perf import SgxPerfModel
from repro.trace.borg import BorgTraceGenerator
from repro.trace.scaling import (
    renumber_from_zero,
    sample_stride,
    slice_window,
)
from repro.units import mib


class CgroupMachine(RuleBasedStateMachine):
    """Stateful check: the hierarchy mirrors a model dict exactly."""

    def __init__(self):
        super().__init__()
        self.hierarchy = CgroupHierarchy()
        self.model_pids = {}  # pid -> path
        self.created = set()

    @rule(uid=st.integers(min_value=0, max_value=30))
    def create_pod(self, uid):
        path = f"/kubepods/burstable/pod{uid}"
        if path in self.created:
            try:
                self.hierarchy.create_pod_cgroup(str(uid))
                raise AssertionError("duplicate pod cgroup accepted")
            except CgroupError:
                return
        self.hierarchy.create_pod_cgroup(str(uid))
        self.created.add(path)

    @precondition(lambda self: self.created)
    @rule(pid=st.integers(min_value=1, max_value=200), data=st.data())
    def attach(self, pid, data):
        path = data.draw(st.sampled_from(sorted(self.created)))
        self.hierarchy.attach(pid, path)
        self.model_pids[pid] = path

    @precondition(lambda self: self.model_pids)
    @rule(data=st.data())
    def detach(self, data):
        pid = data.draw(st.sampled_from(sorted(self.model_pids)))
        self.hierarchy.detach(pid)
        del self.model_pids[pid]

    @precondition(lambda self: self.created)
    @rule(data=st.data())
    def remove_if_empty(self, data):
        path = data.draw(st.sampled_from(sorted(self.created)))
        occupied = any(p == path for p in self.model_pids.values())
        try:
            self.hierarchy.remove(path)
            assert not occupied, "removed an occupied cgroup"
            self.created.remove(path)
        except CgroupError:
            assert occupied, "refused to remove an empty cgroup"

    @invariant()
    def attachments_match_model(self):
        for pid, path in self.model_pids.items():
            assert self.hierarchy.cgroup_of(pid) == path
        for path in self.created:
            assert self.hierarchy.exists(path)


TestCgroupStateMachine = CgroupMachine.TestCase


class TestTracePipelineProperties:
    @given(
        seed=st.integers(0, 1000),
        start=st.floats(0.0, 1000.0),
        length=st.floats(10.0, 2000.0),
    )
    @settings(max_examples=40)
    def test_slice_stride_renumber_invariants(self, seed, start, length):
        trace = BorgTraceGenerator(seed=seed).scaled_trace(
            n_jobs=200, overallocators=10
        )
        window = slice_window(trace, start, start + length)
        sampled = sample_stride(window, stride=3)
        final = renumber_from_zero(sampled)
        # Never grows, preserves order, starts at zero.
        assert len(final) == len(sampled) <= len(window) <= len(trace)
        times = [j.submit_time for j in final]
        assert times == sorted(times)
        if times:
            assert times[0] == 0.0
        # Scaling never alters per-job payloads.
        for before, after in zip(sampled.jobs, final.jobs, strict=False):
            assert after.duration == before.duration
            assert after.max_memory == before.max_memory

    @given(
        n_jobs=st.integers(1, 300),
        overallocators=st.integers(0, 50),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=40)
    def test_overallocator_count_is_exact(
        self, n_jobs, overallocators, seed
    ):
        overallocators = min(overallocators, n_jobs)
        trace = BorgTraceGenerator(seed=seed).scaled_trace(
            n_jobs=n_jobs, overallocators=overallocators
        )
        assert trace.overallocator_count == overallocators


class TestPerfModelProperties:
    @given(
        a=st.integers(0, 256),
        b=st.integers(0, 256),
    )
    @settings(max_examples=60)
    def test_allocation_monotone(self, a, b):
        model = SgxPerfModel()
        low, high = sorted((mib(a), mib(b)))
        assert model.allocation_seconds(low) <= model.allocation_seconds(
            high
        )

    @given(
        ratio_a=st.floats(0.0, 5.0),
        ratio_b=st.floats(0.0, 5.0),
    )
    @settings(max_examples=60)
    def test_slowdown_monotone_and_bounded(self, ratio_a, ratio_b):
        model = SgxPerfModel()
        low, high = sorted((ratio_a, ratio_b))
        slow_low = model.paging_slowdown(low)
        slow_high = model.paging_slowdown(high)
        assert 1.0 <= slow_low <= slow_high <= 1000.0


class TestSealingProperties:
    @given(payload=st.binary(max_size=512), seed=st.integers(0, 100))
    @settings(max_examples=40)
    def test_seal_unseal_roundtrip_any_payload(self, payload, seed):
        from repro.sgx.aesm import AesmService
        from repro.sgx.enclave import Enclave
        from repro.sgx.epc import EnclavePageCache
        from repro.sgx.sealing import SealingService

        aesm = AesmService()
        aesm.start()
        enclave = Enclave(
            owner="/kubepods/burstable/podp",
            epc=EnclavePageCache(),
            size_bytes=mib(1),
            signer=f"vendor-{seed}",
        )
        enclave.initialize(
            aesm.get_launch_token(enclave.measurement, enclave.signer)
        )
        service = SealingService(f"platform-{seed}")
        blob = service.seal(enclave, payload)
        assert service.unseal(enclave, blob) == payload
