"""Trace scaling pipeline and the public-CSV loader."""

import pytest

from repro.errors import TraceError
from repro.trace.loader import dump_borg_csv, load_borg_csv
from repro.trace.scaling import (
    renumber_from_zero,
    sample_stride,
    scale_pipeline,
    slice_window,
)
from repro.trace.schema import JobRecord, Trace


def job(job_id, submit, duration=10.0):
    return JobRecord(
        job_id=job_id,
        submit_time=submit,
        duration=duration,
        assigned_memory=0.1,
        max_memory=0.05,
    )


@pytest.fixture
def long_trace() -> Trace:
    return Trace([job(i, float(i * 10)) for i in range(2000)])


class TestSliceWindow:
    def test_keeps_only_window_submissions(self, long_trace):
        window = slice_window(long_trace, 100.0, 200.0)
        times = [j.submit_time for j in window]
        assert min(times) >= 100.0
        assert max(times) < 200.0

    def test_default_is_papers_window(self, long_trace):
        window = slice_window(long_trace)
        assert all(
            6480.0 <= j.submit_time < 10_080.0 for j in window
        )

    def test_empty_window_rejected(self, long_trace):
        with pytest.raises(TraceError):
            slice_window(long_trace, 100.0, 100.0)


class TestSampleStride:
    def test_every_nth_job(self, long_trace):
        sampled = sample_stride(long_trace, stride=100)
        assert len(sampled) == 20
        assert [j.job_id for j in sampled][:3] == [0, 100, 200]

    def test_offset(self, long_trace):
        sampled = sample_stride(long_trace, stride=100, offset=5)
        assert sampled[0].job_id == 5

    def test_bad_stride_rejected(self, long_trace):
        with pytest.raises(TraceError):
            sample_stride(long_trace, stride=0)

    def test_bad_offset_rejected(self, long_trace):
        with pytest.raises(TraceError):
            sample_stride(long_trace, offset=-1)


class TestRenumber:
    def test_first_submission_at_zero(self, long_trace):
        window = slice_window(long_trace, 100.0, 500.0)
        renumbered = renumber_from_zero(window)
        assert renumbered[0].submit_time == 0.0

    def test_relative_spacing_preserved(self, long_trace):
        window = slice_window(long_trace, 100.0, 500.0)
        renumbered = renumber_from_zero(window)
        original_gaps = [
            b.submit_time - a.submit_time
            for a, b in zip(window.jobs, window.jobs[1:], strict=False)
        ]
        new_gaps = [
            b.submit_time - a.submit_time
            for a, b in zip(renumbered.jobs, renumbered.jobs[1:], strict=False)
        ]
        assert new_gaps == original_gaps

    def test_empty_trace_ok(self):
        assert len(renumber_from_zero(Trace())) == 0


class TestPipeline:
    def test_full_pipeline(self, long_trace):
        scaled = scale_pipeline(
            long_trace, start_seconds=0.0, end_seconds=20_000.0, stride=10
        )
        assert len(scaled) == 200
        assert scaled[0].submit_time == 0.0


class TestLoader:
    def test_round_trip(self, tmp_path, long_trace):
        path = tmp_path / "trace.csv"
        small = Trace(long_trace.jobs[:10])
        dump_borg_csv(small, path)
        loaded = load_borg_csv(path)
        assert len(loaded) == 10
        assert loaded[0].submit_time == small[0].submit_time

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceError, match="not found"):
            load_borg_csv(tmp_path / "ghost.csv")

    def test_comments_and_header_skipped(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "job_id,submit,duration,assigned,max\n"
            "# a comment\n"
            "1,0.0,10.0,0.1,0.05\n"
        )
        loaded = load_borg_csv(path)
        assert len(loaded) == 1

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("1,0.0,10.0\n")
        with pytest.raises(TraceError, match="columns"):
            load_borg_csv(path)

    def test_bad_values_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("1,0.0,-5.0,0.1,0.05\n")
        with pytest.raises(TraceError, match="bad job record"):
            load_borg_csv(path)
