"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.cluster.topology import paper_cluster
from repro.monitoring.tsdb import TimeSeriesDatabase
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.trace.borg import synthetic_scaled_trace
from repro.units import gib, mib


@pytest.fixture
def sgx_node() -> Node:
    """A fresh SGX worker with default 128 MiB PRM."""
    return Node(NodeSpec.sgx("sgx-test-0"))


@pytest.fixture
def standard_node() -> Node:
    """A fresh standard worker (64 GiB, no SGX)."""
    return Node(NodeSpec.standard("std-test-0"))


@pytest.fixture
def cluster():
    """The paper's 2+2 worker inventory."""
    return paper_cluster()


@pytest.fixture
def orchestrator(cluster) -> Orchestrator:
    """A control plane over the paper cluster."""
    return Orchestrator(cluster)


@pytest.fixture
def db() -> TimeSeriesDatabase:
    """An empty time-series database."""
    return TimeSeriesDatabase()


@pytest.fixture
def small_trace():
    """A fast 40-job trace for replay tests."""
    return synthetic_scaled_trace(seed=7, n_jobs=40, overallocators=4)


@pytest.fixture
def sgx_pod_spec():
    """A small SGX pod: 10 MiB EPC declared and used, 60 s runtime."""
    return make_pod_spec(
        "sgx-pod",
        duration_seconds=60.0,
        declared_epc_bytes=mib(10),
    )


@pytest.fixture
def standard_pod_spec():
    """A standard pod: 1 GiB declared and used, 60 s runtime."""
    return make_pod_spec(
        "std-pod",
        duration_seconds=60.0,
        declared_memory_bytes=gib(1),
    )
