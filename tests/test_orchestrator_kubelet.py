"""Kubelet: admission pipeline, limit relay, usage reporting."""

import pytest

from repro.cluster.node import Node, NodeSpec
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.kubelet import Kubelet
from repro.orchestrator.pod import Pod
from repro.units import gib, mib, pages


def make_kubelet(node=None, **kwargs) -> Kubelet:
    return Kubelet(node or Node(NodeSpec.sgx("sgx-0")), **kwargs)


def sgx_pod(
    name="p",
    declared_mib=10.0,
    actual_mib=None,
    duration=30.0,
) -> Pod:
    spec = make_pod_spec(
        name,
        duration_seconds=duration,
        declared_epc_bytes=mib(declared_mib),
        actual_epc_bytes=mib(actual_mib if actual_mib else declared_mib),
    )
    return Pod(spec, submitted_at=0.0)


def standard_pod(name="p", declared_gib=1.0, actual_gib=None) -> Pod:
    spec = make_pod_spec(
        name,
        duration_seconds=30.0,
        declared_memory_bytes=gib(declared_gib),
        actual_memory_bytes=gib(actual_gib if actual_gib else declared_gib),
    )
    return Pod(spec, submitted_at=0.0)


class TestAdmission:
    def test_standard_pod_fast_startup(self):
        kubelet = make_kubelet(Node(NodeSpec.standard("w0")))
        pod = standard_pod()
        pod.mark_bound("w0", 1.0)
        result = kubelet.admit(pod)
        assert result.success
        assert result.startup_seconds <= 0.001

    def test_sgx_pod_startup_includes_psw_and_alloc(self):
        kubelet = make_kubelet()
        pod = sgx_pod(declared_mib=50)
        pod.mark_bound("sgx-0", 1.0)
        result = kubelet.admit(pod)
        assert result.success
        # 100 ms PSW + 50 MiB * 1.6 ms/MiB.
        assert result.startup_seconds == pytest.approx(
            0.100 + 50 * 0.0016, rel=1e-6
        )

    def test_admission_creates_cgroup_before_processes(self):
        kubelet = make_kubelet()
        pod = sgx_pod()
        pod.mark_bound("sgx-0", 1.0)
        kubelet.admit(pod)
        assert pod.cgroup_path is not None
        assert kubelet.node.cgroups.exists(pod.cgroup_path)

    def test_admission_relays_limit_to_driver(self):
        kubelet = make_kubelet()
        pod = sgx_pod(declared_mib=10)
        pod.mark_bound("sgx-0", 1.0)
        kubelet.admit(pod)
        assert kubelet.node.driver.pod_limit(pod.cgroup_path) == pages(
            mib(10)
        )

    def test_double_admission_rejected(self):
        kubelet = make_kubelet()
        pod = sgx_pod()
        pod.mark_bound("sgx-0", 1.0)
        kubelet.admit(pod)
        from repro.errors import NodeError

        with pytest.raises(NodeError):
            kubelet.admit(pod)

    def test_sgx_pod_on_non_sgx_node_fails(self):
        kubelet = make_kubelet(Node(NodeSpec.standard("w0")))
        pod = sgx_pod()
        pod.mark_bound("w0", 1.0)
        result = kubelet.admit(pod)
        assert not result.success
        assert "/dev/isgx" in result.failure_reason

    def test_pod_without_workload_rejected(self):
        from repro.errors import NodeError
        from repro.orchestrator.api import PodSpec

        kubelet = make_kubelet()
        pod = Pod(PodSpec(name="bare"), submitted_at=0.0)
        pod.mark_bound("sgx-0", 1.0)
        with pytest.raises(NodeError):
            kubelet.admit(pod)


class TestLimitEnforcement:
    def test_overallocating_pod_killed_at_launch(self):
        kubelet = make_kubelet()
        pod = sgx_pod(declared_mib=1, actual_mib=20)
        pod.mark_bound("sgx-0", 1.0)
        result = kubelet.admit(pod)
        assert not result.success
        assert "limit" in result.failure_reason.lower()
        # Everything torn down: no cgroup, no EPC, no record.
        assert kubelet.pod_count == 0
        assert kubelet.node.used_epc_pages() == 0

    def test_overallocating_pod_survives_without_enforcement(self):
        node = Node(
            NodeSpec.sgx(
                "sgx-0", enforce_epc_limits=False, epc_allow_overcommit=True
            )
        )
        kubelet = make_kubelet(node)
        pod = sgx_pod(declared_mib=1, actual_mib=20)
        pod.mark_bound("sgx-0", 1.0)
        assert kubelet.admit(pod).success
        assert node.used_epc_pages() == pages(mib(20))

    def test_strict_epc_exhaustion_fails_admission(self):
        kubelet = make_kubelet()
        first = sgx_pod("a", declared_mib=90)
        first.mark_bound("sgx-0", 1.0)
        assert kubelet.admit(first).success
        second = sgx_pod("b", declared_mib=10)
        second.mark_bound("sgx-0", 1.0)
        result = kubelet.admit(second)
        assert not result.success
        assert "enclave creation failed" in result.failure_reason

    def test_memory_limit_enforcement_optional(self):
        kubelet = make_kubelet(
            Node(NodeSpec.standard("w0")), enforce_memory_limits=True
        )
        pod = standard_pod(declared_gib=1, actual_gib=2)
        pod.mark_bound("w0", 1.0)
        result = kubelet.admit(pod)
        assert not result.success
        assert "OOMKilled" in result.failure_reason


class TestTermination:
    def test_terminate_frees_everything(self):
        kubelet = make_kubelet()
        pod = sgx_pod(declared_mib=10)
        pod.mark_bound("sgx-0", 1.0)
        kubelet.admit(pod)
        kubelet.terminate(pod)
        assert kubelet.pod_count == 0
        assert kubelet.node.used_epc_pages() == 0
        assert not kubelet.node.cgroups.exists(pod.cgroup_path)
        assert kubelet.node.driver.pod_limit(pod.cgroup_path) is None

    def test_terminate_unknown_pod_is_noop(self):
        make_kubelet().terminate(sgx_pod())


class TestReporting:
    def test_committed_requests_sum(self):
        kubelet = make_kubelet()
        for name, size in (("a", 10), ("b", 20)):
            pod = sgx_pod(name, declared_mib=size)
            pod.mark_bound("sgx-0", 1.0)
            kubelet.admit(pod)
        assert kubelet.committed_requests().epc_pages == pages(
            mib(10)
        ) + pages(mib(20))

    def test_pod_memory_usage_reports_actuals(self):
        kubelet = make_kubelet(Node(NodeSpec.standard("w0")))
        pod = standard_pod(declared_gib=1, actual_gib=1.5)
        pod.mark_bound("w0", 1.0)
        kubelet.admit(pod)
        (usage,) = kubelet.pod_memory_usage()
        assert usage.value == gib(1.5)
        assert usage.node_name == "w0"

    def test_resolve_pod_name(self):
        kubelet = make_kubelet()
        pod = sgx_pod("lookup-me")
        pod.mark_bound("sgx-0", 1.0)
        kubelet.admit(pod)
        assert kubelet.resolve_pod_name(pod.cgroup_path) == "lookup-me"
        assert kubelet.resolve_pod_name("/nope") is None

    def test_admitted_pods_listing(self):
        kubelet = make_kubelet()
        pod = sgx_pod()
        pod.mark_bound("sgx-0", 1.0)
        kubelet.admit(pod)
        assert kubelet.admitted_pods() == [pod]

    def test_epc_overcommit_ratio_healthy(self):
        assert make_kubelet().epc_overcommit_ratio() == pytest.approx(
            0.0, abs=1e-9
        ) or make_kubelet().epc_overcommit_ratio() <= 1.0
