"""CDFs, percentiles and confidence intervals."""

import pytest

from repro.errors import TraceError
from repro.trace.stats import (
    cdf_at,
    confidence_interval_95,
    empirical_cdf,
    mean,
    percentile,
)


class TestEmpiricalCdf:
    def test_steps_reach_100(self):
        points = empirical_cdf([1.0, 2.0, 3.0])
        assert points[-1] == (3.0, pytest.approx(100.0))

    def test_duplicates_collapse(self):
        points = empirical_cdf([1.0, 1.0, 2.0])
        assert points == [
            (1.0, pytest.approx(200.0 / 3.0)),
            (2.0, pytest.approx(100.0)),
        ]

    def test_monotone(self):
        points = empirical_cdf([5.0, 1.0, 3.0, 2.0, 4.0])
        shares = [s for _, s in points]
        assert shares == sorted(shares)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            empirical_cdf([])


class TestCdfAt:
    def test_interior_value(self):
        assert cdf_at([1.0, 2.0, 3.0, 4.0], 2.0) == 50.0

    def test_below_minimum(self):
        assert cdf_at([1.0, 2.0], 0.5) == 0.0

    def test_above_maximum(self):
        assert cdf_at([1.0, 2.0], 10.0) == 100.0

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            cdf_at([], 1.0)


class TestPercentile:
    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50.0) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == 2.5

    def test_extremes(self):
        samples = [3.0, 1.0, 2.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 100.0) == 3.0

    def test_single_sample(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            percentile([1.0], 101.0)


class TestMeanAndCi:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(TraceError):
            mean([])

    def test_ci_zero_for_constant_samples(self):
        center, half = confidence_interval_95([5.0, 5.0, 5.0])
        assert center == 5.0
        assert half == 0.0

    def test_ci_single_sample(self):
        center, half = confidence_interval_95([5.0])
        assert center == 5.0
        assert half == 0.0

    def test_ci_shrinks_with_sample_size(self):
        small = confidence_interval_95([1.0, 3.0] * 5)[1]
        large = confidence_interval_95([1.0, 3.0] * 500)[1]
        assert large < small
