"""Indexed batch scheduling: bit-for-bit equivalence with the oracle.

The tentpole claim of the candidate-index layer: answering each pod
from the per-resource indexes (capacity classes, availability bounds,
name order, dominant-utilisation order, load cache) with incremental
updates between batch placements reproduces the per-pod full-scan
oracle exactly — same assignments, same rejections, same deferrals,
same view mutations — across every strategy and flag combination, and
end to end across whole replays including requeues, node churn and
rebalancer migrations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resources import ResourceVector
from repro.orchestrator.api import PodSpec, ResourceRequirements
from repro.orchestrator.pod import Pod
from repro.scheduler import (
    BinpackScheduler,
    KubeDefaultScheduler,
    NodeView,
    SpreadScheduler,
)
from repro.scheduler.index import NodeCandidateIndex, SelectionStats
from repro.simulation.runner import ReplayConfig, replay_trace
from repro.trace.borg import synthetic_scaled_trace
from repro.units import gib, mib


def make_view(
    name, sgx=False, cpu=8000, mem=gib(64), epc=0, used=None, committed=None
):
    return NodeView(
        name=name,
        sgx_capable=sgx,
        capacity=ResourceVector(cpu, mem, epc),
        used=used or ResourceVector.zero(),
        committed=committed or ResourceVector.zero(),
    )


def make_pod(name, cpu=0, mem=0, epc=0, submitted_at=0.0):
    spec = PodSpec(
        name=name,
        resources=ResourceRequirements(
            requests=ResourceVector(cpu, mem, epc)
        ),
    )
    return Pod(spec, submitted_at=submitted_at)


def clone_views(views):
    return [
        NodeView(
            name=view.name,
            sgx_capable=view.sgx_capable,
            capacity=view.capacity,
            used=view.used,
            committed=view.committed,
        )
        for view in views
    ]


def outcome_signature(outcome):
    return (
        [(a.pod.name, a.node_name) for a in outcome.assignments],
        [pod.name for pod in outcome.unschedulable],
        [pod.name for pod in outcome.deferred],
    )


def views_signature(views):
    return [(v.name, v.used, v.committed) for v in views]


# -- hypothesis: one pass, adversarial views and queues ------------------

_vec = st.builds(
    ResourceVector,
    cpu_millicores=st.integers(0, 4000),
    memory_bytes=st.sampled_from([0, mib(512), gib(1), gib(4), gib(64)]),
    epc_pages=st.integers(0, 4096),
)

_view_strategy = st.builds(
    dict,
    sgx=st.booleans(),
    capacity=_vec,
    used=_vec,
    committed=_vec,
)

_pod_strategy = st.builds(
    dict,
    cpu=st.integers(0, 4000),
    mem=st.sampled_from([0, mib(512), gib(1), gib(4), gib(32)]),
    epc=st.integers(0, 4096),
)


def build_schedulers(kind, use_measured, strict, preserve, indexed):
    if kind == "kube-default":
        scheduler = KubeDefaultScheduler(
            strict_fcfs=strict, indexed=indexed
        )
        # Not a constructor knob of the baseline; toggled to cover the
        # merged-pool fallback of the indexed path too.
        scheduler.preserve_sgx_nodes = preserve
        return scheduler
    cls = BinpackScheduler if kind == "binpack" else SpreadScheduler
    return cls(
        use_measured=use_measured,
        strict_fcfs=strict,
        preserve_sgx_nodes=preserve,
        indexed=indexed,
    )


class TestPassEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        kind=st.sampled_from(["binpack", "spread", "kube-default"]),
        use_measured=st.booleans(),
        strict=st.booleans(),
        preserve=st.booleans(),
        raw_views=st.lists(_view_strategy, min_size=0, max_size=8),
        raw_pods=st.lists(_pod_strategy, min_size=0, max_size=10),
    )
    def test_single_pass_bit_for_bit(
        self, kind, use_measured, strict, preserve, raw_views, raw_pods
    ):
        views = [
            NodeView(
                name=f"n{i:03d}",
                sgx_capable=raw["sgx"],
                capacity=raw["capacity"],
                used=raw["used"],
                committed=raw["committed"],
            )
            for i, raw in enumerate(raw_views)
        ]
        pods = [
            make_pod(f"p{i:03d}", submitted_at=float(i), **raw)
            for i, raw in enumerate(raw_pods)
        ]
        oracle = build_schedulers(
            kind, use_measured, strict, preserve, indexed=False
        )
        indexed = build_schedulers(
            kind, use_measured, strict, preserve, indexed=True
        )
        oracle_views = clone_views(views)
        indexed_views = clone_views(views)
        oracle_outcome = oracle.schedule(pods, oracle_views, now=100.0)
        indexed_outcome = indexed.schedule(pods, indexed_views, now=100.0)
        assert outcome_signature(indexed_outcome) == outcome_signature(
            oracle_outcome
        )
        assert views_signature(indexed_views) == views_signature(
            oracle_views
        )
        assert oracle.last_selection_stats is None
        stats = indexed.last_selection_stats
        assert stats is not None and stats.pods == len(pods)
        assert stats.placements == len(indexed_outcome.assignments)
        # Deferral classification agrees: the oracle's linear scan and
        # the index's O(1) tree-root maxima name the same binding
        # dimension for every deferred pod.
        assert indexed_outcome.wait_reasons == oracle_outcome.wait_reasons
        assert stats.wait_reasons == indexed_outcome.wait_reasons

    @settings(max_examples=60, deadline=None)
    @given(
        kind=st.sampled_from(["binpack", "spread", "kube-default"]),
        raw_views=st.lists(_view_strategy, min_size=1, max_size=6),
        batches=st.lists(
            st.lists(_pod_strategy, min_size=0, max_size=5),
            min_size=2,
            max_size=4,
        ),
    )
    def test_consecutive_batches_reuse_statics(
        self, kind, raw_views, batches
    ):
        """Multi-pass runs stay equivalent while the membership statics
        are served from the scheduler's cross-pass cache."""
        views = [
            NodeView(
                name=f"n{i:03d}",
                sgx_capable=raw["sgx"],
                capacity=raw["capacity"],
                used=raw["used"],
                committed=raw["committed"],
            )
            for i, raw in enumerate(raw_views)
        ]
        oracle = build_schedulers(kind, True, False, True, indexed=False)
        indexed = build_schedulers(kind, True, False, True, indexed=True)
        oracle_views = clone_views(views)
        indexed_views = clone_views(views)
        counter = 0
        for round_number, batch in enumerate(batches):
            pods = []
            for raw in batch:
                pods.append(
                    make_pod(
                        f"p{counter:03d}",
                        submitted_at=float(counter),
                        **raw,
                    )
                )
                counter += 1
            a = oracle.schedule(pods, oracle_views, now=100.0)
            b = indexed.schedule(pods, indexed_views, now=100.0)
            assert outcome_signature(b) == outcome_signature(a)
            assert views_signature(indexed_views) == views_signature(
                oracle_views
            )
            stats = indexed.last_selection_stats
            assert stats.statics_reused == (round_number > 0)


# -- targeted index behaviour --------------------------------------------

class TestIndexInternals:
    def test_capacity_classes_answer_can_ever_fit(self):
        views = [
            make_view("a", cpu=1000, mem=gib(1)),
            make_view("b", cpu=1000, mem=gib(1)),
            make_view("sgx-a", sgx=True, cpu=1000, mem=gib(1), epc=100),
        ]
        index = NodeCandidateIndex(views)
        assert index.can_ever_fit(make_pod("std", mem=gib(1)))
        assert not index.can_ever_fit(make_pod("huge", mem=gib(2)))
        assert index.can_ever_fit(make_pod("enclave", epc=100))
        assert not index.can_ever_fit(make_pod("too-big", epc=101))
        # Only SGX capacities count for an SGX pod, however roomy the
        # standard nodes are.
        assert not index.can_ever_fit(
            make_pod("enclave-ram", mem=gib(1), epc=101)
        )

    def test_tree_roots_answer_saturated_queries_in_o1(self):
        views = [
            make_view("a", cpu=100, mem=mib(512)),
            make_view("b", cpu=100, mem=mib(512)),
        ]
        stats = SelectionStats()
        index = NodeCandidateIndex(views, stats=stats)
        pod = make_pod("big", mem=gib(1))
        assert index.candidates(pod, preserve=True) == []
        checks_after_first = stats.feasibility_checks
        assert index.candidates(pod, preserve=True) == []
        # Both queries are answered from the availability-tree roots
        # without touching any per-node state.
        assert stats.feasibility_checks == checks_after_first
        assert stats.bound_skips >= 1

    def test_tree_tracks_in_batch_reservations(self):
        views = [make_view("a", cpu=1000, mem=gib(1))]
        index = NodeCandidateIndex(views)
        pod = make_pod("filler", mem=gib(1))
        chosen = index.first_fit(pod, preserve=True)
        assert chosen is views[0]
        chosen.reserve(pod.spec.resources.requests)
        index.note_reserved(chosen)
        # The reservation propagated to the tree root: the next query
        # is rejected outright, without any per-node feasibility work.
        checks_before = index.stats.feasibility_checks
        assert index.first_fit(make_pod("late", mem=gib(1)), True) is None
        assert index.stats.feasibility_checks == checks_before
        assert index.stats.bound_skips >= 1

    def test_first_fit_backtracks_across_split_maxima(self):
        """A parent's per-dimension maxima can come from different
        children; the descent must not trust an inner admit."""
        views = [
            make_view("a", cpu=4000, mem=mib(512)),
            make_view("b", cpu=100, mem=gib(8)),
            make_view("c", cpu=4000, mem=gib(8)),
        ]
        index = NodeCandidateIndex(views)
        pod = make_pod("picky", cpu=2000, mem=gib(4))
        assert index.first_fit(pod, preserve=True) is views[2]

    def test_selection_stats_reach_pass_result(self):
        from repro.cluster.topology import paper_cluster
        from repro.orchestrator.api import make_pod_spec
        from repro.orchestrator.controller import Orchestrator

        orchestrator = Orchestrator(paper_cluster())
        scheduler = BinpackScheduler(indexed=True)
        orchestrator.submit(
            make_pod_spec(
                "only",
                duration_seconds=10.0,
                declared_memory_bytes=gib(1),
            ),
            now=0.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        assert result.selection is not None
        assert result.selection.pods == 1
        oracle_result = orchestrator.scheduling_pass(
            BinpackScheduler(), now=2.0
        )
        assert oracle_result.selection is None


# -- whole replays -------------------------------------------------------

@pytest.fixture(scope="module")
def small_trace():
    return synthetic_scaled_trace(seed=7, n_jobs=40, overallocators=4)


def pod_signature(result):
    return [
        (
            pod.name,
            pod.phase.value,
            pod.submitted_at,
            pod.bound_at,
            pod.started_at,
            pod.finished_at,
            pod.node_name,
        )
        for pod in result.metrics.pods
    ]


REPLAY_CONFIGS = [
    dict(scheduler="binpack", sgx_fraction=0.5, seed=1),
    dict(scheduler="spread", sgx_fraction=0.5, seed=4),
    dict(scheduler="kube-default", sgx_fraction=0.5, seed=1),
    dict(
        scheduler="binpack",
        sgx_fraction=1.0,
        seed=1,
        enforce_epc_limits=True,
        epc_allow_overcommit=False,
    ),
    # Transient launch failures: requeues with FCFS-preserving backoff.
    dict(
        scheduler="binpack",
        sgx_fraction=1.0,
        seed=1,
        epc_allow_overcommit=False,
        requeue_backoff_seconds=30.0,
    ),
    # Node churn: the index statics cache must turn over cleanly.
    dict(
        scheduler="binpack",
        sgx_fraction=1.0,
        seed=1,
        node_failures=((600.0, "sgx-worker-0"),),
    ),
    dict(
        scheduler="spread",
        sgx_fraction=1.0,
        seed=2,
        node_failures=((400.0, "worker-1"), (900.0, "sgx-worker-1")),
    ),
    # Rebalancer live migrations change occupancy between passes.
    dict(scheduler="binpack", sgx_fraction=1.0, seed=1,
         rebalance_period=15.0),
    # The strict head-of-line variant defers whole tails.
    dict(scheduler="binpack", sgx_fraction=1.0, seed=3, strict_fcfs=True),
    # Ablations: no node preservation / declared-only feasibility.
    dict(scheduler="binpack", sgx_fraction=0.5, seed=1,
         preserve_sgx_nodes=False),
    dict(scheduler="spread", sgx_fraction=0.5, seed=1,
         use_measured=False),
]


class TestReplayEquivalence:
    @pytest.mark.parametrize(
        "kwargs", REPLAY_CONFIGS,
        ids=lambda kw: ",".join(f"{k}={v}" for k, v in kw.items()),
    )
    def test_bit_for_bit_replay(self, small_trace, kwargs):
        oracle = replay_trace(small_trace, ReplayConfig(**kwargs))
        indexed = replay_trace(
            small_trace, ReplayConfig(indexed_scheduling=True, **kwargs)
        )
        assert pod_signature(indexed) == pod_signature(oracle)
        assert (
            indexed.metrics.makespan_seconds
            == oracle.metrics.makespan_seconds
        )
        assert indexed.metrics.queue_series == oracle.metrics.queue_series
        assert indexed.passes_executed == oracle.passes_executed

    def test_composes_with_event_driven(self, small_trace):
        kwargs = dict(scheduler="binpack", sgx_fraction=1.0, seed=1)
        oracle = replay_trace(small_trace, ReplayConfig(**kwargs))
        both = replay_trace(
            small_trace,
            ReplayConfig(
                event_driven=True, indexed_scheduling=True, **kwargs
            ),
        )
        assert pod_signature(both) == pod_signature(oracle)
        assert both.passes_executed < oracle.passes_executed

    def test_indexed_replay_is_deterministic(self, small_trace):
        config = ReplayConfig(
            scheduler="binpack",
            sgx_fraction=1.0,
            seed=5,
            indexed_scheduling=True,
        )
        a = replay_trace(small_trace, config)
        b = replay_trace(small_trace, config)
        assert pod_signature(a) == pod_signature(b)


class TestUnplacement:
    """O(log n) un-placement: the preemption step's index updates."""

    def _sgx_views(self):
        return [
            make_view(f"sgx-{i}", sgx=True, epc=4096) for i in range(4)
        ]

    def test_note_released_restores_first_fit(self):
        views = self._sgx_views()
        index = NodeCandidateIndex(views)
        pod = make_pod("enclave", epc=4096)
        big = ResourceVector(epc_pages=4096)
        # Saturate the first two nodes in name order.
        for view in views[:2]:
            view.reserve(big)
            index.note_reserved(view)
        assert index.first_fit(pod, True).name == "sgx-2"
        # Evict from sgx-0: first fit must return to it.
        views[0].release(big)
        index.note_released(views[0])
        assert index.first_fit(pod, True).name == "sgx-0"

    def test_released_index_equals_freshly_built(self):
        views = self._sgx_views()
        index = NodeCandidateIndex(views)
        delta = ResourceVector(epc_pages=1000)
        for view in views:
            view.reserve(delta)
            index.note_reserved(view)
        views[2].release(delta)
        index.note_released(views[2])
        fresh = NodeCandidateIndex(clone_views(views))
        pod = make_pod("probe", epc=3500)
        assert index.sgx.root == fresh.sgx.root
        assert (
            index.first_fit(pod, True).name
            == fresh.first_fit(pod, True).name
        )
        assert [v.name for v in index.candidates(pod, True)] == [
            v.name for v in fresh.candidates(pod, True)
        ]

    def test_release_updates_load_order(self):
        views = self._sgx_views()
        index = NodeCandidateIndex(views)
        delta = ResourceVector(epc_pages=2048)
        views[0].reserve(delta)
        index.note_reserved(views[0])
        by_load = [name for _, v in index.sgx.iter_by_load()
                   for name in [v.name]]
        assert by_load[-1] == "sgx-0"
        views[0].release(delta)
        index.note_released(views[0])
        loads = dict(
            (v.name, load) for load, v in index.sgx.iter_by_load()
        )
        assert loads["sgx-0"] == 0.0

    def test_availability_maxima_matches_linear_scan(self):
        views = [
            make_view("std-0", mem=gib(64)),
            make_view("sgx-0", sgx=True, mem=gib(8), epc=4096),
            make_view("sgx-1", sgx=True, mem=gib(8), epc=4096),
        ]
        views[1].reserve(ResourceVector(epc_pages=3000))
        index = NodeCandidateIndex(views)
        sgx_pod = make_pod("enclave", epc=1)
        std_pod = make_pod("standard", mem=1)

        def scan(requires_sgx):
            eligible = [
                v for v in views if v.sgx_capable or not requires_sgx
            ]
            return (
                max(v.available.cpu_millicores for v in eligible),
                max(v.available.memory_bytes for v in eligible),
                max(v.available.epc_pages for v in eligible),
            )

        assert index.availability_maxima(sgx_pod) == scan(True)
        assert index.availability_maxima(std_pod) == scan(False)
