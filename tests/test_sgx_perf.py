"""SGX latency model versus the constants measured in Fig. 6."""

import pytest

from repro.errors import SgxError
from repro.sgx.perf import SgxPerfModel
from repro.units import mib


@pytest.fixture
def model() -> SgxPerfModel:
    return SgxPerfModel()


class TestStartupCurve:
    def test_psw_startup_is_about_100ms(self, model):
        assert model.startup(0).psw_seconds == pytest.approx(0.100)

    def test_zero_allocation_costs_nothing(self, model):
        assert model.startup(0).allocation_seconds == 0.0

    def test_slope_below_knee(self, model):
        # 1.6 ms/MiB below the usable EPC.
        latency = model.allocation_seconds(mib(50))
        assert latency == pytest.approx(50 * 0.0016, rel=1e-6)

    def test_knee_at_usable_epc(self, model):
        at_knee = model.allocation_seconds(mib(93.5))
        just_past = model.allocation_seconds(mib(94.5))
        # The fixed 200 ms penalty appears immediately past the knee.
        assert just_past - at_knee > 0.200

    def test_slope_above_knee(self, model):
        low = model.allocation_seconds(mib(100))
        high = model.allocation_seconds(mib(120))
        slope = (high - low) / 20.0
        assert slope == pytest.approx(0.0045, rel=1e-6)

    def test_monotonically_increasing(self, model):
        sizes = [mib(s) for s in (0, 10, 50, 93, 94, 110, 128)]
        latencies = [model.allocation_seconds(s) for s in sizes]
        assert latencies == sorted(latencies)

    def test_negative_size_rejected(self, model):
        with pytest.raises(SgxError):
            model.allocation_seconds(-1)

    def test_full_epc_startup_matches_paper_magnitude(self, model):
        # Fig. 6: a 128 MiB request takes roughly 600 ms end to end.
        total = model.startup(mib(128)).total_seconds
        assert 0.45 < total < 0.75

    def test_standard_startup_below_1ms(self, model):
        assert model.standard_startup().total_seconds <= 0.001

    def test_startup_curve_iterates_to_max(self, model):
        points = list(model.startup_curve(step_bytes=mib(32)))
        sizes = [size for size, _ in points]
        assert sizes[0] == 0
        assert sizes[-1] == mib(128)


class TestPagingSlowdown:
    def test_no_slowdown_at_or_below_capacity(self, model):
        assert model.paging_slowdown(0.5) == 1.0
        assert model.paging_slowdown(1.0) == 1.0

    def test_max_slowdown_at_saturation(self, model):
        assert model.paging_slowdown(2.0) == pytest.approx(1000.0)

    def test_clamped_beyond_saturation(self, model):
        assert model.paging_slowdown(10.0) == pytest.approx(1000.0)

    def test_monotone_in_ratio(self, model):
        ratios = [1.0, 1.1, 1.3, 1.5, 1.9, 2.0]
        slowdowns = [model.paging_slowdown(r) for r in ratios]
        assert slowdowns == sorted(slowdowns)

    def test_geometric_midpoint(self, model):
        # Halfway to saturation in ratio gives sqrt(1000) in slowdown.
        assert model.paging_slowdown(1.5) == pytest.approx(1000.0**0.5)

    def test_effective_runtime_scales(self, model):
        assert model.effective_runtime(10.0, 2.0) == pytest.approx(10_000.0)

    def test_effective_runtime_identity_when_healthy(self, model):
        assert model.effective_runtime(10.0, 0.9) == 10.0

    def test_negative_runtime_rejected(self, model):
        with pytest.raises(SgxError):
            model.effective_runtime(-1.0, 1.0)


class TestValidation:
    def test_bad_slowdown_rejected(self):
        with pytest.raises(SgxError):
            SgxPerfModel(paging_max_slowdown=0.5)

    def test_bad_saturation_rejected(self):
        with pytest.raises(SgxError):
            SgxPerfModel(paging_saturation_ratio=1.0)

    def test_bad_epc_rejected(self):
        with pytest.raises(SgxError):
            SgxPerfModel(usable_epc_bytes=0)

    def test_custom_knee_moves_with_usable_epc(self):
        model = SgxPerfModel(usable_epc_bytes=mib(32))
        below = model.allocation_seconds(mib(30))
        assert below == pytest.approx(30 * 0.0016, rel=1e-6)
        above = model.allocation_seconds(mib(40))
        assert above > 0.200
