"""Preemption planners and the orchestrator's eviction wiring."""

import pytest

from repro.cluster.resources import ResourceVector
from repro.cluster.topology import paper_cluster
from repro.orchestrator.api import make_pod_spec
from repro.orchestrator.controller import Orchestrator
from repro.orchestrator.pod import Pod
from repro.policy import (
    CheapestVictims,
    EvictionCandidate,
    LowestPriorityFirst,
    NoPreemption,
)
from repro.registry import PREEMPTION_POLICIES
from repro.scheduler.base import NodeView
from repro.scheduler.binpack import BinpackScheduler
from repro.units import gib, mib, pages


def view(name, mem_capacity, mem_used, sgx=False, epc_capacity=0, epc_used=0):
    return NodeView(
        name=name,
        sgx_capable=sgx,
        capacity=ResourceVector(
            memory_bytes=mem_capacity, epc_pages=epc_capacity
        ),
        used=ResourceVector(memory_bytes=mem_used, epc_pages=epc_used),
        committed=ResourceVector(
            memory_bytes=mem_used, epc_pages=epc_used
        ),
    )


def candidate(name, node, mem=0, epc_pages=0, priority=0,
              submitted_at=0.0, lost=0.0):
    pod = Pod(
        make_pod_spec(name, 60.0, declared_memory_bytes=mem,
                      priority=priority),
        submitted_at=submitted_at,
    )
    return EvictionCandidate(
        pod=pod,
        node_name=node,
        freed=ResourceVector(memory_bytes=mem, epc_pages=epc_pages),
        measured_epc_pages=epc_pages,
        lost_work_seconds=lost,
    )


def preemptor(name="vip", mem=0, epc=0, priority=100):
    return Pod(
        make_pod_spec(name, 60.0, declared_memory_bytes=mem,
                      declared_epc_bytes=epc, priority=priority),
        submitted_at=10.0,
    )


class TestRegistry:
    def test_builtins_registered(self):
        assert set(PREEMPTION_POLICIES.names()) >= {
            "none", "lowest-priority-first", "cheapest-victims",
        }

    def test_factories_build_policies(self):
        assert PREEMPTION_POLICIES.get("none")().never_preempts
        assert not PREEMPTION_POLICIES.get("cheapest-victims")(
        ).never_preempts


class TestNoPreemption:
    def test_always_declines(self):
        v = view("n0", gib(10), gib(10))
        plan = NoPreemption().plan(
            preemptor(mem=gib(4)),
            {"n0": v},
            {"n0": [candidate("a", "n0", mem=gib(5))]},
            now=10.0,
        )
        assert plan is None


class TestCheapestVictims:
    def test_prefers_smallest_measured_enclave(self):
        v = view("sgx-0", gib(8), 0, sgx=True,
                 epc_capacity=23000, epc_used=22000)
        small = candidate("small", "sgx-0", epc_pages=6000)
        large = candidate("large", "sgx-0", epc_pages=16000)
        plan = CheapestVictims().plan(
            preemptor(epc=mib(20)),  # 5120 pages; 1000 free
            {"sgx-0": v},
            {"sgx-0": [large, small]},
            now=10.0,
        )
        assert plan is not None
        assert [c.pod.name for c in plan.victims] == ["small"]

    def test_lost_work_makes_a_victim_expensive(self):
        v = view("sgx-0", gib(8), 0, sgx=True,
                 epc_capacity=23000, epc_used=22000)
        fresh = candidate("fresh", "sgx-0", epc_pages=8000, lost=0.0)
        veteran = candidate(
            "veteran", "sgx-0", epc_pages=6000, lost=5000.0
        )
        plan = CheapestVictims().plan(
            preemptor(epc=mib(20)),
            {"sgx-0": v},
            {"sgx-0": [veteran, fresh]},
            now=10.0,
        )
        assert plan is not None
        # 6000 pages + 5000 s of discarded work outprices 8000 pages.
        assert [c.pod.name for c in plan.victims] == ["fresh"]

    def test_zero_victim_plan_when_node_already_fits(self):
        fits = view("n0", gib(10), gib(2))
        full = view("n1", gib(10), gib(9))
        plan = CheapestVictims().plan(
            preemptor(mem=gib(4)),
            {"n0": fits, "n1": full},
            {"n0": [], "n1": [candidate("a", "n1", mem=gib(5))]},
            now=10.0,
        )
        assert plan is not None
        assert plan.node_name == "n0"
        assert plan.victims == ()
        assert plan.cost == 0.0

    def test_greedy_set_is_pruned(self):
        # Cheapest-first greedy picks 1 GiB + 2 GiB + 4 GiB before the
        # demand fits; the backward prune then drops the 1 GiB victim
        # whose contribution the 4 GiB one made redundant.
        v = view("n0", gib(10), gib(9))
        c1 = candidate("one", "n0", mem=gib(1))
        c2 = candidate("two", "n0", mem=gib(2))
        c4 = candidate("four", "n0", mem=gib(4))
        plan = CheapestVictims().plan(
            preemptor(mem=gib(7)),
            {"n0": v},
            {"n0": [c1, c2, c4]},
            now=10.0,
        )
        assert plan is not None
        assert sorted(c.pod.name for c in plan.victims) == ["four", "two"]

    def test_infeasible_everywhere_returns_none(self):
        v = view("n0", gib(10), gib(9))
        plan = CheapestVictims().plan(
            preemptor(mem=gib(20)),  # exceeds capacity outright
            {"n0": v},
            {"n0": [candidate("a", "n0", mem=gib(9))]},
            now=10.0,
        )
        assert plan is None


class TestLowestPriorityFirst:
    def test_evicts_lowest_tier_youngest_first(self):
        v = view("n0", gib(10), gib(9))
        older = candidate(
            "older", "n0", mem=gib(3), priority=0, submitted_at=1.0
        )
        younger = candidate(
            "younger", "n0", mem=gib(3), priority=0, submitted_at=5.0
        )
        mid = candidate(
            "mid", "n0", mem=gib(3), priority=10, submitted_at=0.0
        )
        plan = LowestPriorityFirst().plan(
            preemptor(mem=gib(3)),
            {"n0": v},
            {"n0": [mid, older, younger]},
            now=10.0,
        )
        assert plan is not None
        assert [c.pod.name for c in plan.victims] == ["younger"]

    def test_prefers_node_with_most_junior_victims(self):
        cheap = view("n0", gib(10), gib(9))
        noble = view("n1", gib(10), gib(9))
        plan = LowestPriorityFirst().plan(
            preemptor(mem=gib(3)),
            {"n0": cheap, "n1": noble},
            {
                "n0": [candidate("junior", "n0", mem=gib(3), priority=0)],
                "n1": [candidate("senior", "n1", mem=gib(3), priority=50)],
            },
            now=10.0,
        )
        assert plan is not None
        assert plan.node_name == "n0"


@pytest.fixture
def contended():
    """Both SGX nodes full of low-priority enclaves, one pass executed."""
    cluster = paper_cluster()
    orchestrator = Orchestrator(
        cluster,
        preemption_policy=CheapestVictims(),
        preemption_priority_threshold=100,
    )
    scheduler = BinpackScheduler()
    victims = [
        orchestrator.submit(
            make_pod_spec(
                f"batch-{i}", 600.0, declared_epc_bytes=mib(80)
            ),
            now=float(i),
        )
        for i in range(2)
    ]
    first = orchestrator.scheduling_pass(scheduler, now=2.0)
    assert len(first.launched) == 2
    return orchestrator, scheduler, victims


class TestOrchestratorPreemption:
    def test_high_priority_pod_evicts_and_places_in_one_pass(
        self, contended
    ):
        orchestrator, scheduler, victims = contended
        vip = orchestrator.submit(
            make_pod_spec(
                "vip", 60.0, declared_epc_bytes=mib(80), priority=100
            ),
            now=5.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=6.0)
        assert result.preemptions == 1
        assert len(result.evicted) == 1
        victim, replacement = result.evicted[0]
        assert victim in victims
        assert victim.phase.value == "Failed"
        assert "preempted by vip" in (victim.failure_reason or "")
        # The replacement keeps the victim's original FCFS slot.
        assert replacement.submitted_at == victim.submitted_at
        assert replacement in orchestrator.queue
        # The preemptor landed on the vacated node, same pass.
        assert vip.node_name == victim.node_name
        assert [pod.name for pod, _ in result.launched] == ["vip"]

    def test_below_threshold_pod_never_preempts(self, contended):
        orchestrator, scheduler, _ = contended
        orchestrator.submit(
            make_pod_spec(
                "meek", 60.0, declared_epc_bytes=mib(80), priority=10
            ),
            now=5.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=6.0)
        assert result.preemptions == 0
        assert result.evicted == []
        assert [pod.name for pod in result.deferred] == ["meek"]

    def test_none_policy_defers_like_the_paper(self):
        cluster = paper_cluster()
        orchestrator = Orchestrator(cluster)  # no policy at all
        scheduler = BinpackScheduler()
        orchestrator.submit(
            make_pod_spec("batch", 600.0, declared_epc_bytes=mib(80)),
            now=0.0,
        )
        orchestrator.scheduling_pass(scheduler, now=1.0)
        orchestrator.submit(
            make_pod_spec(
                "vip", 60.0, declared_epc_bytes=mib(80), priority=100
            ),
            now=2.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=3.0)
        # One SGX node is still free: the pod places normally; fill it
        # and the next vip defers rather than evicting.
        orchestrator.submit(
            make_pod_spec(
                "vip-2", 60.0, declared_epc_bytes=mib(80), priority=100
            ),
            now=4.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=5.0)
        assert result.preemptions == 0
        assert [pod.name for pod in result.deferred] == ["vip-2"]
        assert result.wait_reasons == {"epc": 1}

    def test_eviction_publishes_trigger_events(self, contended):
        orchestrator, scheduler, _ = contended
        orchestrator.trigger.begin_pass(5.0)  # drain submit events
        orchestrator.submit(
            make_pod_spec(
                "vip", 60.0, declared_epc_bytes=mib(80), priority=100
            ),
            now=5.0,
        )
        before = orchestrator.trigger.events_published
        orchestrator.scheduling_pass(scheduler, now=6.0)
        kinds = {
            event.kind.value
            for event in orchestrator.trigger.begin_pass(7.0)
        }
        # The eviction published kill + resubmission events, so an
        # event-driven driver cannot skip the follow-up pass.
        assert "pod-killed" in kinds
        assert "pod-submitted" in kinds
        assert orchestrator.trigger.events_published > before

    def test_same_pass_placements_are_not_thrashed(self):
        # A pass that just placed a low-priority pod must not evict it
        # for a high-priority pod deferred in the same pass.
        cluster = paper_cluster()
        orchestrator = Orchestrator(
            cluster,
            preemption_policy=CheapestVictims(),
            preemption_priority_threshold=100,
        )
        scheduler = BinpackScheduler()
        for i in range(2):
            orchestrator.submit(
                make_pod_spec(
                    f"batch-{i}", 600.0, declared_epc_bytes=mib(80)
                ),
                now=0.0,
            )
        orchestrator.submit(
            make_pod_spec(
                "vip", 60.0, declared_epc_bytes=mib(160), priority=100
            ),
            now=0.5,
        )
        result = orchestrator.scheduling_pass(scheduler, now=1.0)
        # vip (160 MiB) fits no node even empty-of-victims-bound-now;
        # batch pods placed this pass are protected.
        assert result.evicted == []
        launched = {pod.name for pod, _ in result.launched}
        assert launched == {"batch-0", "batch-1"}

    def test_strict_fcfs_head_blocks_younger_preemptors(self):
        # Under strict FCFS an unplaceable queue head blocks every
        # younger pod — preemption must not let a younger high-priority
        # pod (deferred as head_of_line, never examined) jump past it,
        # not even via a zero-victim plan onto free capacity.
        from repro.orchestrator.api import (
            PodSpec,
            ResourceRequirements,
            WorkloadProfile,
        )

        cluster = paper_cluster()
        orchestrator = Orchestrator(
            cluster,
            preemption_policy=CheapestVictims(),
            preemption_priority_threshold=100,
        )
        scheduler = BinpackScheduler(strict_fcfs=True)
        requests = ResourceVector(epc_pages=pages(mib(80)))
        for i in range(2):  # guaranteed: nothing is ever evictable
            orchestrator.submit(
                PodSpec(
                    name=f"guaranteed-{i}",
                    resources=ResourceRequirements(
                        requests=requests, limits=requests
                    ),
                    workload=WorkloadProfile(
                        duration_seconds=600.0,
                        epc_pages=pages(mib(80)),
                    ),
                ),
                now=float(i),
            )
        orchestrator.scheduling_pass(scheduler, now=2.0)
        orchestrator.submit(
            make_pod_spec(
                "vip-huge", 60.0, declared_epc_bytes=mib(90),
                priority=100,
            ),
            now=3.0,
        )
        orchestrator.submit(
            make_pod_spec(
                "vip-small", 60.0, declared_epc_bytes=mib(5),
                priority=100,
            ),
            now=4.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=5.0)
        # The head cannot be helped (victims are guaranteed); the
        # younger vip-small would fit the leftover EPC, but strict
        # FCFS keeps it behind the head.
        assert result.preemptions == 0
        assert result.evicted == []
        assert [pod.name for pod in result.deferred] == [
            "vip-huge", "vip-small",
        ]
        assert result.wait_reasons == {"epc": 1, "head_of_line": 1}

    def test_guaranteed_victims_are_never_evicted(self):
        cluster = paper_cluster()
        orchestrator = Orchestrator(
            cluster,
            preemption_policy=CheapestVictims(),
            preemption_priority_threshold=100,
        )
        scheduler = BinpackScheduler()
        from repro.orchestrator.api import (
            PodSpec,
            ResourceRequirements,
            WorkloadProfile,
        )

        requests = ResourceVector(epc_pages=pages(mib(80)))
        for i in range(2):
            orchestrator.submit(
                PodSpec(
                    name=f"guaranteed-{i}",
                    resources=ResourceRequirements(
                        requests=requests, limits=requests
                    ),
                    workload=WorkloadProfile(
                        duration_seconds=600.0,
                        epc_pages=pages(mib(80)),
                    ),
                ),
                now=float(i),
            )
        orchestrator.scheduling_pass(scheduler, now=2.0)
        orchestrator.submit(
            make_pod_spec(
                "vip", 60.0, declared_epc_bytes=mib(80), priority=100
            ),
            now=3.0,
        )
        result = orchestrator.scheduling_pass(scheduler, now=4.0)
        assert result.evicted == []
        assert [pod.name for pod in result.deferred] == ["vip"]
